//! A strict, bounded HTTP/1.1 request parser and response writer.
//!
//! This is not a general HTTP implementation — it is the smallest
//! subset the lifetime service needs, built so that *arbitrary bytes on
//! the socket can never panic, never allocate unboundedly, and never
//! pin a worker thread*:
//!
//! * the request head (request line + headers) is read into a buffer
//!   capped at [`HttpLimits::max_head_bytes`]; one byte past the cap is
//!   a typed [`HttpError::TooLarge`], not a growing allocation;
//! * the body requires an explicit `Content-Length` (checked against
//!   [`HttpLimits::max_body_bytes`] **before** any body allocation);
//!   `Transfer-Encoding` is refused outright — chunked decoding is an
//!   attack surface the service does not need;
//! * every socket read honours the stream's read timeout: a slow-loris
//!   client trickling one byte per poll hits [`HttpError::Timeout`]
//!   and is disconnected instead of holding the worker hostage;
//! * header count is capped, header names are validated as ASCII
//!   tokens, and nothing in the parser trusts a length it has not
//!   checked.

use std::fmt;
use std::io::{self, Read};

/// Parser bounds. The defaults are generous for real clients and tiny
/// for attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Cap on the request head (request line + all headers + CRLFs).
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length`.
    pub max_body_bytes: usize,
    /// Cap on the number of headers.
    pub max_headers: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 << 10,
            max_body_bytes: 64 << 10,
            max_headers: 64,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target, verbatim (`/query`, `/stats`, …).
    pub target: String,
    /// Header `(name, value)` pairs; names are lower-cased, values
    /// trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lower-case), when present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. Every variant maps to a specific
/// response (or to closing the connection) in the server.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly before sending any bytes
    /// — the normal end of a keep-alive session, not an error.
    Closed,
    /// A size bound was exceeded. `what` names the bound.
    TooLarge {
        /// Which limit tripped (`"head"`, `"headers"`, `"body"`).
        what: &'static str,
        /// The configured cap.
        limit: usize,
    },
    /// The bytes do not parse as the supported HTTP subset.
    Malformed(String),
    /// The request uses a feature the server deliberately refuses
    /// (currently: any `Transfer-Encoding`).
    Unsupported(String),
    /// A socket read timed out mid-request (slow-loris) .
    Timeout,
    /// The socket failed.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::TooLarge { what, limit } => {
                write!(f, "request {what} exceeds the {limit}-byte limit")
            }
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::Unsupported(msg) => write!(f, "unsupported request: {msg}"),
            HttpError::Timeout => write!(f, "socket read timed out"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Maps an I/O failure to the typed error: timeouts are their own
/// variant (`WouldBlock` is how timed-out blocking sockets report on
/// some platforms).
fn io_error(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Reads and parses one request from `stream` under `limits`.
///
/// # Errors
///
/// See [`HttpError`]; no variant panics and none allocates beyond the
/// configured caps.
pub fn read_request<R: Read>(stream: &mut R, limits: &HttpLimits) -> Result<Request, HttpError> {
    let (head, leftover) = read_head(stream, limits)?;
    let (method, target, headers) = parse_head(&head, limits)?;

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Unsupported(
            "Transfer-Encoding is not accepted; send Content-Length".into(),
        ));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge {
            what: "body",
            limit: limits.max_body_bytes,
        });
    }

    let mut body = leftover;
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "more body bytes than Content-Length declares".into(),
        ));
    }
    body.reserve_exact(content_length - body.len());
    let mut chunk = [0u8; 4096];
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        // PANIC-OK: `want` is clamped to `chunk.len()` one line up.
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed mid-body before Content-Length bytes".into(),
                ))
            }
            // PANIC-OK: `Read` guarantees `n <= chunk.len()`.
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_error(e)),
        }
    }

    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Reads until the `\r\n\r\n` head terminator (bounded); returns the
/// head bytes and any body bytes that arrived in the same reads.
fn read_head<R: Read>(
    stream: &mut R,
    limits: &HttpLimits,
) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(&buf) {
            let leftover = buf.split_off(end);
            return Ok((buf, leftover));
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(HttpError::TooLarge {
                what: "head",
                limit: limits.max_head_bytes,
            });
        }
        let want = (limits.max_head_bytes - buf.len() + 4).min(chunk.len());
        // PANIC-OK: `want` is clamped to `chunk.len()` one line up.
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Malformed("connection closed mid-head".into()));
            }
            // PANIC-OK: `Read` guarantees `n <= chunk.len()`.
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_error(e)),
        }
    }
}

/// Index just past the first `\r\n\r\n`, when present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parses the head bytes into (method, target, headers).
fn parse_head(
    head: &[u8],
    limits: &HttpLimits,
) -> Result<(String, String, Vec<(String, String)>), HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".into()))?;
    let text = text
        .strip_suffix("\r\n\r\n")
        .ok_or_else(|| HttpError::Malformed("missing head terminator".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Malformed("bad method token".into()))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/') && !t.bytes().any(|b| b.is_ascii_control()))
        .ok_or_else(|| HttpError::Malformed("bad request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed(
            "extra tokens on the request line".into(),
        ));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Unsupported(format!("version {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge {
                what: "headers",
                limit: limits.max_headers,
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without ':': {line:?}")))?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), target.to_string(), headers))
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-written set.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Adds a `Retry-After` header (seconds).
    #[must_use]
    pub fn retry_after(mut self, seconds: u64) -> Self {
        self.headers
            .push(("Retry-After".into(), seconds.to_string()));
        self
    }

    /// The standard reason phrase for the status.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "",
        }
    }

    /// Serialises the response, with `Connection: close` when
    /// `close` is set.
    pub fn to_bytes(&self, close: bool) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        out.push_str(if close {
            "Connection: close\r\n"
        } else {
            "Connection: keep-alive\r\n"
        });
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(bytes), &HttpLimits::default())
    }

    #[test]
    fn well_formed_request_parses() {
        let req =
            parse(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
        let req = parse(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn pipelined_body_bytes_beyond_content_length_are_rejected() {
        // The parser reads only Content-Length body bytes, but bytes
        // already drained with the head must not exceed the declaration.
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nhello");
        assert!(matches!(err, Err(HttpError::Malformed(_))));
    }

    #[test]
    fn transfer_encoding_is_refused() {
        let err = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(matches!(err, Err(HttpError::Unsupported(_))));
    }

    #[test]
    fn oversized_head_and_body_are_typed() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
            max_headers: 2,
        };
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend_from_slice(&b"X-Filler: yadda yadda yadda yadda yadda yadda\r\n".repeat(4));
        big.extend_from_slice(b"\r\n");
        let err = read_request(&mut io::Cursor::new(&big), &limits);
        assert!(matches!(err, Err(HttpError::TooLarge { what: "head", .. })));

        let err = read_request(
            &mut io::Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            &limits,
        );
        assert!(matches!(err, Err(HttpError::TooLarge { what: "body", .. })));

        let err = read_request(
            &mut io::Cursor::new(b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n"),
            &limits,
        );
        assert!(matches!(
            err,
            Err(HttpError::TooLarge {
                what: "headers",
                ..
            })
        ));
    }

    #[test]
    fn malformed_heads_are_typed() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(bad).expect_err("must reject");
            assert!(
                matches!(err, HttpError::Malformed(_) | HttpError::Unsupported(_)),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn clean_close_and_truncation_differ() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        assert!(matches!(parse(b"GET / HT"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn timeouts_map_to_their_own_variant() {
        struct Stalls;
        impl Read for Stalls {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"))
            }
        }
        let err = read_request(&mut Stalls, &HttpLimits::default());
        assert!(matches!(err, Err(HttpError::Timeout)));
        let display = format!("{}", HttpError::Timeout);
        assert!(display.contains("timed out"));
    }

    #[test]
    fn responses_serialise_with_length_and_connection() {
        let bytes = Response::json(200, "{}").to_bytes(false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let bytes = Response::text(503, "busy").retry_after(2).to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        // Unknown codes still serialise.
        assert!(Response::text(599, "x")
            .to_bytes(true)
            .starts_with(b"HTTP/1.1 599 "));
    }
}
