//! Property fuzz over every parser the network boundary exposes to
//! attacker-controlled bytes: the HTTP request parser, the JSON
//! envelope parser, and the scenario config parser. The invariant is
//! the same everywhere: **arbitrary bytes never panic, never allocate
//! unboundedly, and fail only with the parser's typed error** — the
//! process keeps serving no matter what arrives on the socket.

use kibamrm::Scenario;
use kibamrm_net::http::read_request;
use kibamrm_net::{HttpLimits, Json};
use proptest::prelude::*;
use std::io::Cursor;

/// Bytes that lean towards HTTP-ish structure so the fuzz spends its
/// budget past the first guard, not rejected at byte 0.
fn http_flavoured(raw: &[u8], shape: u8) -> Vec<u8> {
    let mut wire = Vec::new();
    match shape % 4 {
        0 => wire.extend_from_slice(b"POST /query HTTP/1.1\r\n"),
        1 => wire.extend_from_slice(b"GET /stats HTTP/1.1\r\ncontent-length: "),
        2 => wire.extend_from_slice(b"POST /query HTTP/1.1\r\ncontent-length: 4\r\n\r\n"),
        _ => {}
    }
    wire.extend_from_slice(raw);
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The HTTP parser survives arbitrary bytes: a typed error or a
    /// valid request, never a panic, and the parsed body never exceeds
    /// the configured cap.
    #[test]
    fn http_parser_survives_arbitrary_bytes(
        raw in collection::vec(0u8..=255u8, 0..600),
        shape in 0u8..=7u8,
    ) {
        let limits = HttpLimits {
            max_head_bytes: 256,
            max_body_bytes: 128,
            max_headers: 8,
        };
        let wire = http_flavoured(&raw, shape);
        let mut cursor = Cursor::new(wire);
        match read_request(&mut cursor, &limits) {
            Ok(request) => {
                prop_assert!(request.body.len() <= limits.max_body_bytes);
                prop_assert!(request.headers.len() <= limits.max_headers);
                prop_assert!(!request.method.is_empty());
                prop_assert!(request.target.starts_with('/'));
            }
            Err(e) => {
                // The error formats without panicking too.
                let _ = e.to_string();
            }
        }
    }

    /// The JSON parser survives arbitrary bytes (including deep
    /// nesting, broken escapes and truncated literals).
    #[test]
    fn json_parser_survives_arbitrary_bytes(
        raw in collection::vec(0u8..=255u8, 0..400),
        nesting in 0usize..=100,
        shape in 0u8..=3u8,
    ) {
        let mut text = String::new();
        match shape {
            0 => text.push_str(&"[".repeat(nesting)),
            1 => {
                text.push_str("{\"scenario\": \"");
                text.push_str(&String::from_utf8_lossy(&raw));
            }
            _ => {}
        }
        text.push_str(&String::from_utf8_lossy(&raw));
        match Json::parse(&text) {
            Ok(v) => {
                // A parsed value renders its accessors safely.
                let _ = (v.as_f64(), v.as_str(), v.as_bool(), v.get("x"));
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    /// The scenario config parser survives arbitrary text: typed
    /// error or a scenario whose canonical form round-trips.
    #[test]
    fn scenario_parser_survives_arbitrary_text(
        raw in collection::vec(0u8..=255u8, 0..400),
    ) {
        let text = String::from_utf8_lossy(&raw).into_owned();
        match Scenario::from_config_str(&text) {
            Ok(scenario) => {
                let round = scenario.to_config_string().unwrap();
                prop_assert_eq!(
                    Scenario::from_config_str(&round)
                        .unwrap()
                        .canonical_bytes()
                        .unwrap(),
                    scenario.canonical_bytes().unwrap()
                );
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    /// Mutations of a *valid* scenario config — single byte flips and
    /// truncations — exercise the parser's deep paths without panics,
    /// and accepted mutants still round-trip canonically.
    #[test]
    fn mutated_valid_configs_never_panic(
        flip_at in 0usize..2048,
        flip_bit in 0u8..8,
        truncate_to in 0usize..2048,
    ) {
        let base = Scenario::paper_cell_phone()
            .unwrap()
            .to_config_string()
            .unwrap()
            .into_bytes();
        let mut mutant = base.clone();
        let at = flip_at % mutant.len();
        mutant[at] ^= 1 << flip_bit;
        mutant.truncate(truncate_to % (mutant.len() + 1));
        let text = String::from_utf8_lossy(&mutant).into_owned();
        if let Ok(scenario) = Scenario::from_config_str(&text) {
            let round = scenario.to_config_string().unwrap();
            prop_assert!(Scenario::from_config_str(&round).is_ok());
        }
    }

    /// Hostile `Content-Length` values never cause an over-cap
    /// allocation: the parser refuses before reading the body.
    #[test]
    fn content_length_is_enforced_before_allocation(
        declared in 0u64..=u64::MAX / 2,
        actual in 0usize..64,
    ) {
        let limits = HttpLimits {
            max_head_bytes: 512,
            max_body_bytes: 32,
            max_headers: 8,
        };
        let mut wire = format!(
            "POST /query HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n"
        )
        .into_bytes();
        wire.extend(std::iter::repeat_n(b'x', actual));
        let mut cursor = Cursor::new(wire);
        match read_request(&mut cursor, &limits) {
            Ok(request) => {
                prop_assert_eq!(request.body.len() as u64, declared);
                prop_assert!(declared <= limits.max_body_bytes as u64);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}
