//! The committed chaos drill: boot the real `kibamrm-serve` binary on
//! an ephemeral port, subject it to a mixed storm (valid queries,
//! malformed bytes, oversized bodies, a slow-loris), then SIGKILL it
//! mid-flight — no drain, no warning. The restarted process must come
//! back **warm** from the crash-safe snapshot: re-queries hit the
//! cache above the committed floor, the reloaded curves carry exactly
//! the pre-crash bits (sup-distance 0), nothing panics, and the final
//! graceful drain leaves zero wedged connections.

use kibamrm::scenario::Scenario;
use kibamrm::workload::Workload;
use kibamrm_net::{client, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use units::{Charge, Current, Frequency, Rate, Time};

/// Committed floor on the warm-restart hit rate: every re-queried
/// scenario must come from the snapshot, so the observed rate is 1.0;
/// the floor leaves headroom only for incidental stats traffic.
const HIT_RATE_FLOOR: f64 = 0.85;

const T: Duration = Duration::from_secs(30);

fn fleet_config(capacity_as: f64) -> String {
    Scenario::builder()
        .name("kill-restart")
        .workload(
            Workload::on_off_erlang(Frequency::from_hertz(0.5), 1, Current::from_amps(0.5))
                .unwrap(),
        )
        .capacity(Charge::from_amp_seconds(capacity_as))
        .kibam(0.5, Rate::per_second(1e-4))
        .times(
            (1..=6)
                .map(|i| Time::from_seconds(i as f64 * 60.0))
                .collect(),
        )
        .delta(Charge::from_amp_seconds(2.5))
        .build()
        .unwrap()
        .to_config_string()
        .unwrap()
}

struct Serve {
    child: Child,
    addr: SocketAddr,
    stderr: std::thread::JoinHandle<String>,
}

fn spawn_server(snapshot: &Path) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kibamrm-serve"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--snapshot")
        .arg(snapshot)
        .arg("--read-timeout-ms")
        .arg("500")
        .arg("--drain-deadline-ms")
        .arg("5000")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn kibamrm-serve");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .parse()
        .unwrap();
    let stderr = child.stderr.take().unwrap();
    let stderr = std::thread::spawn(move || {
        let mut text = String::new();
        let _ = BufReader::new(stderr).read_to_string(&mut text);
        text
    });
    Serve {
        child,
        addr,
        stderr,
    }
}

fn points_bits(body: &[u8]) -> Vec<(u64, u64)> {
    let v = Json::parse(std::str::from_utf8(body).unwrap()).unwrap();
    v.get("points")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|p| {
            let pair = p.as_array().unwrap();
            (
                pair[0].as_f64().unwrap().to_bits(),
                pair[1].as_f64().unwrap().to_bits(),
            )
        })
        .collect()
}

fn stats_field(addr: SocketAddr, section: &str, field: &str) -> f64 {
    let stats = client::get(addr, "/stats", T).unwrap();
    assert_eq!(stats.status, 200);
    Json::parse(&stats.body_string())
        .unwrap()
        .get(section)
        .unwrap()
        .get(field)
        .unwrap()
        .as_f64()
        .unwrap()
}

fn snapshot_path() -> PathBuf {
    std::env::temp_dir().join(format!("kibamrm-kill-restart-{}.snap", std::process::id()))
}

#[test]
fn sigkill_mid_storm_restarts_warm_with_identical_bits() {
    let snapshot = snapshot_path();
    let _ = std::fs::remove_file(&snapshot);
    let configs: Vec<String> = [55.0, 60.0, 65.0, 70.0]
        .iter()
        .map(|&c| fleet_config(c))
        .collect();

    // ---- Act one: the storm. ----
    let server = spawn_server(&snapshot);
    let addr = server.addr;

    // Hostile traffic alongside the valid queries: garbage, an
    // oversized body, and a slow-loris holding a half-written request.
    let hostiles: Vec<std::thread::JoinHandle<()>> = (0..3)
        .map(|kind| {
            std::thread::spawn(move || {
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    return;
                };
                let _ = stream.set_read_timeout(Some(T));
                match kind {
                    0 => {
                        let _ = stream.write_all(b"\x00\xffTOTAL GARBAGE\r\n\r\n");
                        let _ = client::read_response(&mut stream);
                    }
                    1 => {
                        let _ = stream
                            .write_all(b"POST /query HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n");
                        let _ = client::read_response(&mut stream);
                    }
                    _ => {
                        // Slow-loris: trickle and stall until cut off.
                        let _ = stream.write_all(b"POST /qu");
                        let _ = client::read_response(&mut stream);
                    }
                }
            })
        })
        .collect();

    // Valid queries: each config solved once, recorded bit-for-bit.
    let mut before: Vec<Vec<(u64, u64)>> = Vec::new();
    for config in &configs {
        let r = client::post_query(addr, config.as_bytes(), T).unwrap();
        assert_eq!(r.status, 200, "{}", r.body_string());
        before.push(points_bits(&r.body));
    }
    for h in hostiles {
        h.join().unwrap();
    }

    // Persist, then die without warning while fresh work is in flight.
    let snap = client::request(addr, "POST", "/admin/snapshot", &[], b"", T).unwrap();
    assert_eq!(snap.status, 200, "{}", snap.body_string());
    let in_flight: Vec<_> = (0..4)
        .map(|i| {
            let config = fleet_config(120.0 + 20.0 * i as f64);
            std::thread::spawn(move || {
                // The kill lands mid-solve; any outcome but a hang is fine.
                let _ = client::post_query(addr, config.as_bytes(), T);
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    let mut child = server.child;
    child.kill().expect("SIGKILL");
    child.wait().unwrap();
    for h in in_flight {
        h.join().unwrap();
    }
    let stderr_one = server.stderr.join().unwrap();
    assert!(
        !stderr_one.to_lowercase().contains("panic"),
        "first life panicked:\n{stderr_one}"
    );
    assert!(snapshot.exists(), "the snapshot must survive the SIGKILL");

    // ---- Act two: the warm restart. ----
    let server = spawn_server(&snapshot);
    let addr = server.addr;
    assert_eq!(
        stats_field(addr, "service", "snapshot_loaded"),
        configs.len() as f64,
        "every pre-crash entry must revive"
    );
    assert_eq!(stats_field(addr, "service", "snapshot_rejected"), 0.0);

    for (config, expected) in configs.iter().zip(&before) {
        let r = client::post_query(addr, config.as_bytes(), T).unwrap();
        assert_eq!(r.status, 200, "{}", r.body_string());
        assert_eq!(
            &points_bits(&r.body),
            expected,
            "reloaded curve must carry exactly the pre-crash bits (sup-distance 0)"
        );
    }
    let hits = stats_field(addr, "service", "hits");
    let misses = stats_field(addr, "service", "misses");
    let hit_rate = hits / (hits + misses).max(1.0);
    assert!(
        hit_rate >= HIT_RATE_FLOOR,
        "warm hit rate {hit_rate} fell below the committed floor {HIT_RATE_FLOOR}"
    );

    // ---- Act three: the graceful exit. ----
    // Closing stdin asks for the drain; the process must finish its
    // in-flight work, snapshot, and exit cleanly — zero wedged
    // connections (a non-zero drain remainder exits non-zero).
    let mut child = server.child;
    drop(child.stdin.take());
    let status = child.wait().unwrap();
    let stderr_two = server.stderr.join().unwrap();
    assert!(
        status.success(),
        "graceful drain must exit 0 (status {status:?}):\n{stderr_two}"
    );
    assert!(
        !stderr_two.to_lowercase().contains("panic"),
        "second life panicked:\n{stderr_two}"
    );
    assert!(
        stderr_two.contains("drain: snapshot written"),
        "drain must persist the cache:\n{stderr_two}"
    );
    let _ = std::fs::remove_file(&snapshot);
}
