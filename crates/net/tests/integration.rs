//! End-to-end tests of the HTTP front, in process: one real
//! `LifetimeService` behind one real `Server` on an ephemeral port,
//! exercised over real sockets. Every robustness layer is poked at
//! least once — typed rejection of garbage, slow-loris timeouts,
//! connection-cap shedding, per-client quotas, the error→status
//! mapping, and the drain → snapshot → warm-restart cycle.

use kibamrm::distribution::LifetimeDistribution;
use kibamrm::scenario::Scenario;
use kibamrm::service::LifetimeService;
use kibamrm::solver::{Capability, LifetimeSolver, SolverRegistry};
use kibamrm::workload::Workload;
use kibamrm::KibamRmError;
use kibamrm_net::{client, Json, NetConfig, Server, ServerControl};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use units::{Charge, Current, Frequency, Time};

/// An exact backend: instant, deterministic, answer derived from the
/// scenario so distinct scenarios are distinguishable.
struct CountingSolver {
    solves: Arc<AtomicUsize>,
    delay: Duration,
}

impl LifetimeSolver for CountingSolver {
    fn name(&self) -> &'static str {
        "counting"
    }
    fn capability(&self, _scenario: &Scenario) -> Capability {
        Capability::Exact
    }
    fn solve(&self, scenario: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
        self.solves.fetch_add(1, Ordering::SeqCst);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        let n = scenario.times().len() as f64;
        let bias = scenario.capacity().as_amp_seconds() % 1.0 / 10.0;
        let points = scenario
            .times()
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, ((i as f64 + bias) / n).clamp(0.0, 1.0)))
            .collect();
        LifetimeDistribution::new("counting", points, Default::default())
    }
}

fn service_with_delay(delay: Duration) -> (Arc<LifetimeService>, Arc<AtomicUsize>) {
    let solves = Arc::new(AtomicUsize::new(0));
    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(CountingSolver {
        solves: Arc::clone(&solves),
        delay,
    }));
    (Arc::new(LifetimeService::new(registry)), solves)
}

fn scenario(capacity_as: f64) -> Scenario {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(0.5), 1, Current::from_amps(0.5)).unwrap();
    Scenario::builder()
        .name("net-int")
        .workload(w)
        .capacity(Charge::from_amp_seconds(capacity_as))
        .linear()
        .times(
            (1..=8)
                .map(|i| Time::from_seconds(i as f64 * 40.0))
                .collect(),
        )
        .delta(Charge::from_amp_seconds(1.0))
        .simulation(40, 11)
        .build()
        .unwrap()
}

fn config_text(capacity_as: f64) -> String {
    scenario(capacity_as).to_config_string().unwrap()
}

/// Boots a server on an ephemeral port; returns its control handle,
/// address and the run-thread handle (joins to the drain report).
fn start(
    service: Arc<LifetimeService>,
    config: NetConfig,
) -> (
    ServerControl,
    SocketAddr,
    std::thread::JoinHandle<kibamrm_net::DrainReport>,
) {
    let server = Server::bind("127.0.0.1:0", service, config).unwrap();
    let control = server.control();
    let addr = server.local_addr().unwrap();
    let thread = std::thread::spawn(move || server.run());
    (control, addr, thread)
}

const T: Duration = Duration::from_secs(10);

/// Sends raw bytes on a fresh connection and reads one response.
fn raw(addr: SocketAddr, wire: &[u8]) -> client::HttpResponse {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(T)).unwrap();
    stream.write_all(wire).unwrap();
    client::read_response(&mut stream).unwrap()
}

fn points_bits(body: &[u8]) -> Vec<(u64, u64)> {
    let v = Json::parse(std::str::from_utf8(body).unwrap()).unwrap();
    v.get("points")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|p| {
            let pair = p.as_array().unwrap();
            (
                pair[0].as_f64().unwrap().to_bits(),
                pair[1].as_f64().unwrap().to_bits(),
            )
        })
        .collect()
}

#[test]
fn routing_health_and_stats() {
    let (service, _) = service_with_delay(Duration::ZERO);
    let (control, addr, run) = start(service, NetConfig::default());

    let health = client::get(addr, "/healthz", T).unwrap();
    assert_eq!(health.status, 200);

    assert_eq!(client::get(addr, "/nowhere", T).unwrap().status, 404);
    assert_eq!(
        client::request(addr, "DELETE", "/query", &[], b"", T)
            .unwrap()
            .status,
        405
    );

    let stats = client::get(addr, "/stats", T).unwrap();
    assert_eq!(stats.status, 200);
    let v = Json::parse(&stats.body_string()).unwrap();
    assert!(v.get("service").unwrap().get("snapshot_loaded").is_some());
    assert!(v
        .get("service")
        .unwrap()
        .get("result_cache_bytes")
        .is_some());
    assert!(v.get("net").unwrap().get("quota_refused").is_some());

    control.shutdown();
    let report = run.join().unwrap();
    assert_eq!(report.remaining_connections, 0);
}

#[test]
fn query_answers_are_bit_identical_to_direct_solves() {
    let (service, solves) = service_with_delay(Duration::ZERO);
    let reference = service.query(&scenario(101.25)).unwrap();
    let (control, addr, run) = start(Arc::clone(&service), NetConfig::default());

    // Raw config text body.
    let r = client::post_query(addr, config_text(101.25).as_bytes(), T).unwrap();
    assert_eq!(r.status, 200, "{}", r.body_string());
    let v = Json::parse(&r.body_string()).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("exact"));
    assert_eq!(v.get("method").unwrap().as_str(), Some("counting"));
    let wire_bits = points_bits(&r.body);
    let direct_bits: Vec<(u64, u64)> = reference
        .points()
        .iter()
        .map(|&(t, p)| (t.as_seconds().to_bits(), p.to_bits()))
        .collect();
    assert_eq!(wire_bits, direct_bits, "HTTP curve must carry exact bits");

    // JSON envelope body — same scenario, cache hit, same bits.
    let mut envelope = String::from("{\"scenario\": ");
    kibamrm_net::json::write_string(&mut envelope, &config_text(101.25));
    envelope.push_str(", \"deadline_ms\": 60000, \"retries\": 1}");
    let r2 = client::post_query(addr, envelope.as_bytes(), T).unwrap();
    assert_eq!(r2.status, 200, "{}", r2.body_string());
    assert_eq!(points_bits(&r2.body), direct_bits);
    assert_eq!(
        solves.load(Ordering::SeqCst),
        1,
        "everything after the first is a hit"
    );

    control.shutdown();
    run.join().unwrap();
}

#[test]
fn garbage_is_rejected_with_typed_statuses() {
    let (service, solves) = service_with_delay(Duration::ZERO);
    let (control, addr, run) = start(
        service,
        NetConfig {
            limits: kibamrm_net::HttpLimits {
                max_head_bytes: 512,
                max_body_bytes: 256,
                max_headers: 8,
            },
            ..NetConfig::default()
        },
    );

    // Malformed request line.
    assert_eq!(raw(addr, b"NONSENSE\r\n\r\n").status, 400);
    // Unsupported version.
    assert_eq!(raw(addr, b"GET / HTTP/9.9\r\n\r\n").status, 501);
    // Chunked encoding is refused, not mis-parsed.
    assert_eq!(
        raw(
            addr,
            b"POST /query HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
        )
        .status,
        501
    );
    // Oversized declared body: refused before it is read.
    assert_eq!(
        raw(
            addr,
            b"POST /query HTTP/1.1\r\ncontent-length: 100000\r\n\r\n"
        )
        .status,
        413
    );
    // Oversized head.
    let mut big_head = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
    big_head.extend(std::iter::repeat_n(b'a', 4096));
    big_head.extend_from_slice(b"\r\n\r\n");
    assert_eq!(raw(addr, &big_head).status, 431);
    // A syntactically fine request whose body is not a scenario.
    assert_eq!(
        client::post_query(addr, b"definitely not a scenario", T)
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client::post_query(addr, b"{\"scenario\": 42}", T)
            .unwrap()
            .status,
        400
    );

    assert_eq!(
        solves.load(Ordering::SeqCst),
        0,
        "garbage must never reach a solver"
    );
    control.shutdown();
    let report = run.join().unwrap();
    assert_eq!(
        report.remaining_connections, 0,
        "no rejected connection may wedge"
    );
}

#[test]
fn slow_loris_is_cut_off_by_the_read_timeout() {
    let (service, _) = service_with_delay(Duration::ZERO);
    let (control, addr, run) = start(
        service,
        NetConfig {
            read_timeout: Duration::from_millis(150),
            ..NetConfig::default()
        },
    );

    // Trickle half a request line and stall.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(T)).unwrap();
    stream.write_all(b"POST /qu").unwrap();
    let response = client::read_response(&mut stream).unwrap();
    assert_eq!(
        response.status, 408,
        "a stalled read must answer 408 and close"
    );

    assert!(control.net_stats().timeouts >= 1);
    control.shutdown();
    let report = run.join().unwrap();
    assert_eq!(
        report.remaining_connections, 0,
        "the loris must not wedge a worker"
    );
}

#[test]
fn connection_cap_sheds_immediately_with_retry_after() {
    let (service, _) = service_with_delay(Duration::ZERO);
    let (control, addr, run) = start(
        service,
        NetConfig {
            max_connections: 2,
            read_timeout: Duration::from_secs(5),
            ..NetConfig::default()
        },
    );

    // Two idle connections occupy both workers…
    let hold_a = TcpStream::connect(addr).unwrap();
    let hold_b = TcpStream::connect(addr).unwrap();
    // …give the acceptor a moment to hand them to workers…
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while control.net_stats().accepted < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(control.net_stats().accepted, 2);

    // …so the third is shed at the door, instantly, with a typed body.
    let shed = client::get(addr, "/healthz", T).unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body_string().contains("overloaded"));
    assert_eq!(control.net_stats().connections_shed, 1);

    drop(hold_a);
    drop(hold_b);
    control.shutdown();
    let report = run.join().unwrap();
    assert_eq!(report.remaining_connections, 0);
}

#[test]
fn quotas_shed_the_noisy_client_by_name() {
    let (service, _) = service_with_delay(Duration::ZERO);
    let (control, addr, run) = start(
        service,
        NetConfig {
            quota_rate: 0.5,
            quota_burst: 2.0,
            quota_key_header: Some("x-client-id".to_string()),
            ..NetConfig::default()
        },
    );
    let body = config_text(77.0);

    // The noisy client burns its burst, then is refused by name.
    let mut statuses = Vec::new();
    for _ in 0..5 {
        let r = client::request(
            addr,
            "POST",
            "/query",
            &[("x-client-id", "noisy")],
            body.as_bytes(),
            T,
        )
        .unwrap();
        statuses.push(r.status);
        if r.status == 429 {
            assert!(
                r.header("retry-after").is_some(),
                "429 must carry Retry-After"
            );
        }
    }
    assert_eq!(&statuses[..2], &[200, 200], "the burst is admitted");
    assert!(statuses[2..].iter().all(|&s| s == 429), "{statuses:?}");

    // The polite client, same IP but its own id, is untouched.
    let polite = client::request(
        addr,
        "POST",
        "/query",
        &[("x-client-id", "polite")],
        body.as_bytes(),
        T,
    )
    .unwrap();
    assert_eq!(
        polite.status, 200,
        "fair shedding: quota is per client, not per IP"
    );

    assert_eq!(control.net_stats().quota_refused, 3);
    control.shutdown();
    run.join().unwrap();
}

#[test]
fn drain_snapshots_and_the_next_server_starts_warm() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("kibamrm-net-int-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let (service, solves_a) = service_with_delay(Duration::ZERO);
    let (_, addr, run) = start(
        Arc::clone(&service),
        NetConfig {
            snapshot_path: Some(path.clone()),
            ..NetConfig::default()
        },
    );
    let first = client::post_query(addr, config_text(50.5).as_bytes(), T).unwrap();
    assert_eq!(first.status, 200);
    let second = client::post_query(addr, config_text(60.5).as_bytes(), T).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(solves_a.load(Ordering::SeqCst), 2);

    // An on-demand snapshot works too (the deterministic tick).
    let snap = client::request(addr, "POST", "/admin/snapshot", &[], b"", T).unwrap();
    assert_eq!(snap.status, 200, "{}", snap.body_string());

    // Drain over HTTP: the run loop notices, drains, snapshots.
    let drain = client::request(addr, "POST", "/admin/drain", &[], b"", T).unwrap();
    assert_eq!(drain.status, 200);
    let report = run.join().unwrap();
    assert_eq!(
        report.remaining_connections, 0,
        "drain left connections wedged"
    );
    let written = report.snapshot.unwrap().unwrap();
    assert_eq!(written.entries, 2);

    // A brand-new process-equivalent: fresh service, snapshot loaded.
    let (service_b, solves_b) = service_with_delay(Duration::ZERO);
    let load = service_b.load_snapshot(&path);
    assert_eq!((load.loaded, load.rejected), (2, 0), "{:?}", load.error);
    let (control_b, addr_b, run_b) = start(Arc::clone(&service_b), NetConfig::default());

    let warm = client::post_query(addr_b, config_text(50.5).as_bytes(), T).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(
        points_bits(&warm.body),
        points_bits(&first.body),
        "the reloaded curve must carry exactly the pre-crash bits"
    );
    assert_eq!(
        solves_b.load(Ordering::SeqCst),
        0,
        "warm answers must not re-solve"
    );
    let stats = service_b.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.snapshot_loaded, 2);

    control_b.shutdown();
    run_b.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshot_route_without_persistence_is_a_typed_refusal() {
    let (service, _) = service_with_delay(Duration::ZERO);
    let (control, addr, run) = start(service, NetConfig::default());
    let r = client::request(addr, "POST", "/admin/snapshot", &[], b"", T).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_string().contains("no_snapshot_path"));
    control.shutdown();
    run.join().unwrap();
}

#[test]
fn deadline_exhaustion_maps_to_504() {
    let (service, _) = service_with_delay(Duration::from_millis(120));
    let (control, addr, run) = start(service, NetConfig::default());

    // An already-expired deadline: the admission check refuses before
    // any work starts (a deadline that expires mid-solve still serves
    // the completed answer — work done is work served).
    let mut envelope = String::from("{\"scenario\": ");
    kibamrm_net::json::write_string(&mut envelope, &config_text(88.0));
    envelope.push_str(", \"deadline_ms\": 0}");
    let r = client::post_query(addr, envelope.as_bytes(), T).unwrap();
    assert_eq!(r.status, 504, "{}", r.body_string());
    assert!(r.body_string().contains("deadline_exceeded"));
    assert_eq!(control.net_stats().deadline_exceeded, 1);

    control.shutdown();
    run.join().unwrap();
}
