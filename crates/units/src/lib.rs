//! Typed physical quantities for battery modelling.
//!
//! The quantities that appear throughout the KiBaM literature — charge,
//! current, time, frequency and first-order rate constants — are easy to
//! confuse when they are all plain `f64`s, especially because the paper
//! mixes unit systems (`As` and seconds for the on/off experiments,
//! `mAh` and hours for the cell-phone experiments). This crate provides
//! zero-cost newtypes with the conversions and the handful of physically
//! meaningful arithmetic operations (`Current × Time = Charge`, …), so that
//! unit errors become type errors.
//!
//! All values are stored internally in SI-coherent units: coulombs
//! (ampere-seconds), amperes, seconds, hertz and s⁻¹.
//!
//! # Examples
//!
//! ```
//! use units::{Charge, Current, Time};
//!
//! let capacity = Charge::from_milliamp_hours(800.0);
//! let load = Current::from_milliamps(200.0);
//! let lifetime: Time = capacity / load;
//! assert!((lifetime.as_hours() - 4.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

mod quantities;

pub use quantities::{Charge, Current, Frequency, Rate, Time};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_lifetime_is_capacity_over_load() {
        let c = Charge::from_amp_hours(2.0);
        let i = Current::from_amps(0.5);
        assert!(((c / i).as_hours() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Charge>();
        assert_send_sync::<Current>();
        assert_send_sync::<Time>();
        assert_send_sync::<Frequency>();
        assert_send_sync::<Rate>();
    }
}
