//! Newtype definitions and their arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the boilerplate shared by every scalar quantity newtype:
/// constructors from the raw SI value, ordering helpers, scalar arithmetic
/// and `Display`.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates the quantity from its raw SI magnitude.
            #[inline]
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// Returns the raw SI magnitude.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the magnitude is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// Electric charge, stored in coulombs (ampere-seconds).
    ///
    /// Battery capacities in the paper appear both as `As` (on/off model,
    /// `C = 7200 As`) and as `mAh` (cell-phone models, `C = 800 mAh`);
    /// both constructors are provided. `1 mAh = 3.6 As`.
    Charge,
    "As"
);

quantity!(
    /// Electric current, stored in amperes.
    Current,
    "A"
);

quantity!(
    /// A span of time, stored in seconds.
    Time,
    "s"
);

quantity!(
    /// Frequency, stored in hertz. Used for the square-wave and Erlang
    /// on/off workloads (`f = 1 Hz`, `f = 0.2 Hz`, …).
    Frequency,
    "Hz"
);

quantity!(
    /// A first-order rate constant, stored in s⁻¹.
    ///
    /// This is the unit of the KiBaM well-flow parameter `k`
    /// (`k = 4.5·10⁻⁵ /s` in the paper) and of CTMC transition rates.
    Rate,
    "1/s"
);

impl Charge {
    /// Charge from coulombs (ampere-seconds).
    #[inline]
    pub const fn from_coulombs(c: f64) -> Self {
        Charge::new(c)
    }

    /// Charge from ampere-seconds (alias of [`Charge::from_coulombs`]).
    #[inline]
    pub const fn from_amp_seconds(a_s: f64) -> Self {
        Charge::new(a_s)
    }

    /// Charge from milliampere-seconds.
    #[inline]
    pub const fn from_milliamp_seconds(ma_s: f64) -> Self {
        Charge::new(ma_s * 1e-3)
    }

    /// Charge from ampere-hours.
    #[inline]
    pub const fn from_amp_hours(ah: f64) -> Self {
        Charge::new(ah * 3600.0)
    }

    /// Charge from milliampere-hours (the usual cell-phone unit).
    #[inline]
    pub const fn from_milliamp_hours(mah: f64) -> Self {
        Charge::new(mah * 3.6)
    }

    /// Magnitude in coulombs (ampere-seconds).
    #[inline]
    pub const fn as_coulombs(self) -> f64 {
        self.value()
    }

    /// Magnitude in ampere-seconds.
    #[inline]
    pub const fn as_amp_seconds(self) -> f64 {
        self.value()
    }

    /// Magnitude in milliampere-hours.
    #[inline]
    pub fn as_milliamp_hours(self) -> f64 {
        self.value() / 3.6
    }

    /// Magnitude in ampere-hours.
    #[inline]
    pub fn as_amp_hours(self) -> f64 {
        self.value() / 3600.0
    }
}

impl Current {
    /// Current from amperes.
    #[inline]
    pub const fn from_amps(a: f64) -> Self {
        Current::new(a)
    }

    /// Current from milliamperes.
    #[inline]
    pub const fn from_milliamps(ma: f64) -> Self {
        Current::new(ma * 1e-3)
    }

    /// Magnitude in amperes.
    #[inline]
    pub const fn as_amps(self) -> f64 {
        self.value()
    }

    /// Magnitude in milliamperes.
    #[inline]
    pub fn as_milliamps(self) -> f64 {
        self.value() * 1e3
    }
}

impl Time {
    /// Time from seconds.
    #[inline]
    pub const fn from_seconds(s: f64) -> Self {
        Time::new(s)
    }

    /// Time from minutes.
    #[inline]
    pub const fn from_minutes(m: f64) -> Self {
        Time::new(m * 60.0)
    }

    /// Time from hours.
    #[inline]
    pub const fn from_hours(h: f64) -> Self {
        Time::new(h * 3600.0)
    }

    /// Magnitude in seconds.
    #[inline]
    pub const fn as_seconds(self) -> f64 {
        self.value()
    }

    /// Magnitude in minutes.
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.value() / 60.0
    }

    /// Magnitude in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.value() / 3600.0
    }
}

impl Frequency {
    /// Frequency from hertz.
    #[inline]
    pub const fn from_hertz(hz: f64) -> Self {
        Frequency::new(hz)
    }

    /// Magnitude in hertz.
    #[inline]
    pub const fn as_hertz(self) -> f64 {
        self.value()
    }

    /// The period `1/f` of this frequency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frequency is zero.
    #[inline]
    pub fn period(self) -> Time {
        debug_assert!(self.value() != 0.0, "period of zero frequency");
        Time::from_seconds(1.0 / self.value())
    }
}

impl Rate {
    /// Rate from events per second.
    #[inline]
    pub const fn per_second(r: f64) -> Self {
        Rate::new(r)
    }

    /// Rate from events per hour (the cell-phone models use per-hour rates).
    #[inline]
    pub const fn per_hour(r: f64) -> Self {
        Rate::new(r / 3600.0)
    }

    /// Magnitude in events per second.
    #[inline]
    pub const fn as_per_second(self) -> f64 {
        self.value()
    }

    /// Magnitude in events per hour.
    #[inline]
    pub fn as_per_hour(self) -> f64 {
        self.value() * 3600.0
    }

    /// The mean of an exponential sojourn with this rate, `1/rate`.
    #[inline]
    pub fn mean_sojourn(self) -> Time {
        Time::from_seconds(1.0 / self.value())
    }
}

// --- Cross-quantity arithmetic -------------------------------------------

impl Mul<Time> for Current {
    type Output = Charge;
    /// `I · t` — the charge drawn by a constant current over a time span.
    #[inline]
    fn mul(self, rhs: Time) -> Charge {
        Charge::new(self.value() * rhs.value())
    }
}

impl Mul<Current> for Time {
    type Output = Charge;
    #[inline]
    fn mul(self, rhs: Current) -> Charge {
        rhs * self
    }
}

impl Div<Current> for Charge {
    type Output = Time;
    /// `C / I` — the ideal-battery lifetime under a constant load.
    #[inline]
    fn div(self, rhs: Current) -> Time {
        Time::from_seconds(self.value() / rhs.value())
    }
}

impl Div<Time> for Charge {
    type Output = Current;
    /// `C / t` — the average current that drains `C` in `t`.
    #[inline]
    fn div(self, rhs: Time) -> Current {
        Current::from_amps(self.value() / rhs.value())
    }
}

impl Mul<Time> for Rate {
    type Output = f64;
    /// `λ · t` — the dimensionless mean event count over a span.
    #[inline]
    fn mul(self, rhs: Time) -> f64 {
        self.value() * rhs.value()
    }
}

impl Mul<Rate> for Time {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Rate) -> f64 {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn charge_unit_conversions() {
        assert_eq!(Charge::from_milliamp_hours(800.0).as_coulombs(), 2880.0);
        assert_eq!(Charge::from_amp_hours(1.0).as_coulombs(), 3600.0);
        assert_eq!(Charge::from_milliamp_seconds(4500.0).as_coulombs(), 4.5);
        assert!((Charge::from_coulombs(7200.0).as_milliamp_hours() - 2000.0).abs() < 1e-9);
        assert!((Charge::from_coulombs(7200.0).as_amp_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn current_unit_conversions() {
        assert_eq!(Current::from_milliamps(200.0).as_amps(), 0.2);
        assert_eq!(Current::from_amps(0.96).as_milliamps(), 960.0);
    }

    #[test]
    fn time_unit_conversions() {
        assert_eq!(Time::from_minutes(90.0).as_seconds(), 5400.0);
        assert_eq!(Time::from_hours(2.0).as_minutes(), 120.0);
        assert_eq!(Time::from_seconds(5400.0).as_hours(), 1.5);
    }

    #[test]
    fn rate_unit_conversions() {
        // The simple model's send rate: µ = 6 per hour.
        let mu = Rate::per_hour(6.0);
        assert!((mu.as_per_second() - 6.0 / 3600.0).abs() < 1e-18);
        assert!((mu.mean_sojourn().as_minutes() - 10.0).abs() < 1e-9);
        assert!((Rate::per_second(2.0).as_per_hour() - 7200.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period() {
        assert_eq!(Frequency::from_hertz(0.001).period().as_seconds(), 1000.0);
    }

    #[test]
    fn cross_quantity_products() {
        let drawn = Current::from_amps(0.96) * Time::from_seconds(7500.0);
        assert!((drawn.as_coulombs() - 7200.0).abs() < 1e-9);
        let avg = Charge::from_coulombs(7200.0) / Time::from_seconds(15000.0);
        assert!((avg.as_amps() - 0.48).abs() < 1e-12);
        let dimensionless = Rate::per_second(2.0) * Time::from_seconds(3.0);
        assert_eq!(dimensionless, 6.0);
    }

    #[test]
    fn scalar_arithmetic_and_ordering() {
        let a = Charge::from_coulombs(10.0);
        let b = Charge::from_coulombs(4.0);
        assert_eq!((a - b).as_coulombs(), 6.0);
        assert_eq!((a + b).as_coulombs(), 14.0);
        assert_eq!((a * 2.0).as_coulombs(), 20.0);
        assert_eq!((2.0 * a).as_coulombs(), 20.0);
        assert_eq!((a / 2.0).as_coulombs(), 5.0);
        assert_eq!(a / b, 2.5);
        assert!(b < a);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!((-a).abs(), a);
        assert_eq!(
            b.clamp(Charge::ZERO, Charge::from_coulombs(1.0)).value(),
            1.0
        );
    }

    #[test]
    fn sum_and_assign_ops() {
        let total: Time = [1.0, 2.0, 3.0].iter().map(|&s| Time::from_seconds(s)).sum();
        assert_eq!(total.as_seconds(), 6.0);
        let mut t = Time::from_seconds(1.0);
        t += Time::from_seconds(2.0);
        t -= Time::from_seconds(0.5);
        assert_eq!(t.as_seconds(), 2.5);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(format!("{}", Charge::from_coulombs(7200.0)), "7200 As");
        assert_eq!(format!("{}", Current::from_amps(0.96)), "0.96 A");
        assert_eq!(format!("{}", Time::from_seconds(10.0)), "10 s");
        assert_eq!(format!("{}", Frequency::from_hertz(1.0)), "1 Hz");
        assert_eq!(format!("{}", Rate::per_second(2.0)), "2 1/s");
    }

    proptest! {
        #[test]
        fn mah_roundtrip(mah in 0.0f64..1e6) {
            let c = Charge::from_milliamp_hours(mah);
            prop_assert!((c.as_milliamp_hours() - mah).abs() <= 1e-9 * mah.max(1.0));
        }

        #[test]
        fn lifetime_times_load_recovers_capacity(cap in 1.0f64..1e5, load in 1e-3f64..10.0) {
            let c = Charge::from_coulombs(cap);
            let i = Current::from_amps(load);
            let l = c / i;
            prop_assert!(((i * l).as_coulombs() - cap).abs() <= 1e-9 * cap);
        }

        #[test]
        fn add_sub_inverse(a in -1e9f64..1e9, b in -1e9f64..1e9) {
            let x = Time::from_seconds(a);
            let y = Time::from_seconds(b);
            prop_assert!(((x + y) - y).as_seconds() - a <= 1e-6 * a.abs().max(1.0));
        }
    }
}
