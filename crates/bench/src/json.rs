//! A minimal JSON reader for the committed `BENCH_*.json` baselines.
//!
//! The regression gate (`bench-harness regress`) needs to read numbers
//! back out of files this harness wrote itself; the container has no
//! registry access, so instead of a vendored serde this is a ~150-line
//! recursive-descent parser over the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null). It is a *reader*, not
//! a validator: good inputs parse correctly, bad inputs produce an error
//! with a byte offset.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// bench files contain).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `get(key)` then `as_f64`, the lookup the regress gate lives on.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not used by the bench
                            // files; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_file_shape() {
        let text = r#"{
  "bench": "uniformisation",
  "threads": 4,
  "note": "a \"quoted\" note\nwith a newline",
  "configs": [
    {"delta": 300, "engines": [
      {"name": "csr", "median_ns_per_op": 123, "window_deficit": 7.3e-12},
      {"name": "banded", "touched_entries": 26814840}
    ], "ok": true, "legacy": null}
  ]
}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("uniformisation"));
        assert_eq!(v.num("threads"), Some(4.0));
        assert!(v.get("note").unwrap().as_str().unwrap().contains('\n'));
        let configs = v.get("configs").unwrap().as_array().unwrap();
        assert_eq!(configs[0].num("delta"), Some(300.0));
        let engines = configs[0].get("engines").unwrap().as_array().unwrap();
        assert_eq!(engines[0].num("window_deficit"), Some(7.3e-12));
        assert_eq!(engines[1].num("touched_entries"), Some(26814840.0));
        assert_eq!(configs[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(configs[0].get("legacy"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_f64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12x").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn round_trips_escapes_and_unicode() {
        let v = Json::parse("\"a\\u0041β\\t\"").unwrap();
        assert_eq!(v.as_str(), Some("aAβ\t"));
        assert_eq!(Json::parse("-1.5e-3").unwrap().as_f64(), Some(-0.0015));
    }
}
