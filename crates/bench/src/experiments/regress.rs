//! `bench-harness regress --against DIR` — the CI perf/accuracy
//! regression gate.
//!
//! Re-runs the quick engine configurations and diffs them against the
//! **committed** baselines (`BENCH_uniformisation.json`,
//! `BENCH_sweep.json` in `--against`, default `.`), failing on:
//!
//! * **structure drift** — the derived chain's `states`/`nnz` no longer
//!   match the committed config (someone changed the discretisation
//!   without regenerating baselines);
//! * **accuracy drift** — the banded-windowed and banded-full engines
//!   disagree with the CSR engine by more than `1e-12` at a tightened
//!   ε (`--epsilon`, default `1e-13`, makes the bound follow from the
//!   engines' error budgets; loosening it is how the gate is verified
//!   to fire);
//! * **work growth** — any engine's `touched_entries` exceeds the
//!   committed value by more than 10 % (shrinking is an improvement and
//!   passes);
//! * **planner drift** — the quick sweep grid's planned results are not
//!   bit-identical to naive per-scenario solves (sup-distance must be
//!   exactly 0), or the plan no longer forms the committed number of
//!   groups;
//! * **panel drift** (`BENCH_spmm.json`) — the column-panel SpMM engine
//!   re-derived on the quick rate-rescale family no longer produces
//!   curves bit-identical to independent single-vector solves
//!   (sup-distance must be exactly 0), no longer groups the whole family
//!   into one k-wide panel, its machine-independent touched-entry
//!   counters differ from the committed values *at all* (they are exact
//!   by construction — any change means the sweep order changed), the
//!   panel stops reading fewer entries than the k independent sweeps, or
//!   a k = 1 panel no longer degenerates bit-identically to the
//!   unpaneled kernels. Timings from the committed file are ignored;
//! * **Monte Carlo drift** (`BENCH_mc.json`) — the streaming simulation
//!   engine's gate configuration is no longer bit-identical across
//!   worker-pool sizes, or its fixed-seed curve leaves the Wilson band
//!   around the exact reference, or the committed facts themselves were
//!   recorded failing. (The sup distance is *not* compared against the
//!   committed value bit for bit: `exp`/`ln` may differ across libm
//!   builds; the band re-derived on this machine is the contract.)
//! * **service drift** (`BENCH_service.json`) — the resident query
//!   service's answers on the quick fleet trace are not bit-identical to
//!   independent fresh solves (sup-distance must be exactly 0), the
//!   deterministic trace's cache hit rate falls below the committed
//!   floor, the deterministic deadline leg's hit rate / degraded-serve
//!   fraction drift from their exact constructed values, or the
//!   committed facts were recorded failing any of those checks;
//! * **cancellation overhead** — with an unlimited budget the
//!   budget-threaded uniformisation engine must touch *exactly* as many
//!   entries as the plain engine and produce a bit-identical curve: the
//!   cooperative check points are free on the uncancelled hot path.
//!
//! A machine-readable verdict is always written to
//! `REGRESS_report.json` under `--out` (the CI artifact), then the run
//! exits non-zero if any check failed. Timings are deliberately **not**
//! gated — CI boxes are too noisy; the gate watches the
//! machine-independent counters instead.

use super::config::Config;
use super::{discretise_fig8, spmm as spmm_experiment, sweep as sweep_experiment, write_json};
use crate::json::Json;
use markov::transient::{
    measure_curve, measure_curve_budgeted, CurveCache, Representation, TransientOptions,
};
use markov::Budget;
use std::path::Path;

/// The tolerated relative growth in `touched_entries`.
const TOUCHED_GROWTH_LIMIT: f64 = 0.10;
/// The accuracy-drift bound on engine sup-distances.
const DRIFT_BOUND: f64 = 1e-12;
/// Committed Δ configs above this state count are skipped (the gate must
/// stay a quick smoke, not a multi-minute bench re-run).
const MAX_GATED_STATES: usize = 50_000;

struct Report {
    checks: Vec<(String, bool, String)>,
}

impl Report {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
        self.checks.push((name.to_owned(), ok, detail));
    }

    fn failures(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|(_, ok, _)| !ok)
            .map(|(name, _, _)| name.as_str())
            .collect()
    }
}

fn load(dir: &Path, name: &str) -> Result<Json, String> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read committed baseline {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Runs the gate.
///
/// # Errors
///
/// A summary of the failed checks (after writing the report artifact).
pub fn run(cfg: &Config) -> Result<(), String> {
    let against = Path::new(&cfg.against);
    let mut report = Report { checks: Vec::new() };

    // A missing/corrupt committed baseline — or an engine erroring out
    // mid-gate — is itself a gate failure that must still end up in the
    // report artifact, not an early abort that leaves CI without one.
    let uni = load(against, "BENCH_uniformisation.json")
        .and_then(|committed| uniformisation_gate(cfg, &committed, &mut report));
    if let Err(e) = uni {
        report.check("uniformisation gate execution", false, e);
    }
    let sweep = load(against, "BENCH_sweep.json")
        .and_then(|committed| sweep_gate(cfg, &committed, &mut report));
    if let Err(e) = sweep {
        report.check("sweep gate execution", false, e);
    }
    let spmm =
        load(against, "BENCH_spmm.json").and_then(|committed| spmm_gate(&committed, &mut report));
    if let Err(e) = spmm {
        report.check("spmm gate execution", false, e);
    }
    let mc = load(against, "BENCH_mc.json").and_then(|committed| mc_gate(&committed, &mut report));
    if let Err(e) = mc {
        report.check("mc gate execution", false, e);
    }
    let service = load(against, "BENCH_service.json")
        .and_then(|committed| service_gate(cfg, &committed, &mut report));
    if let Err(e) = service {
        report.check("service gate execution", false, e);
    }

    let rows: Vec<String> = report
        .checks
        .iter()
        .map(|(name, ok, detail)| {
            format!(
                "    {{\"check\": \"{name}\", \"ok\": {ok}, \"detail\": \"{}\"}}",
                detail.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    let failures = report.failures();
    let body = format!(
        "{{\n  \"bench\": \"regress\",\n  \"generated_by\": \"bench-harness regress\",\n  \
         \"against\": \"{}\",\n  \"ok\": {},\n  \"checks\": [\n{}\n  ]\n}}\n",
        cfg.against.replace('\\', "\\\\").replace('"', "\\\""),
        failures.is_empty(),
        rows.join(",\n")
    );
    write_json(cfg, "REGRESS_report.json", &body)?;

    if failures.is_empty() {
        println!("regress: all {} checks passed", report.checks.len());
        Ok(())
    } else {
        Err(format!("regression gate failed: {}", failures.join(", ")))
    }
}

/// Re-runs the engine matrix at each committed Δ (small enough to gate)
/// and diffs structure, accuracy and touched-entry counters.
fn uniformisation_gate(cfg: &Config, committed: &Json, report: &mut Report) -> Result<(), String> {
    let configs = committed
        .get("configs")
        .and_then(Json::as_array)
        .ok_or("committed BENCH_uniformisation.json has no 'configs' array")?;
    let t_query = 8000.0;
    let tight_epsilon = cfg.epsilon.unwrap_or(1e-13);
    for config in configs {
        let delta = config
            .num("delta")
            .ok_or("committed config without 'delta'")?;
        let committed_states = config.num("states").unwrap_or(0.0) as usize;
        if committed_states > MAX_GATED_STATES {
            println!(
                "skip Δ={delta}: {committed_states} states exceeds the quick-gate \
                 budget ({MAX_GATED_STATES})"
            );
            continue;
        }
        let disc = discretise_fig8(delta)?;
        let stats = disc.stats();
        report.check(
            &format!("structure Δ={delta}"),
            stats.states == committed_states
                && stats.generator_nonzeros == config.num("nnz").unwrap_or(0.0) as usize,
            format!(
                "states {} vs committed {}, nnz {} vs {}",
                stats.states,
                committed_states,
                stats.generator_nonzeros,
                config.num("nnz").unwrap_or(0.0) as usize
            ),
        );

        // The committed counters were produced at the baseline ε; re-run
        // with the same settings so touched_entries are comparable.
        let base = TransientOptions {
            threads: cfg.threads.max(4),
            epsilon: 1e-10,
            ..TransientOptions::default()
        };
        let engines: [(&str, TransientOptions); 3] = [
            (
                "persistent_pool_fused",
                TransientOptions {
                    representation: Representation::Csr,
                    active_window: false,
                    ..base
                },
            ),
            (
                "banded_full",
                TransientOptions {
                    representation: Representation::Banded,
                    active_window: false,
                    ..base
                },
            ),
            (
                "banded_windowed",
                TransientOptions {
                    representation: Representation::Banded,
                    active_window: true,
                    ..base
                },
            ),
        ];
        let committed_engines = config
            .get("engines")
            .and_then(Json::as_array)
            .ok_or("committed config without 'engines'")?;
        for (name, opts) in &engines {
            let curve = measure_curve(
                disc.chain(),
                disc.alpha(),
                &[t_query],
                disc.empty_measure(),
                opts,
            )
            .map_err(|e| e.to_string())?;
            let Some(row) = committed_engines
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
            else {
                // Engines added after the baseline was committed have no
                // reference yet — regenerate the baseline to gate them.
                println!("skip engine {name} at Δ={delta}: not in the committed baseline");
                continue;
            };
            let committed_touched = row.num("touched_entries").unwrap_or(0.0);
            let fresh = curve.touched_entries as f64;
            let growth = if committed_touched > 0.0 {
                fresh / committed_touched - 1.0
            } else {
                0.0
            };
            report.check(
                &format!("touched {name} Δ={delta}"),
                growth <= TOUCHED_GROWTH_LIMIT,
                format!(
                    "{fresh:.0} vs committed {committed_touched:.0} ({:+.1}%)",
                    growth * 100.0
                ),
            );
        }

        // Zero-overhead cancellation: with an unlimited budget the
        // cooperative check points must compile down to a never-taken
        // branch — the budgeted engine does *exactly* the same work
        // (touched_entries bit-equal, not merely within the growth
        // limit) and produces *exactly* the same curve as the plain one.
        {
            let opts = TransientOptions {
                representation: Representation::Csr,
                active_window: false,
                ..base
            };
            let plain = measure_curve(
                disc.chain(),
                disc.alpha(),
                &[t_query],
                disc.empty_measure(),
                &opts,
            )
            .map_err(|e| e.to_string())?;
            let budgeted = measure_curve_budgeted(
                disc.chain(),
                disc.alpha(),
                &[t_query],
                disc.empty_measure(),
                &opts,
                &mut CurveCache::new(),
                &Budget::unlimited(),
            )
            .map_err(|e| e.to_string())?;
            report.check(
                &format!("budget zero-overhead Δ={delta}"),
                budgeted.touched_entries == plain.touched_entries
                    && budgeted.points == plain.points,
                format!(
                    "unlimited-budget engine touched {} vs plain {} \
                     (must be equal), curves bit-identical: {}",
                    budgeted.touched_entries,
                    plain.touched_entries,
                    budgeted.points == plain.points
                ),
            );
        }

        // Accuracy drift at a tightened ε: each engine is within ε of the
        // true curve, so at ε = 1e-13 any sup-distance beyond 1e-12 means
        // an engine broke, not that the budgets added up unluckily.
        let tight = TransientOptions {
            epsilon: tight_epsilon,
            ..base
        };
        let solve = |representation, active_window| {
            measure_curve(
                disc.chain(),
                disc.alpha(),
                &[t_query],
                disc.empty_measure(),
                &TransientOptions {
                    representation,
                    active_window,
                    ..tight
                },
            )
            .map_err(|e| e.to_string())
        };
        let csr = solve(Representation::Csr, false)?;
        let banded = solve(Representation::Banded, false)?;
        let windowed = solve(Representation::Banded, true)?;
        let full_diff = (csr.points[0].1 - banded.points[0].1).abs();
        let window_diff = (csr.points[0].1 - windowed.points[0].1).abs();
        report.check(
            &format!("accuracy Δ={delta}"),
            full_diff <= DRIFT_BOUND && window_diff <= DRIFT_BOUND,
            format!(
                "banded-full {full_diff:e}, banded-windowed {window_diff:e} vs CSR \
                 at ε={tight_epsilon:e} (bound {DRIFT_BOUND:e})"
            ),
        );
    }
    Ok(())
}

/// Re-runs the Monte Carlo gate configuration: the streaming engine must
/// stay bit-identical across worker-pool sizes and inside the Wilson
/// band of the exact curve, and the committed facts must have been
/// recorded passing (a baseline regenerated in a broken state fails the
/// gate rather than laundering the breakage).
fn mc_gate(committed: &Json, report: &mut Report) -> Result<(), String> {
    use super::mc;
    use crate::json::Json as J;

    let gate = committed
        .get("gate")
        .ok_or("committed BENCH_mc.json has no 'gate' object")?;
    let committed_runs = gate.num("runs").ok_or("gate without 'runs'")? as usize;
    let committed_seed = gate.num("seed").ok_or("gate without 'seed'")? as u64;
    report.check(
        "mc committed facts",
        gate.get("bit_identical_across_threads") == Some(&J::Bool(true))
            && gate.get("within_band") == Some(&J::Bool(true)),
        format!(
            "committed bit_identical {:?}, within_band {:?}",
            gate.get("bit_identical_across_threads"),
            gate.get("within_band")
        ),
    );

    // Validate the committed configuration against the in-code gate
    // constants BEFORE running anything: a stale/corrupt baseline must
    // not steer CI into re-deriving facts at a size or seed the code
    // does not certify (or into an unbounded amount of work).
    let config_ok = committed_runs == mc::GATE_RUNS && committed_seed == mc::GATE_SEED;
    report.check(
        "mc gate configuration",
        config_ok,
        format!(
            "committed runs {committed_runs} / seed {committed_seed} vs code \
             {} / {}",
            mc::GATE_RUNS,
            mc::GATE_SEED
        ),
    );
    if !config_ok {
        return Ok(()); // the failed check above already gates the run
    }

    let facts = mc::gate_facts(mc::GATE_RUNS, mc::GATE_SEED)?;
    report.check(
        "mc thread bit-identity",
        facts.bit_identical,
        format!(
            "streaming studies across worker pools 1/2/4/8 at {} runs",
            facts.runs
        ),
    );
    report.check(
        "mc CI-band agreement",
        facts.within_band(),
        format!(
            "sup-distance {:.4e} vs Wilson band {:.4e} (committed {:.4e})",
            facts.sup_distance,
            facts.wilson_band,
            gate.num("sup_distance_vs_exact").unwrap_or(f64::NAN)
        ),
    );
    Ok(())
}

/// Re-runs the quick fleet trace through a fresh resident service: the
/// served answers must be bit-identical to independent fresh solves
/// (sup-distance exactly 0) and the deterministic trace's hit rate must
/// clear the floor — a cache that silently stopped hitting (e.g. a
/// canonical-key change that no longer erases names) fails here, not in
/// production. The committed facts are gated too: a baseline regenerated
/// in a broken state fails rather than laundering the breakage.
fn service_gate(cfg: &Config, committed: &Json, report: &mut Report) -> Result<(), String> {
    use super::service;

    let trace = committed
        .get("trace")
        .ok_or("committed BENCH_service.json has no 'trace' object")?;
    let committed_sup = trace
        .num("max_abs_difference_vs_fresh")
        .ok_or("trace without 'max_abs_difference_vs_fresh'")?;
    let committed_hit_rate = trace.num("hit_rate").ok_or("trace without 'hit_rate'")?;
    report.check(
        "service committed facts",
        committed_sup == 0.0 && committed_hit_rate >= service::GATE_HIT_RATE_FLOOR,
        format!(
            "committed sup-distance {committed_sup:e} (must be exactly 0), \
             hit rate {committed_hit_rate:.3} (floor {})",
            service::GATE_HIT_RATE_FLOOR
        ),
    );

    let committed_deadline_rate = committed
        .get("deadline_leg")
        .and_then(|leg| leg.num("deadline_hit_rate"));
    let committed_degraded_fraction = committed
        .get("deadline_leg")
        .and_then(|leg| leg.num("degraded_fraction"));
    report.check(
        "service committed deadline facts",
        committed_deadline_rate == Some(service::GATE_DEADLINE_HIT_RATE)
            && committed_degraded_fraction == Some(service::GATE_DEGRADED_FRACTION),
        format!(
            "committed deadline-hit rate {committed_deadline_rate:?} and degraded \
             fraction {committed_degraded_fraction:?} vs the deterministic \
             {} / {}",
            service::GATE_DEADLINE_HIT_RATE,
            service::GATE_DEGRADED_FRACTION
        ),
    );

    let outcome = service::run_fleet_trace(true, 24, cfg.threads.clamp(1, 4))?;
    report.check(
        "service bit-identity (quick trace)",
        outcome.sup_vs_fresh == 0.0,
        format!(
            "served-vs-fresh sup-distance {:e} over {} configurations \
             (must be exactly 0)",
            outcome.sup_vs_fresh, outcome.distinct
        ),
    );
    let hit_rate = outcome.stats.hit_rate();
    report.check(
        "service hit rate (quick trace)",
        hit_rate >= service::GATE_HIT_RATE_FLOOR,
        format!(
            "{hit_rate:.3} over {} requests ({} hits, {} joined, {} misses) \
             vs floor {}",
            outcome.requests,
            outcome.stats.hits,
            outcome.stats.joined,
            outcome.stats.misses,
            service::GATE_HIT_RATE_FLOOR
        ),
    );
    // The deadline leg is deterministic: expired-deadline requests against
    // fresh variants must *all* expire and *all* degrade (with checked
    // bounds — run_fleet_trace errors out on a missing/invalid bound),
    // while resident targets serve exact; any drift in those exact rates
    // means the deadline or degradation path changed behaviour.
    report.check(
        "service deadline determinism (quick trace)",
        outcome.deadline_hit_rate() == service::GATE_DEADLINE_HIT_RATE
            && outcome.degraded_fraction() == service::GATE_DEGRADED_FRACTION
            && outcome.stats.deadline_expired == outcome.distinct as u64
            && outcome.stats.degraded_served == outcome.distinct as u64,
        format!(
            "deadline-hit rate {:.3} (expired {}), degraded fraction {:.3} \
             (served {}) over {} deadline requests vs exact {} / {}",
            outcome.deadline_hit_rate(),
            outcome.stats.deadline_expired,
            outcome.degraded_fraction(),
            outcome.stats.degraded_served,
            outcome.deadline_requests,
            service::GATE_DEADLINE_HIT_RATE,
            service::GATE_DEGRADED_FRACTION
        ),
    );

    // The snapshot-reload leg: the committed facts must describe a
    // lossless restart (every written entry revives, nothing rejected,
    // reload answers bit-identical), and a live re-derivation must
    // reproduce them — a format change that silently drops entries, or
    // a revive path that re-solves instead of hitting, fails here.
    let snap_committed = committed
        .get("snapshot")
        .ok_or("committed BENCH_service.json has no 'snapshot' object")?;
    let committed_written = snap_committed
        .num("entries_written")
        .ok_or("snapshot without 'entries_written'")?;
    let committed_loaded = snap_committed
        .num("loaded")
        .ok_or("snapshot without 'loaded'")?;
    let committed_rejected = snap_committed
        .num("rejected")
        .ok_or("snapshot without 'rejected'")?;
    let committed_reload_rate = snap_committed
        .num("reload_hit_rate")
        .ok_or("snapshot without 'reload_hit_rate'")?;
    let committed_reload_sup = snap_committed
        .num("max_abs_difference_vs_fresh_after_reload")
        .ok_or("snapshot without 'max_abs_difference_vs_fresh_after_reload'")?;
    report.check(
        "service committed snapshot facts",
        committed_loaded == committed_written
            && committed_written > 0.0
            && committed_rejected == 0.0
            && committed_reload_sup == 0.0
            && committed_reload_rate >= service::GATE_HIT_RATE_FLOOR,
        format!(
            "committed reload: {committed_loaded}/{committed_written} entries revived, \
             {committed_rejected} rejected, hit rate {committed_reload_rate:.3} \
             (floor {}), sup-distance {committed_reload_sup:e} (must be exactly 0)",
            service::GATE_HIT_RATE_FLOOR
        ),
    );

    let snap = service::run_snapshot_leg(true)?;
    report.check(
        "service snapshot reload (quick)",
        snap.loaded == snap.entries_written
            && snap.entries_written == snap.distinct
            && snap.rejected == 0
            && snap.sup_vs_fresh == 0.0
            && snap.reload_hit_rate >= service::GATE_HIT_RATE_FLOOR,
        format!(
            "reload revived {}/{} entries ({} rejected) over {} configurations, \
             hit rate {:.3} (floor {}), post-reload sup-distance {:e} \
             (must be exactly 0)",
            snap.loaded,
            snap.entries_written,
            snap.rejected,
            snap.distinct,
            snap.reload_hit_rate,
            service::GATE_HIT_RATE_FLOOR,
            snap.sup_vs_fresh
        ),
    );
    Ok(())
}

/// Re-runs the quick sweep grid: bit-identity planned-vs-naive, and the
/// plan still forms the committed number of groups.
fn sweep_gate(_cfg: &Config, committed: &Json, report: &mut Report) -> Result<(), String> {
    use kibamrm::solver::{SolverOptions, SolverRegistry};
    use kibamrm::sweep::SweepPlan;

    let registry = SolverRegistry::with_default_backends().with_options(SolverOptions {
        scenario_threads: 1,
        row_threads: 1,
        representation: Representation::Csr,
    });
    let base = sweep_experiment::base_scenario()?;
    let grid = sweep_experiment::build_grid(8, &base)?;
    let scenarios = grid.expand().map_err(|e| e.to_string())?;
    let plan = SweepPlan::build(&registry, &scenarios);
    let naive = registry.sweep_naive(&scenarios);
    let planned = registry.sweep(&scenarios);
    let sup = sweep_experiment::sup_distance(&planned, &naive)?;
    report.check(
        "sweep bit-identity (8-point grid)",
        sup == 0.0,
        format!("planned-vs-naive sup-distance {sup:e} (must be exactly 0)"),
    );

    let committed_row = committed
        .get("grids")
        .and_then(Json::as_array)
        .and_then(|grids| grids.iter().find(|g| g.num("points") == Some(8.0)));
    match committed_row {
        Some(row) => {
            let committed_groups = row.num("groups").unwrap_or(0.0) as usize;
            report.check(
                "sweep plan shape (8-point grid)",
                plan.groups().len() == committed_groups,
                format!(
                    "{} groups vs committed {committed_groups}",
                    plan.groups().len()
                ),
            );
        }
        None => report.check(
            "sweep plan shape (8-point grid)",
            false,
            "committed BENCH_sweep.json has no 8-point grid entry".into(),
        ),
    }
    Ok(())
}

/// Re-runs the quick column-panel family (`BENCH_spmm.json`): the panel
/// must stay bit-identical to independent single-vector solves, group
/// the whole rate-rescale family, match the committed touched-entry
/// counters *exactly* (they are machine-independent — any drift means
/// the sweep order changed), keep beating the k independent sweeps on
/// reads, and degenerate bit-identically at k = 1. Timings are not
/// compared.
fn spmm_gate(committed: &Json, report: &mut Report) -> Result<(), String> {
    use crate::json::Json as J;

    let panel = committed
        .get("panel")
        .ok_or("committed BENCH_spmm.json has no 'panel' object")?;
    let committed_k = committed
        .get("family")
        .and_then(|f| f.num("k"))
        .ok_or("committed BENCH_spmm.json has no 'family.k'")? as usize;
    let committed_sup = panel
        .num("max_abs_difference_vs_independent")
        .ok_or("panel without 'max_abs_difference_vs_independent'")?;
    let committed_solo = panel
        .num("solo_touched_entries")
        .ok_or("panel without 'solo_touched_entries'")?;
    let committed_panel_touched = panel
        .num("panel_touched_entries")
        .ok_or("panel without 'panel_touched_entries'")?;
    let committed_sizes: Vec<usize> = panel
        .get("panel_sizes")
        .and_then(Json::as_array)
        .ok_or("panel without 'panel_sizes'")?
        .iter()
        .filter_map(|s| s.as_f64())
        .map(|s| s as usize)
        .collect();
    let committed_k1_sizes: Vec<usize> = panel
        .get("k1_panel_sizes")
        .and_then(Json::as_array)
        .ok_or("panel without 'k1_panel_sizes'")?
        .iter()
        .filter_map(|s| s.as_f64())
        .map(|s| s as usize)
        .collect();
    report.check(
        "spmm committed facts",
        committed_sup == 0.0
            && committed_sizes == vec![committed_k]
            && committed_solo > committed_panel_touched
            && committed_k1_sizes == vec![1]
            && panel.get("k1_bitwise_identical") == Some(&J::Bool(true)),
        format!(
            "committed sup-distance {committed_sup:e} (must be exactly 0), \
             panel sizes {committed_sizes:?} for k={committed_k}, touched \
             {committed_solo:.0} solo vs {committed_panel_touched:.0} panel, \
             k1 {committed_k1_sizes:?} / {:?}",
            panel.get("k1_bitwise_identical")
        ),
    );

    let (discs, times) = spmm_experiment::build_family()?;
    let facts = spmm_experiment::derive_facts(&discs, &times)?;
    report.check(
        "spmm panel bit-identity",
        facts.sup_distance == 0.0,
        format!(
            "panel-vs-single sup-distance {:e} over k={} curves \
             (must be exactly 0)",
            facts.sup_distance, facts.k
        ),
    );
    report.check(
        "spmm panel grouping",
        facts.panel_sizes == vec![facts.k],
        format!(
            "rate-rescale family formed panels {:?} (expected one of \
             size {})",
            facts.panel_sizes, facts.k
        ),
    );
    report.check(
        "spmm touched counters",
        facts.solo_touched_entries as f64 == committed_solo
            && facts.panel_touched_entries as f64 == committed_panel_touched
            && facts.touched_savings() > 1.0,
        format!(
            "solo {} vs committed {:.0}, panel {} vs committed {:.0} \
             (both must be exact), savings {:.3}x (must beat 1)",
            facts.solo_touched_entries,
            committed_solo,
            facts.panel_touched_entries,
            committed_panel_touched,
            facts.touched_savings()
        ),
    );
    report.check(
        "spmm k=1 degeneration",
        facts.k1_panel_sizes == vec![1] && facts.k1_bitwise_identical,
        format!(
            "k=1 panel sizes {:?}, bitwise identical to the unpaneled \
             kernel: {}",
            facts.k1_panel_sizes, facts.k1_bitwise_identical
        ),
    );
    Ok(())
}
