//! Figure 7: lifetime distribution of the on/off model with a single
//! charge well (`f = 1 Hz`, `K = 1`, `C = 7200 As`, `c = 1`, `k = 0`) —
//! the Markovian approximation at `Δ ∈ {100, 50, 25, 5}` against 1000
//! simulation runs, all through the unified solver API.

use super::config::Config;
use super::save_curves;
use kibamrm::scenario::Scenario;
use kibamrm::solver::{LifetimeSolver, SimulationSolver};
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let workload = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
        .map_err(|e| e.to_string())?;
    // The paper's x-axis: 6000..20000 s.
    let times: Vec<Time> = (0..=140)
        .map(|i| Time::from_seconds(6000.0 + i as f64 * 100.0))
        .collect();
    let base = Scenario::builder()
        .name("fig7-onoff-c1")
        .workload(workload)
        .capacity(Charge::from_amp_seconds(7200.0))
        .linear()
        .times(times)
        .simulation(cfg.sim_runs(), 2007)
        .build()
        .map_err(|e| e.to_string())?;

    // Match the paper's uniformisation rate ν = max exit rate so the
    // reported iteration counts are comparable.
    let solver = cfg.paper_discretisation_solver();

    let deltas: &[f64] = if cfg.fast {
        &[100.0, 50.0, 25.0]
    } else {
        &[100.0, 50.0, 25.0, 5.0]
    };
    let mut curves = Vec::new();
    for &delta in deltas {
        let scenario = base.with_delta(Charge::from_amp_seconds(delta));
        let dist = solver.solve(&scenario).map_err(|e| e.to_string())?;
        let d = dist.diagnostics();
        println!(
            "Δ = {delta:>5}: {:>7} states, {:>9} generator non-zeros, {:>6} iterations",
            d.states.unwrap_or(0),
            d.generator_nonzeros.unwrap_or(0),
            d.iterations.unwrap_or(0)
        );
        curves.push(dist.to_curve(format!("Delta={delta}")));
    }

    let sim = SimulationSolver::new()
        .with_horizon(Time::from_seconds(25_000.0))
        .solve(&base)
        .map_err(|e| e.to_string())?;
    println!(
        "simulation ({} runs): mean lifetime {:.0} s (paper: ≈15000 s, near-deterministic)",
        sim.diagnostics().runs.unwrap_or(0),
        sim.mean().as_seconds()
    );
    curves.push(sim.to_curve("simulation"));

    save_curves(cfg, "fig7_onoff_c1", "t_seconds", &curves)
}
