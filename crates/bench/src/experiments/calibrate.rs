//! §4.3 calibration: re-derive `λ_burst` such that the burst model's
//! steady-state sending probability equals the simple model's ¼, and
//! confirm the paper's choice of 182/h.

use super::config::Config;
use super::save_table;
use kibamrm::workload::Workload;
use markov::steady_state::stationary_gth;
use numerics::roots::brent;
use units::Rate;

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    // Reference: the simple model's P[send].
    let simple = Workload::simple_model().map_err(|e| e.to_string())?;
    let pi = stationary_gth(simple.ctmc()).map_err(|e| e.to_string())?;
    let target: f64 = simple.send_states().iter().map(|&i| pi[i]).sum();
    println!("simple model: P[send] = {target} (paper: ¼)");

    let send_prob = |lambda_per_hour: f64| -> f64 {
        let w = Workload::burst_model_with(Rate::per_hour(lambda_per_hour)).expect("positive rate");
        let pi = stationary_gth(w.ctmc()).expect("irreducible");
        w.send_states().iter().map(|&i| pi[i]).sum()
    };

    // P[send] grows monotonically with λ_burst; bracket and solve.
    let solved =
        brent(|l| send_prob(l) - target, 1.0, 10_000.0, 1e-10, 200).map_err(|e| e.to_string())?;
    println!("solved λ_burst = {solved:.6} per hour (paper: 182)");

    let mut rows = Vec::new();
    for lambda in [50.0, 100.0, 182.0, solved, 500.0] {
        let p = send_prob(lambda);
        let w = Workload::burst_model_with(Rate::per_hour(lambda)).map_err(|e| e.to_string())?;
        let pi = stationary_gth(w.ctmc()).map_err(|e| e.to_string())?;
        let sleep = pi[w.ctmc().find_state("sleep").expect("state exists")];
        println!("λ_burst = {lambda:>10.3}/h → P[send] = {p:.6}, P[sleep] = {sleep:.4}");
        rows.push(vec![
            format!("{lambda}"),
            format!("{p}"),
            format!("{sleep}"),
        ]);
    }

    let check = (send_prob(182.0) - 0.25).abs();
    println!(
        "\nP[send] at the paper's λ_burst = 182/h deviates from ¼ by {check:.2e} \
         (the paper's calibration is exact: 91/364 = ¼)"
    );

    save_table(
        cfg,
        "calibrate_lambda_burst",
        &["lambda_per_hour", "p_send", "p_sleep"],
        &rows,
    )
}
