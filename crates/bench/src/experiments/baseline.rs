//! Machine-readable performance baselines for the uniformisation hot
//! path, written as `BENCH_spmv.json` and `BENCH_uniformisation.json`
//! under the output directory.
//!
//! Two artefacts, both on the paper's Fig. 8 two-well chain:
//!
//! * **spmv** — ns/op medians for one `Pᵀ·v` product through each
//!   kernel: the sequential CSR reference, the sequential banded (DIA)
//!   kernel, the legacy spawn-per-call path
//!   ([`markov::sparse::CsrMatrix::mul_vec_parallel`]), the persistent worker pool
//!   ([`SpmvPool`]), and the fused SpMV+dot pool kernel.
//! * **uniformisation** — ns/op medians for a whole
//!   `Pr[battery empty at t]` curve through the representation/window
//!   engine matrix at several `Δ`: the PR 2 CSR engine
//!   (`persistent_pool_fused`), the banded engine over the full state
//!   space (`banded_full`), and the banded engine with the active
//!   window (`banded_windowed`); the legacy spawn-per-call engine rides
//!   along on chains small enough to afford it. Each engine reports its
//!   `touched_entries` total, so the window savings are visible in the
//!   committed trajectory, and the windowed curve is asserted against
//!   the CSR engine's.
//!
//! `--quick` is the CI smoke mode: one tiny `Δ`, a single repetition,
//! and a tightened ε so the banded-windowed vs CSR agreement assertion
//! at 1e-12 is backed by the engines' error *bounds* rather than luck.
//!
//! The JSON is deliberately flat and stable so CI diffs of committed
//! baselines stay readable: each kernel/engine carries
//! `median_ns_per_op`, each config carries `states` and `nnz`.

use super::config::Config;
use super::{discretise_fig8 as discretise, median_ns, write_json};
use markov::pool::SpmvPool;
use markov::transient::{measure_curve, CurveSolution, Representation, TransientOptions};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    // The per-call spawn cost only matters with real worker counts; the
    // baseline pins ≥ 4 so single-core CI boxes still exercise (and
    // time) the multi-worker code paths. The spmv kernels bypass the
    // pool's available-parallelism clamp for this; the end-to-end
    // engine cannot (the clamp is part of its behaviour), so the
    // uniformisation JSON records the effective worker count alongside
    // the requested one.
    let threads = cfg.threads.max(4);
    spmv_baseline(cfg, threads)?;
    uniformisation_baseline(cfg, threads)
}

fn spmv_baseline(cfg: &Config, threads: usize) -> Result<(), String> {
    let deltas: &[f64] = if cfg.quick {
        &[300.0]
    } else if cfg.fast {
        &[50.0]
    } else {
        // Δ = 5 is the paper's million-state configuration.
        &[50.0, 5.0]
    };
    let reps = if cfg.quick {
        1
    } else if cfg.fast {
        7
    } else {
        11
    };
    let mut configs = Vec::new();
    for &delta in deltas {
        let disc = discretise(delta)?;
        let (pt, _nu) = disc
            .chain()
            .uniformised_transposed(1.02)
            .map_err(|e| e.to_string())?;
        let (pt_banded, _nu) = disc
            .chain()
            .uniformised_transposed_banded(1.02)
            .map_err(|e| e.to_string())?;
        let states = pt.rows();
        let nnz = pt.nnz();
        let x = vec![1.0 / states as f64; states];
        let mut y = vec![0.0; states];
        let measure = disc.empty_measure().to_vec();

        let sequential = median_ns(reps, || {
            pt.mul_vec_into(&x, &mut y).expect("dims");
        });
        let banded_seq = median_ns(reps, || {
            pt_banded.mul_vec_range_into(&x, &mut y, 0..states);
        });
        let spawn = median_ns(reps, || {
            pt.mul_vec_parallel(&x, &mut y, threads).expect("dims");
        });
        let pool = SpmvPool::with_exact_threads(threads);
        let partition = pt.nnz_partition(pool.threads());
        let pooled = median_ns(reps, || {
            pool.mul_vec(&pt, &partition, &x, &mut y).expect("dims");
        });
        let fused = median_ns(reps, || {
            pool.mul_vec_dot(&pt, &partition, &x, &mut y, &measure)
                .expect("dims");
        });

        println!(
            "spmv Δ={delta}: {states} states, {nnz} nnz — seq {sequential:.0} ns, \
             banded_seq {banded_seq:.0} ns, spawn_x{threads} {spawn:.0} ns, \
             pool_x{threads} {pooled:.0} ns, fused {fused:.0} ns \
             (pool is {:.2}x vs spawn, banded is {:.2}x vs seq)",
            spawn / pooled,
            sequential / banded_seq
        );
        configs.push(format!(
            "    {{\n      \"delta\": {delta},\n      \"states\": {states},\n      \
             \"nnz\": {nnz},\n      \"kernels\": [\n        \
             {{\"name\": \"sequential\", \"median_ns_per_op\": {sequential:.0}}},\n        \
             {{\"name\": \"banded_sequential\", \"median_ns_per_op\": {banded_seq:.0}}},\n        \
             {{\"name\": \"spawn_x{threads}\", \"median_ns_per_op\": {spawn:.0}}},\n        \
             {{\"name\": \"pool_x{threads}\", \"median_ns_per_op\": {pooled:.0}}},\n        \
             {{\"name\": \"fused_pool_x{threads}\", \"median_ns_per_op\": {fused:.0}}}\n      ],\n      \
             \"speedup_pool_vs_spawn\": {:.3},\n      \
             \"speedup_banded_vs_sequential\": {:.3}\n    }}",
            spawn / pooled,
            sequential / banded_seq
        ));
    }
    let body = format!(
        "{{\n  \"bench\": \"spmv\",\n  \"generated_by\": \"bench-harness baseline\",\n  \
         \"threads\": {threads},\n  \"configs\": [\n{}\n  ]\n}}\n",
        configs.join(",\n")
    );
    write_json(cfg, "BENCH_spmv.json", &body)
}

/// One engine configuration of the uniformisation matrix.
struct Engine {
    name: &'static str,
    opts: TransientOptions,
}

fn uniformisation_baseline(cfg: &Config, threads: usize) -> Result<(), String> {
    // Quick mode is the CI smoke: correctness assertions at a tightened
    // ε (so the 1e-12 agreement bound follows from the engines' error
    // budgets, not chance), one repetition, tiny chain.
    let deltas: &[f64] = if cfg.quick || cfg.fast {
        &[300.0]
    } else {
        &[300.0, 50.0, 10.0]
    };
    let epsilon = if cfg.quick { 1e-13 } else { 1e-10 };
    // Each engine is within ε of the true curve, so their distance is
    // provably ≤ 2ε; assert that bound (with 5× slack in quick mode)
    // rather than ε itself, so a run where both engines land near their
    // budgets on opposite sides cannot fail spuriously. The committed
    // JSON records the measured distance, which sits orders of
    // magnitude below this.
    let agreement_bound = if cfg.quick { 1e-12 } else { 2.0 * epsilon };
    let t_query = 8000.0;
    let mut configs = Vec::new();
    for &delta in deltas {
        let reps = match () {
            _ if cfg.quick => 1,
            _ if cfg.fast || delta < 50.0 => 3,
            _ => 7,
        };
        let disc = discretise(delta)?;
        let states = disc.stats().states;
        let nnz = disc.stats().generator_nonzeros;
        let base = TransientOptions {
            threads,
            epsilon,
            ..TransientOptions::default()
        };
        // What the engines actually run with: SpmvPool clamps to the
        // machine's cores, and chains below the small-matrix threshold
        // stay inline. On a single-core box every engine is therefore
        // sequential while the legacy side still pays 4 spawned threads
        // per product — exactly the old engine's behaviour, but the
        // JSON must say so rather than imply a 4-worker pool ran.
        let engine_workers = if states < markov::sparse::PARALLEL_SPMV_MIN_ROWS {
            1
        } else {
            SpmvPool::clamped_threads(threads)
        };
        let engines = [
            Engine {
                name: "persistent_pool_fused",
                opts: TransientOptions {
                    representation: Representation::Csr,
                    active_window: false,
                    ..base
                },
            },
            Engine {
                name: "banded_full",
                opts: TransientOptions {
                    representation: Representation::Banded,
                    active_window: false,
                    ..base
                },
            },
            Engine {
                name: "banded_windowed",
                opts: TransientOptions {
                    representation: Representation::Banded,
                    active_window: true,
                    ..base
                },
            },
        ];
        let mut curves: Vec<CurveSolution> = Vec::new();
        let mut medians: Vec<f64> = Vec::new();
        for engine in &engines {
            let run = || {
                measure_curve(
                    disc.chain(),
                    disc.alpha(),
                    &[t_query],
                    disc.empty_measure(),
                    &engine.opts,
                )
                .expect("engine curve")
            };
            curves.push(run());
            medians.push(median_ns(reps, || {
                run();
            }));
        }
        let csr = &curves[0];
        let windowed = &curves[2];
        let max_diff = (csr.points[0].1 - windowed.points[0].1).abs();
        if max_diff > agreement_bound {
            return Err(format!(
                "banded-windowed engine disagrees with the CSR engine at Δ = {delta}: \
                 sup-distance {max_diff:e} > {agreement_bound:e}"
            ));
        }
        let banded_diff = (csr.points[0].1 - curves[1].points[0].1).abs();
        if banded_diff > 1e-12 {
            return Err(format!(
                "banded-full engine disagrees with the CSR engine at Δ = {delta}: \
                 sup-distance {banded_diff:e}"
            ));
        }

        // The legacy spawn-per-call engine rides along where the chain
        // is small enough to afford its per-product spawn storm.
        let legacy = if !cfg.quick && states <= 50_000 {
            let legacy_curve = legacy_measure_curve(
                disc.chain(),
                disc.alpha(),
                &[t_query],
                disc.empty_measure(),
                &base,
            )?;
            let legacy_diff = (csr.points[0].1 - legacy_curve[0].1).abs();
            if legacy_diff > 1e-12 {
                return Err(format!(
                    "CSR engine disagrees with the legacy baseline: sup-distance {legacy_diff:e}"
                ));
            }
            Some(median_ns(reps, || {
                legacy_measure_curve(
                    disc.chain(),
                    disc.alpha(),
                    &[t_query],
                    disc.empty_measure(),
                    &base,
                )
                .expect("legacy curve");
            }))
        } else {
            None
        };

        let speedup_windowed = medians[0] / medians[2];
        println!(
            "uniformisation Δ={delta}: {states} states, {} iterations — csr {:.0} ns, \
             banded {:.0} ns, windowed {:.0} ns ({speedup_windowed:.2}x vs csr, touched \
             {} vs {}), sup-distance {max_diff:.2e}{}",
            csr.iterations,
            medians[0],
            medians[1],
            medians[2],
            windowed.touched_entries,
            csr.touched_entries,
            match legacy {
                Some(l) => format!(", legacy {l:.0} ns"),
                None => String::new(),
            }
        );
        let mut engine_rows: Vec<String> = Vec::new();
        if let Some(l) = legacy {
            engine_rows.push(format!(
                "        {{\"name\": \"legacy_spawn_per_call\", \"requested_threads\": {threads}, \
                 \"median_ns_per_op\": {l:.0}}}"
            ));
        }
        for (engine, (median, curve)) in engines.iter().zip(medians.iter().zip(&curves)) {
            engine_rows.push(format!(
                "        {{\"name\": \"{}\", \"requested_threads\": {threads}, \
                 \"effective_row_workers\": {engine_workers}, \
                 \"median_ns_per_op\": {median:.0}, \
                 \"touched_entries\": {}, \"window_deficit\": {:e}}}",
                engine.name, curve.touched_entries, curve.window_deficit
            ));
        }
        configs.push(format!(
            "    {{\n      \"delta\": {delta},\n      \"states\": {states},\n      \
             \"nnz\": {nnz},\n      \"t_seconds\": {t_query},\n      \
             \"iterations\": {},\n      \"engines\": [\n{}\n      ],\n      \
             \"speedup_windowed_vs_csr\": {speedup_windowed:.3},\n      \
             \"max_abs_curve_difference\": {max_diff:e}\n    }}",
            csr.iterations,
            engine_rows.join(",\n")
        ));
    }
    // The note describes the machine that actually generated the file,
    // so regenerating on real hardware cannot leave a stale 1-core
    // claim next to multi-worker engine rows.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let note = if cores == 1 {
        "generated on a 1-core machine: every engine runs its sequential kernel \
         (effective_row_workers 1), so the comparison isolates representation/window gains \
         and under-sells multi-core pool gains; regenerate with bench-harness baseline \
         --threads N --out . on real hardware"
            .to_owned()
    } else {
        format!(
            "generated on a {cores}-core machine with --threads {threads}; each engine row's \
             effective_row_workers records the worker count that engine actually ran with"
        )
    };
    let body = format!(
        "{{\n  \"bench\": \"uniformisation\",\n  \"generated_by\": \"bench-harness baseline\",\n  \
         \"threads\": {threads},\n  \"note\": \"{note}\",\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        configs.join(",\n")
    );
    write_json(cfg, "BENCH_uniformisation.json", &body)
}

/// The pre-pool curve engine, preserved verbatim-in-spirit as the
/// benchmark baseline: `uniformised()` + `transpose()` (two full-matrix
/// copies), `mul_vec_parallel` (spawn+join per product), a separate dot
/// pass per iteration, and a fresh Fox–Glynn computation per time point.
fn legacy_measure_curve(
    ctmc: &markov::ctmc::Ctmc,
    alpha: &[f64],
    times: &[f64],
    measure: &[f64],
    opts: &TransientOptions,
) -> Result<Vec<(f64, f64)>, String> {
    use markov::foxglynn::poisson_weights;
    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
    fn sup_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
    let (p, nu) = ctmc
        .uniformised(opts.uniformisation_factor)
        .map_err(|e| e.to_string())?;
    let t_max = times.iter().cloned().fold(0.0, f64::max);
    if nu == 0.0 || t_max == 0.0 {
        let value = dot(alpha, measure);
        return Ok(times.iter().map(|&t| (t, value)).collect());
    }
    let pt = p.transpose();
    let w_max = poisson_weights(nu * t_max, opts.epsilon).map_err(|e| e.to_string())?;
    let mut s = Vec::with_capacity(w_max.right + 1);
    let mut v = alpha.to_vec();
    let mut next = vec![0.0; ctmc.n_states()];
    s.push(dot(&v, measure));
    for _ in 1..=w_max.right {
        pt.mul_vec_parallel(&v, &mut next, opts.threads)
            .map_err(|e| e.to_string())?;
        std::mem::swap(&mut v, &mut next);
        s.push(dot(&v, measure));
        if opts.steady_state_tolerance > 0.0 && sup_diff(&v, &next) < opts.steady_state_tolerance {
            break;
        }
    }
    let s_last = *s.last().expect("nonempty");
    let mut points = Vec::with_capacity(times.len());
    for &t in times {
        if t == 0.0 {
            points.push((t, s[0]));
            continue;
        }
        let w = poisson_weights(nu * t, opts.epsilon).map_err(|e| e.to_string())?;
        let mut value = 0.0;
        for (i, &wi) in w.weights.iter().enumerate() {
            let n = w.left + i;
            value += wi * s.get(n).copied().unwrap_or(s_last);
        }
        points.push((t, value));
    }
    Ok(points)
}
