//! Machine-readable performance baselines for the uniformisation hot
//! path, written as `BENCH_spmv.json` and `BENCH_uniformisation.json`
//! under the output directory.
//!
//! Two artefacts, both on the paper's Fig. 8 two-well chain:
//!
//! * **spmv** — ns/op medians for one `Pᵀ·v` product through each
//!   kernel: the sequential reference, the legacy spawn-per-call path
//!   ([`CsrMatrix::mul_vec_parallel`]), the persistent worker pool
//!   ([`SpmvPool`]), and the fused SpMV+dot pool kernel.
//! * **uniformisation** — ns/op medians for a whole
//!   `Pr[battery empty at t]` curve through the legacy engine
//!   (re-created here: `uniformised()` + `transpose()`, spawn-per-call
//!   products, separate dot pass, per-point Fox–Glynn recomputation)
//!   versus the current zero-respawn engine, plus the sup-distance
//!   between the two curves (must be ≤ 1e-12).
//!
//! The JSON is deliberately flat and stable so CI diffs of committed
//! baselines stay readable: each kernel/engine carries
//! `median_ns_per_op`, each config carries `states` and `nnz`.

use super::config::Config;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::report::write_file;
use kibamrm::workload::Workload;
use markov::ctmc::Ctmc;
use markov::foxglynn::poisson_weights;
use markov::pool::SpmvPool;
use markov::transient::{measure_curve, TransientOptions};
use std::path::PathBuf;
use std::time::Instant;
use units::{Charge, Current, Frequency, Rate};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    // The per-call spawn cost only matters with real worker counts; the
    // baseline pins ≥ 4 so single-core CI boxes still exercise (and
    // time) the multi-worker code paths. The spmv kernels bypass the
    // pool's available-parallelism clamp for this; the end-to-end
    // engine cannot (the clamp is part of its behaviour), so the
    // uniformisation JSON records the effective worker count alongside
    // the requested one.
    let threads = cfg.threads.max(4);
    spmv_baseline(cfg, threads)?;
    uniformisation_baseline(cfg, threads)
}

fn fig8_model() -> Result<KibamRm, String> {
    let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
        .map_err(|e| e.to_string())?;
    KibamRm::new(
        w,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .map_err(|e| e.to_string())
}

fn discretise(delta: f64) -> Result<DiscretisedModel, String> {
    let model = fig8_model()?;
    DiscretisedModel::build(
        &model,
        &DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta)),
    )
    .map_err(|e| e.to_string())
}

/// Median wall time of `reps` calls, in ns per call.
fn median_ns(reps: usize, mut op: impl FnMut()) -> f64 {
    // One warm-up call outside the samples.
    op();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            op();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn write_json(cfg: &Config, name: &str, body: &str) -> Result<(), String> {
    let path = PathBuf::from(&cfg.out_dir).join(name);
    write_file(&path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn spmv_baseline(cfg: &Config, threads: usize) -> Result<(), String> {
    let deltas: &[f64] = if cfg.fast {
        &[50.0]
    } else {
        // Δ = 5 is the paper's million-state configuration.
        &[50.0, 5.0]
    };
    let reps = if cfg.fast { 7 } else { 11 };
    let mut configs = Vec::new();
    for &delta in deltas {
        let disc = discretise(delta)?;
        let (pt, _nu) = disc
            .chain()
            .uniformised_transposed(1.02)
            .map_err(|e| e.to_string())?;
        let states = pt.rows();
        let nnz = pt.nnz();
        let x = vec![1.0 / states as f64; states];
        let mut y = vec![0.0; states];
        let measure = disc.empty_measure().to_vec();

        let sequential = median_ns(reps, || {
            pt.mul_vec_into(&x, &mut y).expect("dims");
        });
        let spawn = median_ns(reps, || {
            pt.mul_vec_parallel(&x, &mut y, threads).expect("dims");
        });
        let pool = SpmvPool::with_exact_threads(threads);
        let partition = pt.nnz_partition(pool.threads());
        let pooled = median_ns(reps, || {
            pool.mul_vec(&pt, &partition, &x, &mut y).expect("dims");
        });
        let fused = median_ns(reps, || {
            pool.mul_vec_dot(&pt, &partition, &x, &mut y, &measure)
                .expect("dims");
        });

        println!(
            "spmv Δ={delta}: {states} states, {nnz} nnz — seq {sequential:.0} ns, \
             spawn_x{threads} {spawn:.0} ns, pool_x{threads} {pooled:.0} ns, \
             fused {fused:.0} ns (pool is {:.2}x vs spawn)",
            spawn / pooled
        );
        configs.push(format!(
            "    {{\n      \"delta\": {delta},\n      \"states\": {states},\n      \
             \"nnz\": {nnz},\n      \"kernels\": [\n        \
             {{\"name\": \"sequential\", \"median_ns_per_op\": {sequential:.0}}},\n        \
             {{\"name\": \"spawn_x{threads}\", \"median_ns_per_op\": {spawn:.0}}},\n        \
             {{\"name\": \"pool_x{threads}\", \"median_ns_per_op\": {pooled:.0}}},\n        \
             {{\"name\": \"fused_pool_x{threads}\", \"median_ns_per_op\": {fused:.0}}}\n      ],\n      \
             \"speedup_pool_vs_spawn\": {:.3}\n    }}",
            spawn / pooled
        ));
    }
    let body = format!(
        "{{\n  \"bench\": \"spmv\",\n  \"generated_by\": \"bench-harness baseline\",\n  \
         \"threads\": {threads},\n  \"configs\": [\n{}\n  ]\n}}\n",
        configs.join(",\n")
    );
    write_json(cfg, "BENCH_spmv.json", &body)
}

fn uniformisation_baseline(cfg: &Config, threads: usize) -> Result<(), String> {
    let delta = if cfg.fast { 300.0 } else { 50.0 };
    let reps = if cfg.fast { 3 } else { 7 };
    let t_query = 8000.0;
    let disc = discretise(delta)?;
    let states = disc.stats().states;
    let nnz = disc.stats().generator_nonzeros;
    let opts = TransientOptions {
        threads,
        ..TransientOptions::default()
    };
    // What the engine will actually run with: SpmvPool clamps to the
    // machine's cores, and chains below the small-matrix threshold stay
    // inline. On a single-core box the engine side is therefore the
    // sequential fused path while the legacy side still pays 4 spawned
    // threads per product — exactly the old engine's behaviour, but the
    // JSON must say so rather than imply a 4-worker pool ran.
    let engine_workers = if states < markov::sparse::PARALLEL_SPMV_MIN_ROWS {
        1
    } else {
        SpmvPool::clamped_threads(threads)
    };

    // Current engine: direct Pᵀ, persistent pool, fused dot, reusable
    // Fox–Glynn workspace.
    let engine_curve = measure_curve(
        disc.chain(),
        disc.alpha(),
        &[t_query],
        disc.empty_measure(),
        &opts,
    )
    .map_err(|e| e.to_string())?;
    let engine = median_ns(reps, || {
        measure_curve(
            disc.chain(),
            disc.alpha(),
            &[t_query],
            disc.empty_measure(),
            &opts,
        )
        .expect("engine curve");
    });

    // Legacy engine, reconstructed: spawn-per-call products, separate
    // dot pass, uniformise-then-transpose setup.
    let legacy_curve = legacy_measure_curve(
        disc.chain(),
        disc.alpha(),
        &[t_query],
        disc.empty_measure(),
        &opts,
    )?;
    let legacy = median_ns(reps, || {
        legacy_measure_curve(
            disc.chain(),
            disc.alpha(),
            &[t_query],
            disc.empty_measure(),
            &opts,
        )
        .expect("legacy curve");
    });

    let max_diff = engine_curve
        .points
        .iter()
        .zip(&legacy_curve)
        .map(|(&(_, a), &(_, b))| (a - b).abs())
        .fold(0.0f64, f64::max);
    if max_diff > 1e-12 {
        return Err(format!(
            "engine disagrees with the legacy baseline: sup-distance {max_diff:e}"
        ));
    }
    println!(
        "uniformisation Δ={delta}: {states} states, {} iterations — legacy x{threads} \
         {legacy:.0} ns, engine x{engine_workers} {engine:.0} ns ({:.2}x), \
         sup-distance {max_diff:.2e}",
        engine_curve.iterations,
        legacy / engine
    );
    let body = format!(
        "{{\n  \"bench\": \"uniformisation\",\n  \"generated_by\": \"bench-harness baseline\",\n  \
         \"threads\": {threads},\n  \"configs\": [\n    {{\n      \"delta\": {delta},\n      \
         \"states\": {states},\n      \"nnz\": {nnz},\n      \"t_seconds\": {t_query},\n      \
         \"iterations\": {},\n      \"engines\": [\n        \
         {{\"name\": \"legacy_spawn_per_call\", \"requested_threads\": {threads}, \
         \"median_ns_per_op\": {legacy:.0}}},\n        \
         {{\"name\": \"persistent_pool_fused\", \"requested_threads\": {threads}, \
         \"effective_row_workers\": {engine_workers}, \
         \"median_ns_per_op\": {engine:.0}}}\n      ],\n      \
         \"speedup_vs_legacy\": {:.3},\n      \"max_abs_curve_difference\": {max_diff:e}\n    }}\n  ]\n}}\n",
        engine_curve.iterations,
        legacy / engine
    );
    write_json(cfg, "BENCH_uniformisation.json", &body)
}

/// The pre-pool curve engine, preserved verbatim-in-spirit as the
/// benchmark baseline: `uniformised()` + `transpose()` (two full-matrix
/// copies), `mul_vec_parallel` (spawn+join per product), a separate dot
/// pass per iteration, and a fresh Fox–Glynn computation per time point.
fn legacy_measure_curve(
    ctmc: &Ctmc,
    alpha: &[f64],
    times: &[f64],
    measure: &[f64],
    opts: &TransientOptions,
) -> Result<Vec<(f64, f64)>, String> {
    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
    fn sup_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
    let (p, nu) = ctmc
        .uniformised(opts.uniformisation_factor)
        .map_err(|e| e.to_string())?;
    let t_max = times.iter().cloned().fold(0.0, f64::max);
    if nu == 0.0 || t_max == 0.0 {
        let value = dot(alpha, measure);
        return Ok(times.iter().map(|&t| (t, value)).collect());
    }
    let pt = p.transpose();
    let w_max = poisson_weights(nu * t_max, opts.epsilon).map_err(|e| e.to_string())?;
    let mut s = Vec::with_capacity(w_max.right + 1);
    let mut v = alpha.to_vec();
    let mut next = vec![0.0; ctmc.n_states()];
    s.push(dot(&v, measure));
    for _ in 1..=w_max.right {
        pt.mul_vec_parallel(&v, &mut next, opts.threads)
            .map_err(|e| e.to_string())?;
        std::mem::swap(&mut v, &mut next);
        s.push(dot(&v, measure));
        if opts.steady_state_tolerance > 0.0 && sup_diff(&v, &next) < opts.steady_state_tolerance {
            break;
        }
    }
    let s_last = *s.last().expect("nonempty");
    let mut points = Vec::with_capacity(times.len());
    for &t in times {
        if t == 0.0 {
            points.push((t, s[0]));
            continue;
        }
        let w = poisson_weights(nu * t, opts.epsilon).map_err(|e| e.to_string())?;
        let mut value = 0.0;
        for (i, &wi) in w.weights.iter().enumerate() {
            let n = w.left + i;
            value += wi * s.get(n).copied().unwrap_or(s_last);
        }
        points.push((t, value));
    }
    Ok(points)
}
