//! Figure 8: lifetime distribution of the on/off model with both wells
//! active (`c = 0.625`, `k = 4.5·10⁻⁵/s`) — the Markovian approximation
//! at `Δ ∈ {100, 50, 25, 10, 5}` against simulation, all through the
//! unified solver API.
//!
//! At `Δ = 5` the derived CTMC has ≈ 9.7·10⁵ states and ≈ 3.4·10⁶
//! generator non-zeros, and the `t = 20000 s` solution needs > 4.6·10⁴
//! matrix–vector products (§6.1) — the heaviest computation in the paper.

use super::config::Config;
use super::save_curves;
use kibamrm::scenario::Scenario;
use kibamrm::solver::{LifetimeSolver, SimulationSolver};
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let workload = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
        .map_err(|e| e.to_string())?;
    let times: Vec<Time> = (0..=140)
        .map(|i| Time::from_seconds(6000.0 + i as f64 * 100.0))
        .collect();
    let base = Scenario::builder()
        .name("fig8-onoff-two-wells")
        .workload(workload)
        .capacity(Charge::from_amp_seconds(7200.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .times(times)
        .simulation(cfg.sim_runs(), 2008)
        .build()
        .map_err(|e| e.to_string())?;

    let solver = cfg.paper_discretisation_solver();
    let deltas: &[f64] = if cfg.fast {
        &[100.0, 50.0, 25.0]
    } else {
        &[100.0, 50.0, 25.0, 10.0, 5.0]
    };
    let mut curves = Vec::new();
    for &delta in deltas {
        let scenario = base.with_delta(Charge::from_amp_seconds(delta));
        let dist = solver.solve(&scenario).map_err(|e| e.to_string())?;
        let d = dist.diagnostics();
        println!(
            "Δ = {delta:>5}: {:>7} states, {:>9} generator non-zeros, {:>6} iterations, {:.1} s wall",
            d.states.unwrap_or(0),
            d.generator_nonzeros.unwrap_or(0),
            d.iterations.unwrap_or(0),
            d.wall_seconds
        );
        curves.push(dist.to_curve(format!("Delta={delta}")));
    }

    let sim = SimulationSolver::new()
        .with_horizon(Time::from_seconds(25_000.0))
        .solve(&base)
        .map_err(|e| e.to_string())?;
    println!(
        "simulation ({} runs): mean lifetime {:.0} s",
        sim.diagnostics().runs.unwrap_or(0),
        sim.mean().as_seconds()
    );
    curves.push(sim.to_curve("simulation"));

    save_curves(cfg, "fig8_onoff_two_wells", "t_seconds", &curves)
}
