//! Figure 8: lifetime distribution of the on/off model with both wells
//! active (`c = 0.625`, `k = 4.5·10⁻⁵/s`) — the Markovian approximation
//! at `Δ ∈ {100, 50, 25, 10, 5}` against simulation.
//!
//! At `Δ = 5` the derived CTMC has ≈ 9.7·10⁵ states and ≈ 3.4·10⁶
//! generator non-zeros, and the `t = 20000 s` solution needs > 4.6·10⁴
//! matrix–vector products (§6.1) — the heaviest computation in the paper.

use super::config::Config;
use super::save_curves;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::report::Curve;
use kibamrm::simulate::lifetime_study;
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let workload =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .map_err(|e| e.to_string())?;
    let model = KibamRm::new(
        workload,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .map_err(|e| e.to_string())?;

    let times: Vec<Time> =
        (0..=140).map(|i| Time::from_seconds(6000.0 + i as f64 * 100.0)).collect();
    let grid: Vec<f64> = times.iter().map(|t| t.as_seconds()).collect();

    let deltas: &[f64] =
        if cfg.fast { &[100.0, 50.0, 25.0] } else { &[100.0, 50.0, 25.0, 10.0, 5.0] };
    let mut curves = Vec::new();
    for &delta in deltas {
        let started = std::time::Instant::now();
        let mut opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta));
        opts.transient.threads = cfg.threads;
        opts.transient.uniformisation_factor = 1.0;
        let disc = DiscretisedModel::build(&model, &opts).map_err(|e| e.to_string())?;
        let curve = disc.empty_probability_curve(&times).map_err(|e| e.to_string())?;
        println!(
            "Δ = {delta:>5}: {:>7} states, {:>9} generator non-zeros, {:>6} iterations, {:.1} s wall",
            disc.stats().states,
            disc.stats().generator_nonzeros,
            curve.iterations,
            started.elapsed().as_secs_f64()
        );
        curves.push(Curve::new(format!("Delta={delta}"), curve.points));
    }

    let study = lifetime_study(&model, Time::from_seconds(25_000.0), cfg.sim_runs(), 2008)
        .map_err(|e| e.to_string())?;
    let sim_points: Vec<(f64, f64)> =
        grid.iter().map(|&t| (t, study.empty_probability(t))).collect();
    println!(
        "simulation ({} runs): mean lifetime {:.0} s",
        study.total_runs(),
        study.mean_observed_lifetime()
    );
    curves.push(Curve::new("simulation", sim_points));

    save_curves(cfg, "fig8_onoff_two_wells", "t_seconds", &curves)
}
