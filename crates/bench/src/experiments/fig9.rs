//! Figure 9: the on/off model with different initial capacities at
//! `Δ = 5 As`:
//!
//! * `C = 7200 As, c = 1` — everything available (longest life);
//! * `C = 7200 As, c = 0.625` — 37.5 % starts bound (middle);
//! * `C = 4500 As, c = 1` — only the available part exists (shortest).
//!
//! The three scenarios form a grid evaluated in one
//! [`SolverRegistry::sweep`] call (discretisation backend only: the
//! paper's figure compares approximations, and Sericola at νt ≈ 4·10⁴
//! would be pointlessly slow).

use super::config::Config;
use super::save_curves;
use kibamrm::scenario::Scenario;
use kibamrm::solver::SolverRegistry;
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let delta = if cfg.fast { 25.0 } else { 5.0 };
    let times: Vec<Time> = (0..=140)
        .map(|i| Time::from_seconds(6000.0 + i as f64 * 100.0))
        .collect();
    let workload = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
        .map_err(|e| e.to_string())?;
    let base = Scenario::builder()
        .name("fig9")
        .workload(workload)
        .capacity(Charge::from_amp_seconds(7200.0))
        .linear()
        .times(times)
        .delta(Charge::from_amp_seconds(delta))
        .build()
        .map_err(|e| e.to_string())?;

    let variants: [(&str, f64, f64, f64); 3] = [
        ("C=7200_c=1", 7200.0, 1.0, 0.0),
        ("C=7200_c=0.625", 7200.0, 0.625, 4.5e-5),
        ("C=4500_c=1", 4500.0, 1.0, 0.0),
    ];
    let grid: Vec<Scenario> = variants
        .iter()
        .map(|&(name, capacity, c, k)| {
            base.with_name(name)
                .with_capacity(Charge::from_amp_seconds(capacity))
                .and_then(|s| s.with_kibam(c, Rate::per_second(k)))
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, String>>()?;

    // A registry holding only the paper-accounting discretisation
    // backend: auto() then resolves to it for every scenario.
    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(cfg.paper_discretisation_solver()));
    let results = registry.sweep(&grid);

    let mut curves = Vec::new();
    let mut p_at_14000 = Vec::new();
    for (scenario, result) in grid.iter().zip(results) {
        let dist = result.map_err(|e| e.to_string())?;
        let p = dist.cdf(Time::from_seconds(14_000.0));
        println!(
            "{:<16} Δ = {delta}: {:>7} states, P[empty @ 14000 s] = {p:.3}",
            scenario.name(),
            dist.diagnostics().states.unwrap_or(0)
        );
        p_at_14000.push(p);
        curves.push(dist.to_curve(scenario.name()));
    }

    println!(
        "\nshape check (paper): curves ordered shortest-lived first: \
         C=4500/c=1 ≥ C=7200/c=0.625 ≥ C=7200/c=1 → {} ",
        if p_at_14000[2] >= p_at_14000[1] && p_at_14000[1] >= p_at_14000[0] {
            "holds"
        } else {
            "VIOLATED"
        }
    );

    save_curves(cfg, "fig9_initial_capacities", "t_seconds", &curves)
}
