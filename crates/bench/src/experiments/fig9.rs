//! Figure 9: the on/off model with different initial capacities at
//! `Δ = 5 As`:
//!
//! * `C = 7200 As, c = 1` — everything available (longest life);
//! * `C = 7200 As, c = 0.625` — 37.5 % starts bound (middle);
//! * `C = 4500 As, c = 1` — only the available part exists (shortest).

use super::config::Config;
use super::save_curves;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::report::Curve;
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let delta = if cfg.fast { 25.0 } else { 5.0 };
    let times: Vec<Time> =
        (0..=140).map(|i| Time::from_seconds(6000.0 + i as f64 * 100.0)).collect();

    let scenarios: [(&str, f64, f64, f64); 3] = [
        ("C=7200_c=1", 7200.0, 1.0, 0.0),
        ("C=7200_c=0.625", 7200.0, 0.625, 4.5e-5),
        ("C=4500_c=1", 4500.0, 1.0, 0.0),
    ];

    let mut curves = Vec::new();
    let mut p_at_14000 = Vec::new();
    for (name, capacity, c, k) in scenarios {
        let workload =
            Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
                .map_err(|e| e.to_string())?;
        let model = KibamRm::new(
            workload,
            Charge::from_amp_seconds(capacity),
            c,
            Rate::per_second(k),
        )
        .map_err(|e| e.to_string())?;
        let mut opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta));
        opts.transient.threads = cfg.threads;
        opts.transient.uniformisation_factor = 1.0;
        let disc = DiscretisedModel::build(&model, &opts).map_err(|e| e.to_string())?;
        let curve = disc.empty_probability_curve(&times).map_err(|e| e.to_string())?;
        let p = curve
            .points
            .iter()
            .find(|(t, _)| (*t - 14_000.0).abs() < 1.0)
            .map(|(_, p)| *p)
            .unwrap_or(f64::NAN);
        println!(
            "{name:<16} Δ = {delta}: {:>7} states, P[empty @ 14000 s] = {p:.3}",
            disc.stats().states
        );
        p_at_14000.push(p);
        curves.push(Curve::new(name, curve.points));
    }

    println!(
        "\nshape check (paper): curves ordered shortest-lived first: \
         C=4500/c=1 ≥ C=7200/c=0.625 ≥ C=7200/c=1 → {} ",
        if p_at_14000[2] >= p_at_14000[1] && p_at_14000[1] >= p_at_14000[0] {
            "holds"
        } else {
            "VIOLATED"
        }
    );

    save_curves(cfg, "fig9_initial_capacities", "t_seconds", &curves)
}
