//! Figure 11: simple vs burst model (`C = 800 mAh`, `c = 0.625`,
//! `Δ = 5 mAh`). Both models send a quarter of the time in steady state,
//! but the burst model condenses activity and sleeps more — its lifetime
//! curve lies to the right (paper: ≈ 95 % vs ≈ 89 % empty at `t = 20 h`).
//!
//! The two scenarios differ only in their workload and are evaluated as
//! a grid through one `sweep` call.

use super::config::Config;
use super::save_curves;
use kibamrm::scenario::Scenario;
use kibamrm::solver::SolverRegistry;
use kibamrm::workload::Workload;
use units::{Charge, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let delta = Charge::from_milliamp_hours(if cfg.fast { 25.0 } else { 5.0 });
    let times: Vec<Time> = (0..=120)
        .map(|i| Time::from_hours(i as f64 * 0.25))
        .collect();

    let base = Scenario::builder()
        .name("simple")
        .workload(Workload::simple_model().map_err(|e| e.to_string())?)
        .capacity(Charge::from_milliamp_hours(800.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .times(times)
        .delta(delta)
        .build()
        .map_err(|e| e.to_string())?;
    let grid = [
        base.clone(),
        base.with_name("burst")
            .with_workload(Workload::burst_model().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?,
    ];

    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(cfg.discretisation_solver()));
    let results = registry.sweep(&grid);

    let mut curves = Vec::new();
    let mut at_20h = Vec::new();
    for (scenario, result) in grid.iter().zip(results) {
        let dist = result.map_err(|e| e.to_string())?;
        let p20 = dist.cdf(Time::from_hours(20.0));
        println!(
            "{:<7}: {:>6} states, {:>5} iterations, P[empty @ 20 h] = {p20:.4}",
            scenario.name(),
            dist.diagnostics().states.unwrap_or(0),
            dist.diagnostics().iterations.unwrap_or(0)
        );
        at_20h.push(p20);
        curves.push(dist.to_curve_hours(scenario.name()));
    }

    println!(
        "\npaper: simple ≈ 0.95, burst ≈ 0.89 at 20 h; measured gap {:.3} \
         (burst lives longer: {})",
        at_20h[0] - at_20h[1],
        if at_20h[1] < at_20h[0] {
            "holds"
        } else {
            "VIOLATED"
        }
    );

    save_curves(cfg, "fig11_simple_vs_burst", "t_hours", &curves)
}
