//! Figure 11: simple vs burst model (`C = 800 mAh`, `c = 0.625`,
//! `Δ = 5 mAh`). Both models send a quarter of the time in steady state,
//! but the burst model condenses activity and sleeps more — its lifetime
//! curve lies to the right (paper: ≈ 95 % vs ≈ 89 % empty at `t = 20 h`).

use super::config::Config;
use super::save_curves;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::report::Curve;
use kibamrm::workload::Workload;
use units::{Charge, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let delta = Charge::from_milliamp_hours(if cfg.fast { 25.0 } else { 5.0 });
    let times: Vec<Time> = (0..=120).map(|i| Time::from_hours(i as f64 * 0.25)).collect();

    let mut curves = Vec::new();
    let mut at_20h = Vec::new();
    for (name, workload) in [
        ("simple", Workload::simple_model().map_err(|e| e.to_string())?),
        ("burst", Workload::burst_model().map_err(|e| e.to_string())?),
    ] {
        let model = KibamRm::new(
            workload,
            Charge::from_milliamp_hours(800.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .map_err(|e| e.to_string())?;
        let mut opts = DiscretisationOptions::with_delta(delta);
        opts.transient.threads = cfg.threads;
        let disc = DiscretisedModel::build(&model, &opts).map_err(|e| e.to_string())?;
        let curve = disc.empty_probability_curve(&times).map_err(|e| e.to_string())?;
        let p20 = curve
            .points
            .iter()
            .find(|(t, _)| (*t - 20.0 * 3600.0).abs() < 1.0)
            .map(|(_, p)| *p)
            .unwrap_or(f64::NAN);
        println!(
            "{name:<7}: {:>6} states, {:>5} iterations, P[empty @ 20 h] = {p20:.4}",
            disc.stats().states,
            curve.iterations
        );
        at_20h.push(p20);
        curves.push(Curve::new(
            name,
            curve.points.iter().map(|(t, p)| (t / 3600.0, *p)).collect(),
        ));
    }

    println!(
        "\npaper: simple ≈ 0.95, burst ≈ 0.89 at 20 h; measured gap {:.3} \
         (burst lives longer: {})",
        at_20h[0] - at_20h[1],
        if at_20h[1] < at_20h[0] { "holds" } else { "VIOLATED" }
    );

    save_curves(cfg, "fig11_simple_vs_burst", "t_hours", &curves)
}
