//! Multi-curve column-panel SpMM against independent single-vector
//! sweeps, written as `BENCH_spmm.json`.
//!
//! The measured family is the Fig. 8 two-well scenario under a
//! power-of-two rate-scale axis (`γ ∈ {⅛, ¼, ½, 1}`): scaling `Q` by a
//! power of two leaves `P = I + Q/ν` **bitwise identical** while ν — and
//! therefore each member's Poisson window and horizon — differs. The
//! serial sweep planner cannot share the banded **active-window** engine
//! across such a family (the per-iteration trim allowance depends on
//! `ν·t_max`), so before this experiment each member re-read the whole
//! matrix for its own sweep. The column-panel engine
//! ([`markov::transient::measure_curves_panel`], surfaced here through
//! [`DiscretisedModel::empty_probability_curves_panel`]) instead
//! advances all k iterates together: one read of each DIA diagonal per
//! iteration feeds every column, while every column keeps its own
//! window, trim allowance, deficit accounting and convergence point.
//!
//! Two kinds of numbers are recorded:
//!
//! * **machine-independent counters** (gated by `regress`) — the summed
//!   per-curve `touched_entries` (what k independent sweeps read)
//!   against the panel's union-window reads, their ratio, the exact
//!   panel-vs-single sup-distance (must be 0 — bit-identity is the
//!   contract, not a tolerance), and the k = 1 degeneration facts;
//! * **timings** (NOT gated — CI boxes are noisy and often single-core,
//!   see README) — median wall time of the panel solve vs k fresh
//!   single-vector solves.

use super::config::Config;
use super::sweep::base_scenario;
use super::{median_ns, write_json};
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use markov::transient::{Representation, TransientOptions};
use markov::Budget;
use units::Time;

/// The panel family's rate scales: powers of two, so `Pᵀ` is bitwise
/// shared across the whole family and the panel groups all k members.
pub(crate) const PANEL_SCALES: [f64; 4] = [0.125, 0.25, 0.5, 1.0];

/// The Fig. 8 family the experiment and the regress gate both solve:
/// one discretised model per rate scale, plus the shared query grid.
pub(crate) fn build_family() -> Result<(Vec<DiscretisedModel>, Vec<Time>), String> {
    let base = base_scenario()?;
    let times = base.times().to_vec();
    let mut discs = Vec::with_capacity(PANEL_SCALES.len());
    for &gamma in &PANEL_SCALES {
        let scenario = base.with_rate_scale(gamma).map_err(|e| e.to_string())?;
        let model = scenario.to_model().map_err(|e| e.to_string())?;
        let delta = scenario.effective_delta().map_err(|e| e.to_string())?;
        let mut opts = DiscretisationOptions::with_delta(delta);
        // The panel targets the banded active-window engine explicitly
        // (same forcing as the `baseline`/`window` experiments): `Auto`
        // would pick CSR at this quick Δ, and the CSR family already
        // amortises through the serial cache's extend/remix fast path.
        opts.transient = TransientOptions {
            representation: Representation::Banded,
            active_window: true,
            ..TransientOptions::default()
        };
        let disc = DiscretisedModel::build(&model, &opts).map_err(|e| e.to_string())?;
        discs.push(disc);
    }
    Ok((discs, times))
}

/// The machine-independent facts `BENCH_spmm.json` commits and the
/// regress gate re-derives: counters, grouping shape, exact
/// panel-vs-single distance and the k = 1 degeneration.
pub(crate) struct PanelFacts {
    pub k: usize,
    pub panel_sizes: Vec<usize>,
    pub solo_touched_entries: u64,
    pub panel_touched_entries: u64,
    pub sup_distance: f64,
    pub k1_panel_sizes: Vec<usize>,
    pub k1_bitwise_identical: bool,
}

impl PanelFacts {
    /// `Σ solo touched / panel touched` — how many times fewer matrix
    /// slots the joint sweep reads than k independent sweeps.
    pub fn touched_savings(&self) -> f64 {
        self.solo_touched_entries as f64 / self.panel_touched_entries.max(1) as f64
    }
}

/// Solves the family both ways and derives the gated facts.
pub(crate) fn derive_facts(
    discs: &[DiscretisedModel],
    times: &[Time],
) -> Result<PanelFacts, String> {
    let members: Vec<(&DiscretisedModel, &[Time])> = discs.iter().map(|d| (d, times)).collect();
    let panel = DiscretisedModel::empty_probability_curves_panel(&members, &Budget::unlimited())
        .map_err(|e| e.to_string())?;

    let mut solo_touched = 0u64;
    let mut sup = 0.0f64;
    for (disc, curve) in discs.iter().zip(&panel.curves) {
        let solo = disc
            .empty_probability_curve(times)
            .map_err(|e| e.to_string())?;
        solo_touched += solo.touched_entries;
        for (&(_, p), &(_, q)) in curve.points.iter().zip(&solo.points) {
            sup = sup.max((p - q).abs());
        }
        // The diagnostics must agree too — the panel's per-column
        // accounting is defined as what the member would have cost
        // alone.
        if curve.touched_entries != solo.touched_entries
            || curve.iterations != solo.iterations
            || curve.window_deficit != solo.window_deficit
        {
            return Err(format!(
                "panel diagnostics diverge from the single-vector solve: \
                 touched {} vs {}, iterations {} vs {}",
                curve.touched_entries, solo.touched_entries, curve.iterations, solo.iterations
            ));
        }
    }

    // k = 1 must degenerate to the unpaneled kernels: one size-1 panel,
    // bit-identical curve.
    let k1_members = [(&discs[0], times)];
    let k1 = DiscretisedModel::empty_probability_curves_panel(&k1_members, &Budget::unlimited())
        .map_err(|e| e.to_string())?;
    let k1_solo = discs[0]
        .empty_probability_curve(times)
        .map_err(|e| e.to_string())?;
    let k1_bitwise_identical = k1.curves.len() == 1 && k1.curves[0] == k1_solo;

    Ok(PanelFacts {
        k: discs.len(),
        panel_sizes: panel.panel_sizes,
        solo_touched_entries: solo_touched,
        panel_touched_entries: panel.panel_touched_entries,
        sup_distance: sup,
        k1_panel_sizes: k1.panel_sizes,
        k1_bitwise_identical,
    })
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure — including any
/// non-zero panel-vs-single sup-distance, a panel that fails to group
/// the whole family, or a panel that does not beat the independent
/// sweeps on touched entries.
pub fn run(cfg: &Config) -> Result<(), String> {
    let (discs, times) = build_family()?;
    let facts = derive_facts(&discs, &times)?;

    if facts.sup_distance != 0.0 {
        return Err(format!(
            "panel curves differ from independent single-vector solves: \
             sup-distance {:e} (must be exactly 0)",
            facts.sup_distance
        ));
    }
    if facts.panel_sizes != vec![facts.k] {
        return Err(format!(
            "rate-rescale family did not form one k={} panel: {:?}",
            facts.k, facts.panel_sizes
        ));
    }
    if facts.touched_savings() <= 1.0 {
        return Err(format!(
            "panel read no fewer entries than {} independent sweeps: \
             {} vs {}",
            facts.k, facts.panel_touched_entries, facts.solo_touched_entries
        ));
    }
    if facts.k1_panel_sizes != vec![1] || !facts.k1_bitwise_identical {
        return Err("k=1 panel did not degenerate to the single-vector path".into());
    }

    let reps = if cfg.quick { 1 } else { 3 };
    let members: Vec<(&DiscretisedModel, &[Time])> =
        discs.iter().map(|d| (d, &times[..])).collect();
    let solos_ns = median_ns(reps, || {
        for disc in &discs {
            disc.empty_probability_curve(&times).expect("solo solve");
        }
    });
    let panel_ns = median_ns(reps, || {
        DiscretisedModel::empty_probability_curves_panel(&members, &Budget::unlimited())
            .expect("panel solve");
    });
    println!(
        "spmm k={}: touched {} solo vs {} panel ({:.3}x fewer reads) — \
         solos {:.1} ms, panel {:.1} ms ({:.2}x), sup-distance {:e}",
        facts.k,
        facts.solo_touched_entries,
        facts.panel_touched_entries,
        facts.touched_savings(),
        solos_ns / 1e6,
        panel_ns / 1e6,
        solos_ns / panel_ns,
        facts.sup_distance,
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scales: Vec<String> = PANEL_SCALES.iter().map(|s| format!("{s}")).collect();
    let sizes: Vec<String> = facts.panel_sizes.iter().map(|s| format!("{s}")).collect();
    let k1_sizes: Vec<String> = facts
        .k1_panel_sizes
        .iter()
        .map(|s| format!("{s}"))
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"spmm\",\n  \"generated_by\": \"bench-harness spmm\",\n  \
         \"engine\": \"banded active-window, single-thread\",\n  \
         \"note\": \"generated on a {cores}-core machine (see README: timings from \
         1-core CI containers are indicative only and are NOT gated); the family is \
         the Fig. 8 two-well scenario under power-of-two rate scales, whose P^T is \
         bitwise shared, so the column panel advances all k active-window sweeps \
         through one read of each matrix diagonal per iteration; counters are \
         machine-independent and gated by regress; panel curves are asserted \
         bit-identical to independent single-vector solves on every run\",\n  \
         \"family\": {{\n    \"scenario\": \"fig8\",\n    \"rate_scales\": [{}],\n    \
         \"k\": {},\n    \"time_points\": {}\n  }},\n  \
         \"panel\": {{\n    \"panel_sizes\": [{}],\n    \
         \"solo_touched_entries\": {},\n    \"panel_touched_entries\": {},\n    \
         \"touched_savings\": {:.3},\n    \
         \"max_abs_difference_vs_independent\": {:e},\n    \
         \"k1_panel_sizes\": [{}],\n    \"k1_bitwise_identical\": {},\n    \
         \"solos_ns\": {:.0},\n    \"panel_ns\": {:.0},\n    \
         \"speedup_panel_vs_solos\": {:.3}\n  }}\n}}\n",
        scales.join(", "),
        facts.k,
        times.len(),
        sizes.join(", "),
        facts.solo_touched_entries,
        facts.panel_touched_entries,
        facts.touched_savings(),
        facts.sup_distance,
        k1_sizes.join(", "),
        facts.k1_bitwise_identical,
        solos_ns,
        panel_ns,
        solos_ns / panel_ns,
    );
    write_json(cfg, "BENCH_spmm.json", &body)
}
