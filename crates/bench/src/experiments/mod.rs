//! One module per regenerated table/figure; see DESIGN.md §6 for the
//! experiment index.

pub mod baseline;
pub mod calibrate;
pub mod complexity;
pub mod config;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod mc;
pub mod regress;
pub mod service;
pub mod spmm;
pub mod sweep;
pub mod table1;
pub mod window;

use config::Config;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::report::{write_file, Curve};
use kibamrm::workload::Workload;
use std::path::PathBuf;
use std::time::Instant;
use units::{Charge, Current, Frequency, Rate};

/// The paper's Fig. 8 two-well reference model (on/off workload,
/// `C = 7200 As`, `c = 0.625`, `k = 4.5·10⁻⁵/s`) — the configuration the
/// perf baselines and the regression gate are anchored to.
pub fn fig8_model() -> Result<KibamRm, String> {
    let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
        .map_err(|e| e.to_string())?;
    KibamRm::new(
        w,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .map_err(|e| e.to_string())
}

/// The Fig. 8 model discretised at `delta` (ampere-seconds).
pub fn discretise_fig8(delta: f64) -> Result<DiscretisedModel, String> {
    let model = fig8_model()?;
    DiscretisedModel::build(
        &model,
        &DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta)),
    )
    .map_err(|e| e.to_string())
}

/// Median wall time of `reps` calls, in ns per call (one warm-up call
/// outside the samples).
pub fn median_ns(reps: usize, mut op: impl FnMut()) -> f64 {
    op();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            op();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Writes a JSON artefact under the output directory.
pub fn write_json(cfg: &Config, name: &str, body: &str) -> Result<(), String> {
    let path = PathBuf::from(&cfg.out_dir).join(name);
    write_file(&path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Writes a set of curves as `<name>.csv` under the output directory.
pub fn save_curves(cfg: &Config, name: &str, x_name: &str, curves: &[Curve]) -> Result<(), String> {
    let path = PathBuf::from(&cfg.out_dir).join(format!("{name}.csv"));
    let csv = kibamrm::report::curves_to_csv(x_name, curves);
    write_file(&path, &csv).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Writes a CSV table under the output directory.
pub fn save_table(
    cfg: &Config,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> Result<(), String> {
    let path = PathBuf::from(&cfg.out_dir).join(format!("{name}.csv"));
    let csv = kibamrm::report::table_to_csv(headers, rows);
    write_file(&path, &csv).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}
