//! One module per regenerated table/figure; see DESIGN.md §6 for the
//! experiment index.

pub mod baseline;
pub mod calibrate;
pub mod complexity;
pub mod config;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod window;

use config::Config;
use kibamrm::report::{write_file, Curve};
use std::path::PathBuf;

/// Writes a set of curves as `<name>.csv` under the output directory.
pub fn save_curves(cfg: &Config, name: &str, x_name: &str, curves: &[Curve]) -> Result<(), String> {
    let path = PathBuf::from(&cfg.out_dir).join(format!("{name}.csv"));
    let csv = kibamrm::report::curves_to_csv(x_name, curves);
    write_file(&path, &csv).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Writes a CSV table under the output directory.
pub fn save_table(
    cfg: &Config,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> Result<(), String> {
    let path = PathBuf::from(&cfg.out_dir).join(format!("{name}.csv"));
    let csv = kibamrm::report::table_to_csv(headers, rows);
    write_file(&path, &csv).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}
