//! §5.3 / §6.1 complexity accounting: states, generator non-zeros and
//! uniformisation iteration counts of the derived CTMCs, compared against
//! every number the paper quotes:
//!
//! * on/off `c = 1`, `Δ = 5` → **2882 states**; `t = 17000 s` → **> 36000
//!   iterations**;
//! * on/off `c = 0.625`, `Δ = 5` → **≈ 3.2·10⁶ non-zeros**; `t = 10⁴ s` →
//!   **> 2.3·10⁴ iterations**, `t = 2·10⁴ s` → **> 4.6·10⁴**.
//!
//! Chains come from [`kibamrm::solver::DiscretisationSolver::discretise`] so the
//! accounting shares the solver facade's Δ/option plumbing.

use super::config::Config;
use super::save_table;
use kibamrm::scenario::Scenario;
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>6} {:>9} {:>11} {:>8} {:>11} {:>9}",
        "model", "Delta", "states", "gen-nnz", "t (s)", "iterations", "build (s)"
    );

    // Part 1: the c = 1 chain (cheap at every Δ).
    for &delta in &[100.0, 50.0, 25.0, 5.0] {
        run_one(cfg, &mut rows, "onoff_c1", 1.0, 0.0, delta, 17_000.0)?;
    }

    // Part 2: the two-well chain. Δ = 5 is the paper's heavyweight
    // (≈ 9.7·10⁵ states); skipped in fast mode.
    let two_well_deltas: &[f64] = if cfg.fast {
        &[100.0, 50.0, 25.0]
    } else {
        &[100.0, 50.0, 25.0, 10.0, 5.0]
    };
    for &delta in two_well_deltas {
        run_one(
            cfg,
            &mut rows,
            "onoff_2well",
            0.625,
            4.5e-5,
            delta,
            10_000.0,
        )?;
        if delta == 5.0 {
            run_one(
                cfg,
                &mut rows,
                "onoff_2well",
                0.625,
                4.5e-5,
                delta,
                20_000.0,
            )?;
        }
    }

    println!(
        "\npaper reference points: 2882 states (c=1, Δ=5); ≈3.2e6 non-zeros \
         (2-well, Δ=5); >36000 iterations @ t=17000 (c=1, Δ=5); \
         >2.3e4 @ t=1e4 and >4.6e4 @ t=2e4 (2-well, Δ=5)"
    );

    save_table(
        cfg,
        "complexity",
        &[
            "model",
            "delta_As",
            "states",
            "generator_nonzeros",
            "t_seconds",
            "iterations",
            "wall_seconds",
        ],
        &rows,
    )
}

fn run_one(
    cfg: &Config,
    rows: &mut Vec<Vec<String>>,
    name: &str,
    c: f64,
    k: f64,
    delta: f64,
    t_seconds: f64,
) -> Result<(), String> {
    let workload = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
        .map_err(|e| e.to_string())?;
    let scenario = Scenario::builder()
        .name(format!("{name}-d{delta}"))
        .workload(workload)
        .capacity(Charge::from_amp_seconds(7200.0))
        .kibam(c, Rate::per_second(k))
        .times(vec![Time::from_seconds(t_seconds)])
        .delta(Charge::from_amp_seconds(delta))
        .build()
        .map_err(|e| e.to_string())?;
    // ν = max exit rate and no steady-state early exit, as the paper's
    // iteration counts imply.
    let solver = cfg.accounting_discretisation_solver();
    let started = std::time::Instant::now();
    let disc = solver.discretise(&scenario).map_err(|e| e.to_string())?;
    // The iteration count of the sweep is exactly the Fox–Glynn right
    // truncation point of Poisson(ν·t) — computed directly, so this
    // accounting experiment stays cheap even at Δ = 5 where the full
    // transient solve takes minutes (fig8 records the real wall times).
    let nu = disc.chain().max_exit_rate();
    let iterations = markov::foxglynn::poisson_weights(nu * t_seconds, solver.transient().epsilon)
        .map_err(|e| e.to_string())?
        .right;
    let wall = started.elapsed().as_secs_f64();
    let stats = disc.stats();
    println!(
        "{name:<10} {delta:>6} {:>9} {:>11} {t_seconds:>8} {:>11} {wall:>9.2}",
        stats.states, stats.generator_nonzeros, iterations
    );
    rows.push(vec![
        name.to_owned(),
        format!("{delta}"),
        format!("{}", stats.states),
        format!("{}", stats.generator_nonzeros),
        format!("{t_seconds}"),
        format!("{iterations}"),
        format!("{wall:.3}"),
    ]);
    Ok(())
}
