//! The parallel streaming Monte Carlo engine, measured and certified:
//! `BENCH_mc.json`.
//!
//! The scenario is a linear (`c = 1`) on/off model small enough that
//! Sericola's exact algorithm provides a zero-error reference curve, so
//! the simulation's disagreement with it is *purely* statistical and the
//! Wilson band is the whole story. Three machine-independent claims are
//! certified on every run (and re-checked by `bench-harness regress`):
//!
//! * **reproducibility** — the streaming study is bit-identical across
//!   worker pools of 1, 2, 4 and 8 threads (counter-derived replication
//!   streams + batch-ordered merging);
//! * **CI-band agreement** — the fixed-seed sup distance between the
//!   simulated and exact curves stays within 3× the study's largest
//!   Wilson half-width;
//! * **adaptive stopping** — the half-width-targeted rule runs more
//!   replications than the initial round and lands under its target.
//!
//! Timings (collect-everything `LifetimeStudy` vs the O(grid) streaming
//! engine, sequential vs pooled) are recorded but, as everywhere in this
//! harness, not gated.

use super::config::Config;
use super::{median_ns, write_json};
use kibamrm::scenario::Scenario;
use kibamrm::solver::{LifetimeSolver, SericolaSolver, SimulationSolver};
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Time};

/// Fixed master seed of the committed study (the agreement check is a
/// fixed-seed statistical test: deterministic given the binary).
pub(crate) const GATE_SEED: u64 = 2007;
/// Replication count of the gate configuration (quick enough for CI).
pub(crate) const GATE_RUNS: usize = 4000;
/// The agreement band: 3× the largest Wilson half-width (≈ 3σ).
pub(crate) const BAND_FACTOR: f64 = 3.0;

/// The linear on/off gate scenario: 72 As at 0.96 A drawn half the
/// time (mean lifetime ≈ 150 s), queried every 10 s — cheap to
/// simulate, exactly solvable by Sericola.
pub(crate) fn gate_scenario(runs: usize, seed: u64) -> Result<Scenario, String> {
    Scenario::builder()
        .name("mc-gate-onoff-linear")
        .workload(
            Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
                .map_err(|e| e.to_string())?,
        )
        .capacity(Charge::from_amp_seconds(72.0))
        .linear()
        .times(
            (1..=24)
                .map(|i| Time::from_seconds(i as f64 * 10.0))
                .collect(),
        )
        .simulation(runs, seed)
        .build()
        .map_err(|e| e.to_string())
}

/// The three machine-independent gate facts, shared with `regress`.
pub(crate) struct GateFacts {
    /// Bit-identity held across worker pools of 1, 2, 4 and 8 threads.
    pub bit_identical: bool,
    /// Fixed-seed sup distance of the simulated curve from the exact one.
    pub sup_distance: f64,
    /// `BAND_FACTOR ×` the largest Wilson half-width over the grid.
    pub wilson_band: f64,
    /// Replications of the study behind the numbers above.
    pub runs: usize,
}

impl GateFacts {
    /// Agreement verdict.
    pub fn within_band(&self) -> bool {
        self.sup_distance <= self.wilson_band
    }
}

/// Runs the gate configuration and checks reproducibility + agreement.
pub(crate) fn gate_facts(runs: usize, seed: u64) -> Result<GateFacts, String> {
    use kibamrm::simulate::streaming_lifetime_study;
    use sim::engine::{McOptions, McPool};

    let scenario = gate_scenario(runs, seed)?;
    let model = scenario.to_model().map_err(|e| e.to_string())?;
    let opts = McOptions {
        runs: runs as u64,
        ..McOptions::default()
    };
    // Thread-count bit-identity: the engine guarantee the whole PR
    // rests on. Unclamped pools (`with_exact_threads`) keep the check
    // meaningful even on a single-core CI box — real worker threads,
    // real out-of-order completions.
    let run_with = |threads: usize| {
        streaming_lifetime_study(
            &model,
            scenario.times(),
            scenario.horizon(),
            scenario.sim_seed(),
            &opts,
            &McPool::with_exact_threads(threads),
        )
        .map_err(|e| e.to_string())
    };
    let reference = run_with(1)?;
    let mut bit_identical = true;
    for threads in [2usize, 4, 8] {
        if run_with(threads)? != reference {
            bit_identical = false;
        }
    }

    let exact = SericolaSolver::new()
        .solve(&scenario)
        .map_err(|e| e.to_string())?;
    let mut sup = 0.0f64;
    for (i, &(_, p_exact)) in exact.points().iter().enumerate() {
        sup = sup.max((reference.empty_probability(i) - p_exact).abs());
    }
    Ok(GateFacts {
        bit_identical,
        sup_distance: sup,
        wilson_band: BAND_FACTOR * reference.max_half_width(),
        runs: reference.total_runs() as usize,
    })
}

/// Runs the experiment.
///
/// # Errors
///
/// A human-readable message on any failure — including a failed
/// reproducibility or agreement check (these are contracts, not
/// tolerances).
pub fn run(cfg: &Config) -> Result<(), String> {
    // Gate section: always the quick configuration, so the committed
    // facts are exactly what `regress` re-derives in CI.
    let facts = gate_facts(GATE_RUNS, GATE_SEED)?;
    if !facts.bit_identical {
        return Err("streaming studies differ across thread counts".into());
    }
    if !facts.within_band() {
        return Err(format!(
            "simulation is {:.4} from the exact curve, outside the Wilson band {:.4}",
            facts.sup_distance, facts.wilson_band
        ));
    }
    println!(
        "gate: {} runs, bit-identical across threads 1/2/4/8, sup-distance {:.4} \
         within band {:.4}",
        facts.runs, facts.sup_distance, facts.wilson_band
    );

    // Adaptive stopping on the same scenario: target a 0.02 half-width
    // from a deliberately small initial round.
    let adaptive_target = 0.02;
    let adaptive_scenario = gate_scenario(200, GATE_SEED)?;
    let adaptive_solver = SimulationSolver::new().with_adaptive(adaptive_target, 1 << 16);
    let adaptive = adaptive_solver
        .streaming_study(&adaptive_scenario)
        .map_err(|e| e.to_string())?;
    let adaptive_runs = adaptive.total_runs();
    let adaptive_hw = adaptive.max_half_width();
    if adaptive_runs <= 200 || adaptive_hw > adaptive_target {
        return Err(format!(
            "adaptive rule misbehaved: {adaptive_runs} runs, half-width {adaptive_hw}"
        ));
    }
    println!(
        "adaptive: 200 initial runs grew to {adaptive_runs} to reach half-width \
         {adaptive_hw:.4} ≤ {adaptive_target}"
    );

    // Perf section: the O(runs)-memory collect path vs the streaming
    // engine, at a size where the difference matters.
    let perf_runs = if cfg.quick {
        GATE_RUNS
    } else if cfg.fast {
        20_000
    } else {
        100_000
    };
    let reps = if cfg.quick { 1 } else { 3 };
    let perf_scenario = gate_scenario(perf_runs, GATE_SEED)?;
    let collect_solver = SimulationSolver::new();
    let collect_ns = median_ns(reps, || {
        collect_solver.study(&perf_scenario).expect("collect study");
    });
    let seq_solver = SimulationSolver::new().with_threads(1);
    let streaming_seq_ns = median_ns(reps, || {
        seq_solver
            .streaming_study(&perf_scenario)
            .expect("streaming study");
    });
    let pooled_solver = SimulationSolver::new().with_threads(cfg.threads.max(1));
    let streaming_par_ns = median_ns(reps, || {
        pooled_solver
            .streaming_study(&perf_scenario)
            .expect("streaming study");
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective_threads = cfg.threads.max(1).min(cores);
    println!(
        "perf ({perf_runs} runs): collect {:.1} ms, streaming seq {:.1} ms \
         ({:.2}x), streaming {} threads {:.1} ms ({:.2}x vs seq)",
        collect_ns / 1e6,
        streaming_seq_ns / 1e6,
        collect_ns / streaming_seq_ns,
        effective_threads,
        streaming_par_ns / 1e6,
        streaming_seq_ns / streaming_par_ns,
    );

    let body = format!(
        "{{\n  \"bench\": \"mc\",\n  \"generated_by\": \"bench-harness mc\",\n  \
         \"scenario\": \"onoff-linear-72As, 24-point grid to 240 s\",\n  \
         \"note\": \"generated on a {cores}-core machine; the gate facts \
         (reproducibility, CI-band agreement, adaptive stopping) are \
         machine-independent and re-checked by `bench-harness regress`; \
         streaming memory is O(grid + threads) independent of the replication \
         count, the collect path is O(runs)\",\n  \
         \"gate\": {{\n    \"runs\": {},\n    \"seed\": {},\n    \
         \"band_factor\": {},\n    \"bit_identical_across_threads\": {},\n    \
         \"sup_distance_vs_exact\": {:.6e},\n    \"wilson_band\": {:.6e},\n    \
         \"within_band\": {}\n  }},\n  \
         \"adaptive\": {{\n    \"initial_runs\": 200,\n    \
         \"target_half_width\": {adaptive_target},\n    \"runs_used\": {adaptive_runs},\n    \
         \"max_half_width\": {adaptive_hw:.6e}\n  }},\n  \
         \"perf\": {{\n    \"runs\": {perf_runs},\n    \"threads\": {effective_threads},\n    \
         \"collect_ns\": {collect_ns:.0},\n    \"streaming_seq_ns\": {streaming_seq_ns:.0},\n    \
         \"streaming_par_ns\": {streaming_par_ns:.0},\n    \
         \"speedup_streaming_vs_collect\": {:.3},\n    \
         \"speedup_par_vs_seq\": {:.3}\n  }}\n}}\n",
        facts.runs,
        GATE_SEED,
        BAND_FACTOR,
        facts.bit_identical,
        facts.sup_distance,
        facts.wilson_band,
        facts.within_band(),
        collect_ns / streaming_seq_ns,
        streaming_seq_ns / streaming_par_ns,
    );
    write_json(cfg, "BENCH_mc.json", &body)
}
