//! Active-window accounting: how much of the state space the windowed
//! banded engine actually touches, per `Δ`, on the paper's Fig. 8
//! two-well chain.
//!
//! For each `Δ` the experiment solves the same
//! `Pr[battery empty at t]` curve through the CSR engine (every product
//! sweeps all non-zeros) and through the banded engine with the active
//! window, and reports
//!
//! * the chain's lattice stencil (`band_offsets`, `bandwidth` — the
//!   per-product growth bound of the window),
//! * `touched_entries` of both engines and their ratio (the fraction of
//!   work the window skips),
//! * the trimmed-mass deficit (must stay within half the ε budget),
//! * the sup-distance between the two curves (must stay within ε),
//! * wall seconds for both engines.
//!
//! Results go to `window.csv`; the finest `Δ` rows are where the
//! savings matter (the paper's accuracy knob is exactly "make `Δ`
//! small").

use super::config::Config;
use super::save_table;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::workload::Workload;
use markov::transient::{measure_curve, Representation, TransientOptions};
use std::time::Instant;
use units::{Charge, Current, Frequency, Rate};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let deltas: &[f64] = if cfg.quick {
        &[300.0]
    } else if cfg.fast {
        &[300.0, 100.0]
    } else {
        &[300.0, 100.0, 50.0, 25.0, 10.0]
    };
    let times = [2000.0, 8000.0];
    let epsilon = 1e-10;

    let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
        .map_err(|e| e.to_string())?;
    let model = KibamRm::new(
        w,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .map_err(|e| e.to_string())?;

    println!(
        "{:<7} {:>8} {:>5} {:>6} {:>11} {:>14} {:>14} {:>7} {:>10} {:>9} {:>9}",
        "Delta",
        "states",
        "offs",
        "bw",
        "iterations",
        "csr_touched",
        "win_touched",
        "saved",
        "deficit",
        "csr (s)",
        "win (s)"
    );
    let mut rows = Vec::new();
    for &delta in deltas {
        let disc = DiscretisedModel::build(
            &model,
            &DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta)),
        )
        .map_err(|e| e.to_string())?;
        let stats = disc.stats();
        let base = TransientOptions {
            threads: cfg.threads,
            epsilon,
            ..TransientOptions::default()
        };
        let solve = |representation, active_window| {
            let started = Instant::now();
            let curve = measure_curve(
                disc.chain(),
                disc.alpha(),
                &times,
                disc.empty_measure(),
                &TransientOptions {
                    representation,
                    active_window,
                    ..base
                },
            )
            .map_err(|e| e.to_string())?;
            Ok::<_, String>((curve, started.elapsed().as_secs_f64()))
        };
        let (csr, csr_secs) = solve(Representation::Csr, false)?;
        let (win, win_secs) = solve(Representation::Banded, true)?;

        let sup: f64 = csr
            .points
            .iter()
            .zip(&win.points)
            .map(|(&(_, a), &(_, b))| (a - b).abs())
            .fold(0.0, f64::max);
        // Provable agreement bound is 2ε: each engine is within ε of
        // the true curve (CSR spends all of ε on Fox–Glynn, the
        // windowed engine ε/2 + ε/2 on truncation + trimming).
        if sup > 2.0 * epsilon {
            return Err(format!(
                "windowed curve disagrees with CSR at Δ = {delta}: sup-distance {sup:e}"
            ));
        }
        if win.window_deficit > epsilon / 2.0 {
            return Err(format!(
                "window deficit {:e} exceeds the ε/2 budget at Δ = {delta}",
                win.window_deficit
            ));
        }
        let saved = 1.0 - win.touched_entries as f64 / csr.touched_entries.max(1) as f64;
        println!(
            "{delta:<7} {:>8} {:>5} {:>6} {:>11} {:>14} {:>14} {:>6.1}% {:>10.2e} {csr_secs:>9.2} {win_secs:>9.2}",
            stats.states,
            stats.band_offsets,
            stats.bandwidth,
            csr.iterations,
            csr.touched_entries,
            win.touched_entries,
            100.0 * saved,
            win.window_deficit
        );
        rows.push(vec![
            format!("{delta}"),
            format!("{}", stats.states),
            format!("{}", stats.band_offsets),
            format!("{}", stats.bandwidth),
            format!("{}", csr.iterations),
            format!("{}", win.iterations),
            format!("{}", csr.touched_entries),
            format!("{}", win.touched_entries),
            format!("{saved:.4}"),
            format!("{:e}", win.window_deficit),
            format!("{sup:e}"),
            format!("{csr_secs:.3}"),
            format!("{win_secs:.3}"),
        ]);
    }
    save_table(
        cfg,
        "window",
        &[
            "delta",
            "states",
            "band_offsets",
            "bandwidth",
            "csr_iterations",
            "windowed_iterations",
            "csr_touched_entries",
            "windowed_touched_entries",
            "fraction_saved",
            "window_deficit",
            "sup_distance",
            "csr_seconds",
            "windowed_seconds",
        ],
        &rows,
    )
}
