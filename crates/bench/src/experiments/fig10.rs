//! Figure 10: lifetime distribution of the simple cell-phone model for
//! three battery configurations:
//!
//! * `C = 500 mAh, c = 1` — only the available charge exists (leftmost;
//!   dead with > 99 % probability by ≈ 17 h);
//! * `C = 800 mAh, c = 0.625, k = 4.5·10⁻⁵/s` — the full KiBaMRM
//!   (middle; dead by ≈ 23 h);
//! * `C = 800 mAh, c = 1` — everything available, computed **exactly**
//!   with Sericola's algorithm (rightmost; dead by ≈ 25 h).
//!
//! Approximations run at `Δ ∈ {25, 2}` mAh plus simulation, exactly as in
//! the paper — each method reached through its [`LifetimeSolver`].

use super::config::Config;
use super::save_curves;
use kibamrm::distribution::LifetimeDistribution;
use kibamrm::report::Curve;
use kibamrm::scenario::Scenario;
use kibamrm::solver::{LifetimeSolver, SericolaSolver, SimulationSolver};
use kibamrm::workload::Workload;
use units::{Charge, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let times: Vec<Time> = (0..=120)
        .map(|i| Time::from_hours(i as f64 * 0.25))
        .collect();
    let deltas_mah: &[f64] = if cfg.fast { &[25.0] } else { &[25.0, 2.0] };

    let scenario = |capacity_mah: f64, c: f64, k: f64| -> Result<Scenario, String> {
        Scenario::builder()
            .name(format!("fig10-C{capacity_mah}-c{c}"))
            .workload(Workload::simple_model().map_err(|e| e.to_string())?)
            .capacity(Charge::from_milliamp_hours(capacity_mah))
            .kibam(c, Rate::per_second(k))
            .times(times.clone())
            .simulation(cfg.sim_runs(), 500 + capacity_mah as u64)
            .build()
            .map_err(|e| e.to_string())
    };

    let disc = cfg.discretisation_solver();
    let sim = SimulationSolver::new().with_horizon(Time::from_hours(30.0));
    let mut curves: Vec<Curve> = Vec::new();

    // Approximations at every Δ plus one simulation run per family;
    // returns the simulated distribution for the anchor printouts.
    let mut family = |label: &str, s: &Scenario| -> Result<LifetimeDistribution, String> {
        for &d in deltas_mah {
            let dist = disc
                .solve(&s.with_delta(Charge::from_milliamp_hours(d)))
                .map_err(|e| e.to_string())?;
            println!(
                "  Δ = {d:>4} mAh, c = {:<5}: {:>7} states, {:>6} iterations",
                s.c(),
                dist.diagnostics().states.unwrap_or(0),
                dist.diagnostics().iterations.unwrap_or(0)
            );
            curves.push(dist.to_curve_hours(format!("{label}_Delta={d}mAh")));
        }
        let dist = sim.solve(s).map_err(|e| e.to_string())?;
        curves.push(dist.to_curve_hours(format!("{label}_simulation")));
        Ok(dist)
    };

    // --- C = 500 mAh, c = 1 (only the available well). ------------------
    let sim500 = family("C500_c1", &scenario(500.0, 1.0, 0.0)?)?;
    let p17 = sim500.cdf(Time::from_hours(17.0));
    println!("C=500 mAh, c=1: P[empty @ 17 h] = {p17:.4} (paper: > 0.99)");

    // --- C = 800 mAh, c = 0.625 (the actual KiBaMRM). --------------------
    let sim800 = family("C800_c0.625", &scenario(800.0, 0.625, 4.5e-5)?)?;
    let p23 = sim800.cdf(Time::from_hours(23.0));
    println!("C=800 mAh, c=0.625: P[empty @ 23 h] = {p23:.4} (paper: ≈ 1)");

    // --- C = 800 mAh, c = 1: exact (Sericola). ---------------------------
    let exact = SericolaSolver::new()
        .solve(&scenario(800.0, 1.0, 0.0)?)
        .map_err(|e| e.to_string())?;
    let p25 = exact.cdf(Time::from_hours(25.0));
    println!("C=800 mAh, c=1 (exact): P[empty @ 25 h] = {p25:.4} (paper: ≈ 1)");
    curves.push(exact.to_curve_hours("C800_c1_exact"));

    save_curves(cfg, "fig10_simple_model", "t_hours", &curves)
}
