//! Figure 10: lifetime distribution of the simple cell-phone model for
//! three battery configurations:
//!
//! * `C = 500 mAh, c = 1` — only the available charge exists (leftmost;
//!   dead with > 99 % probability by ≈ 17 h);
//! * `C = 800 mAh, c = 0.625, k = 4.5·10⁻⁵/s` — the full KiBaMRM
//!   (middle; dead by ≈ 23 h);
//! * `C = 800 mAh, c = 1` — everything available, computed **exactly**
//!   with Sericola's algorithm (rightmost; dead by ≈ 25 h).
//!
//! Approximations run at `Δ ∈ {25, 2}` mAh plus simulation, exactly as in
//! the paper.

use super::config::Config;
use super::save_curves;
use kibamrm::analysis::exact_linear_curve;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::report::Curve;
use kibamrm::simulate::lifetime_study;
use kibamrm::workload::Workload;
use units::{Charge, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let times: Vec<Time> = (0..=120).map(|i| Time::from_hours(i as f64 * 0.25)).collect();
    let grid_h: Vec<f64> = times.iter().map(|t| t.as_hours()).collect();
    let deltas_mah: &[f64] = if cfg.fast { &[25.0] } else { &[25.0, 2.0] };
    let horizon = Time::from_hours(30.0);

    let mut curves: Vec<Curve> = Vec::new();

    // --- C = 500 mAh, c = 1 (only the available well). ------------------
    let c500 = model(500.0, 1.0, 0.0)?;
    for &d in deltas_mah {
        let pts = approx_curve(cfg, &c500, d, &times)?;
        curves.push(Curve::new(format!("C500_c1_Delta={d}mAh"), rescale(&pts, &grid_h)));
    }
    let sim = lifetime_study(&c500, horizon, cfg.sim_runs(), 501).map_err(|e| e.to_string())?;
    curves.push(Curve::new(
        "C500_c1_simulation",
        grid_h
            .iter()
            .map(|&h| (h, sim.empty_probability(h * 3600.0)))
            .collect(),
    ));
    let p17 = sim.empty_probability(17.0 * 3600.0);
    println!("C=500 mAh, c=1: P[empty @ 17 h] = {p17:.4} (paper: > 0.99)");

    // --- C = 800 mAh, c = 0.625 (the actual KiBaMRM). --------------------
    let c800 = model(800.0, 0.625, 4.5e-5)?;
    for &d in deltas_mah {
        let pts = approx_curve(cfg, &c800, d, &times)?;
        curves.push(Curve::new(format!("C800_c0.625_Delta={d}mAh"), rescale(&pts, &grid_h)));
    }
    let sim = lifetime_study(&c800, horizon, cfg.sim_runs(), 502).map_err(|e| e.to_string())?;
    curves.push(Curve::new(
        "C800_c0.625_simulation",
        grid_h
            .iter()
            .map(|&h| (h, sim.empty_probability(h * 3600.0)))
            .collect(),
    ));
    let p23 = sim.empty_probability(23.0 * 3600.0);
    println!("C=800 mAh, c=0.625: P[empty @ 23 h] = {p23:.4} (paper: ≈ 1)");

    // --- C = 800 mAh, c = 1: exact (Sericola). ---------------------------
    let c800_linear = model(800.0, 1.0, 0.0)?;
    let exact = exact_linear_curve(&c800_linear, &times).map_err(|e| e.to_string())?;
    let p25 = exact
        .iter()
        .find(|(t, _)| (*t - 25.0 * 3600.0).abs() < 1.0)
        .map(|(_, p)| *p)
        .unwrap_or(f64::NAN);
    println!("C=800 mAh, c=1 (exact): P[empty @ 25 h] = {p25:.4} (paper: ≈ 1)");
    curves.push(Curve::new("C800_c1_exact", rescale(&exact, &grid_h)));

    save_curves(cfg, "fig10_simple_model", "t_hours", &curves)
}

fn model(capacity_mah: f64, c: f64, k: f64) -> Result<KibamRm, String> {
    KibamRm::new(
        Workload::simple_model().map_err(|e| e.to_string())?,
        Charge::from_milliamp_hours(capacity_mah),
        c,
        Rate::per_second(k),
    )
    .map_err(|e| e.to_string())
}

fn approx_curve(
    cfg: &Config,
    model: &KibamRm,
    delta_mah: f64,
    times: &[Time],
) -> Result<Vec<(f64, f64)>, String> {
    let mut opts = DiscretisationOptions::with_delta(Charge::from_milliamp_hours(delta_mah));
    opts.transient.threads = cfg.threads;
    let disc = DiscretisedModel::build(model, &opts).map_err(|e| e.to_string())?;
    let curve = disc.empty_probability_curve(times).map_err(|e| e.to_string())?;
    println!(
        "  Δ = {delta_mah:>4} mAh, c = {:<5}: {:>7} states, {:>6} iterations",
        model.c(),
        disc.stats().states,
        curve.iterations
    );
    Ok(curve.points)
}

/// Converts `(t_seconds, p)` points onto the hour grid used in the CSV.
fn rescale(points: &[(f64, f64)], grid_h: &[f64]) -> Vec<(f64, f64)> {
    points
        .iter()
        .zip(grid_h)
        .map(|((_, p), &h)| (h, *p))
        .collect()
}
