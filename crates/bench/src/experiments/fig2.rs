//! Figure 2: evolution of the available- and bound-charge wells under a
//! square-wave load (`f = 0.001 Hz`, `I = 0.96 A`, `C = 7200 As`,
//! `c = 0.625`, `k = 4.5·10⁻⁵/s`).

use super::config::Config;
use super::save_curves;
use battery::kibam::Kibam;
use battery::lifetime::discharge_trajectory;
use battery::load::SquareWaveLoad;
use kibamrm::report::Curve;
use units::{Charge, Current, Frequency, Rate, Time};

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any model or I/O failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let battery = Kibam::new(
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .map_err(|e| e.to_string())?;
    let wave = SquareWaveLoad::symmetric(Frequency::from_hertz(0.001), Current::from_amps(0.96))
        .map_err(|e| e.to_string())?;

    let sample = Time::from_seconds(if cfg.fast { 100.0 } else { 10.0 });
    let traj = discharge_trajectory(&battery, &wave, Time::from_seconds(12_500.0), sample)
        .map_err(|e| e.to_string())?;

    let y1: Vec<(f64, f64)> = traj
        .iter()
        .map(|s| (s.time.as_seconds(), s.state.available.as_coulombs()))
        .collect();
    let y2: Vec<(f64, f64)> = traj
        .iter()
        .map(|s| (s.time.as_seconds(), s.state.bound.as_coulombs()))
        .collect();

    let end = traj.last().expect("trajectory nonempty");
    println!(
        "Fig. 2 — square wave f = 0.001 Hz, I = 0.96 A: battery empty at {:.0} s \
         (paper plot ends between 11000 s and 12000 s); y2 left stranded: {:.0} As",
        end.time.as_seconds(),
        end.state.bound.as_coulombs()
    );
    println!(
        "paper shape checks: y1 starts at 4500 As ({}), y2 at 2700 As ({})",
        y1[0].1, y2[0].1
    );

    save_curves(
        cfg,
        "fig2_well_trajectories",
        "t_seconds",
        &[
            Curve::new("y1_available_As", y1),
            Curve::new("y2_bound_As", y2),
        ],
    )
}
