//! Shared harness configuration.

/// Command-line configuration for every experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Trade fidelity for runtime (coarser Δ, fewer simulation runs).
    pub fast: bool,
    /// Output directory for CSV results.
    pub out_dir: String,
    /// Worker threads for sparse matrix–vector products.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            fast: false,
            out_dir: "results".into(),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }
}

impl Config {
    /// Simulation replication count: the paper's 1000, or 200 in fast
    /// mode.
    pub fn sim_runs(&self) -> usize {
        if self.fast {
            200
        } else {
            1000
        }
    }
}
