//! Shared harness configuration.

use kibamrm::solver::DiscretisationSolver;
use markov::transient::TransientOptions;

/// Command-line configuration for every experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Trade fidelity for runtime (coarser Δ, fewer simulation runs).
    pub fast: bool,
    /// CI smoke mode: minimal sizes and repetitions, correctness
    /// assertions only (timings are measured but not meaningful). The
    /// `baseline` experiment uses this to assert banded-windowed vs CSR
    /// engine agreement on every push without a multi-minute run.
    pub quick: bool,
    /// Output directory for CSV results.
    pub out_dir: String,
    /// Worker threads for sparse matrix–vector products.
    pub threads: usize,
    /// Directory holding the committed `BENCH_*.json` baselines the
    /// `regress` gate diffs against (default: the current directory,
    /// i.e. the repository root in CI).
    pub against: String,
    /// Override for the tightened ε of the `regress` accuracy check
    /// (default 1e-13). Loosening it (e.g. `--epsilon 1e-6`) makes the
    /// engines drift past the 1e-12 bound — the supported way to verify
    /// the gate actually fails.
    pub epsilon: Option<f64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            fast: false,
            quick: false,
            out_dir: "results".into(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            against: ".".into(),
            epsilon: None,
        }
    }
}

impl Config {
    /// Simulation replication count: the paper's 1000, or 200 in fast
    /// mode.
    pub fn sim_runs(&self) -> usize {
        if self.fast {
            200
        } else {
            1000
        }
    }

    /// A discretisation solver with this config's thread count and
    /// default numerics.
    pub fn discretisation_solver(&self) -> DiscretisationSolver {
        DiscretisationSolver::new().with_threads(self.threads)
    }

    /// A discretisation solver matching the paper's iteration
    /// accounting: uniformisation rate ν = max exit rate (factor 1.0).
    pub fn paper_discretisation_solver(&self) -> DiscretisationSolver {
        let transient = TransientOptions {
            uniformisation_factor: 1.0,
            threads: self.threads,
            ..TransientOptions::default()
        };
        DiscretisationSolver::new().with_transient(transient)
    }

    /// The paper-accounting solver with steady-state early exit also
    /// disabled, so iteration counts are true Fox–Glynn right
    /// truncation points.
    pub fn accounting_discretisation_solver(&self) -> DiscretisationSolver {
        let transient = TransientOptions {
            uniformisation_factor: 1.0,
            steady_state_tolerance: 0.0,
            threads: self.threads,
            ..TransientOptions::default()
        };
        DiscretisationSolver::new().with_transient(transient)
    }
}
