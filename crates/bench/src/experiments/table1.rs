//! Table 1: experimental vs computed lifetimes for continuous and
//! square-wave loads at 0.96 A.
//!
//! ```text
//! Frequency     Exp.   KiBaM   Mod-KiBaM     Mod-KiBaM
//!                              (stochastic)  (numerical)
//! Continuous     90      91       90            89
//! 1 Hz          193     203      193           193
//! 0.2 Hz        230     203      226           193
//! ```
//!
//! The DSN paper takes `c = 0.625` from Rao et al. and fits `k` so the
//! continuous-load lifetime matches; the capacity itself is not printed.
//! We therefore calibrate `(C, k)` against the *published KiBaM row*
//! (91 min continuous, 203 min at 1 Hz), which pins both parameters, and
//! then evaluate all computable columns. The "Exp." column and the
//! stochastic reference values are quoted from the paper (they come from
//! the closed-source set-up of Rao et al.); EXPERIMENTS.md discusses the
//! substitution.
//!
//! The shape claims this experiment must reproduce:
//! * KiBaM is frequency-independent at these frequencies (203 ≈ 203);
//! * the deterministic modified KiBaM is *also* frequency-independent —
//!   the paper's §3 observation that the modification does not explain
//!   the measured 193 vs 230;
//! * intermittent loads beat the continuous load by roughly 2×.

use super::config::Config;
use super::save_table;
use battery::kibam::Kibam;
use battery::lifetime::{lifetime, DischargeModel};
use battery::load::{ConstantLoad, LoadProfile, SquareWaveLoad};
use battery::modified::{ModifiedKibam, StochasticModifiedKibam};
use numerics::roots::brent;
use units::{Charge, Current, Frequency, Rate, Time};

const LOAD_AMPS: f64 = 0.96;
const C_FRACTION: f64 = 0.625;
/// Published KiBaM row used for calibration (minutes).
const KIBAM_CONTINUOUS_MIN: f64 = 91.0;
const KIBAM_1HZ_MIN: f64 = 203.0;
/// Published values quoted for context (minutes).
const EXP_MIN: [f64; 3] = [90.0, 193.0, 230.0];
const MOD_STOCH_REF_MIN: [f64; 3] = [90.0, 193.0, 226.0];
const MOD_NUM_REF_MIN: [f64; 3] = [89.0, 193.0, 193.0];

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on calibration or I/O failure.
pub fn run(cfg: &Config) -> Result<(), String> {
    let current = Current::from_amps(LOAD_AMPS);
    let horizon = Time::from_hours(10.0);

    // --- Calibrate (C, k) against the published KiBaM row. -------------
    let (battery, capacity) = calibrate_kibam()?;
    println!(
        "calibrated KiBaM: C = {:.0} As ({:.0} mAh), c = {C_FRACTION}, k = {:.3e} /s",
        capacity.as_coulombs(),
        capacity.as_milliamp_hours(),
        battery.k().value()
    );

    let square = |f: f64| {
        SquareWaveLoad::symmetric(Frequency::from_hertz(f), current).map_err(|e| e.to_string())
    };
    let continuous = ConstantLoad::new(current).map_err(|e| e.to_string())?;

    let kibam_min = [
        minutes(
            battery
                .constant_load_lifetime(current)
                .map_err(|e| e.to_string())?,
        ),
        minutes(run_lifetime(&battery, &square(1.0)?, horizon)?),
        minutes(run_lifetime(&battery, &square(0.2)?, horizon)?),
    ];

    // --- Modified KiBaM, deterministic: k' recalibrated so the
    //     continuous lifetime matches the paper's numerical column. -----
    let target = Time::from_minutes(MOD_NUM_REF_MIN[0]);
    let modified = ModifiedKibam::calibrate_k(capacity, C_FRACTION, current, target)
        .map_err(|e| e.to_string())?;
    let mod_num_min = [
        minutes(
            modified
                .constant_load_lifetime(current)
                .map_err(|e| e.to_string())?,
        ),
        minutes(run_lifetime(&modified, &square(1.0)?, horizon)?),
        minutes(run_lifetime(&modified, &square(0.2)?, horizon)?),
    ];

    // --- Modified KiBaM, stochastic quantised-recovery simulation. -----
    let slot = Time::from_seconds(if cfg.fast { 0.25 } else { 0.05 });
    let runs = if cfg.fast { 20 } else { 100 };
    let stoch = StochasticModifiedKibam::new(modified, slot).map_err(|e| e.to_string())?;
    let mod_stoch_min = [
        stoch
            .mean_lifetime(&continuous, horizon, runs, 11)
            .as_minutes(),
        stoch
            .mean_lifetime(&square(1.0)?, horizon, runs, 12)
            .as_minutes(),
        stoch
            .mean_lifetime(&square(0.2)?, horizon, runs, 13)
            .as_minutes(),
    ];

    // --- Report. --------------------------------------------------------
    let freq_names = ["Continuous", "1 Hz", "0.2 Hz"];
    println!(
        "\n{:<12} {:>6} {:>8} {:>14} {:>14}",
        "Frequency", "Exp.*", "KiBaM", "ModKiBaM-stoch", "ModKiBaM-num"
    );
    let mut rows = Vec::new();
    for i in 0..3 {
        println!(
            "{:<12} {:>6.0} {:>8.0} {:>8.0} ({:>3.0}) {:>8.0} ({:>3.0})",
            freq_names[i],
            EXP_MIN[i],
            kibam_min[i],
            mod_stoch_min[i],
            MOD_STOCH_REF_MIN[i],
            mod_num_min[i],
            MOD_NUM_REF_MIN[i],
        );
        rows.push(vec![
            freq_names[i].to_owned(),
            format!("{}", EXP_MIN[i]),
            format!("{:.1}", kibam_min[i]),
            format!("{:.1}", mod_stoch_min[i]),
            format!("{}", MOD_STOCH_REF_MIN[i]),
            format!("{:.1}", mod_num_min[i]),
            format!("{}", MOD_NUM_REF_MIN[i]),
        ]);
    }
    println!("(* Exp. and parenthesised values quoted from the paper / Rao et al.)");

    // Shape assertions, loudly.
    let kibam_freq_gap = (kibam_min[1] - kibam_min[2]).abs() / kibam_min[1];
    let mod_freq_gap = (mod_num_min[1] - mod_num_min[2]).abs() / mod_num_min[1];
    println!(
        "\nshape check: KiBaM frequency gap {:.2}% (paper: 0%), \
         modified-numerical gap {:.2}% (paper: 0%)",
        100.0 * kibam_freq_gap,
        100.0 * mod_freq_gap
    );
    println!(
        "shape check: intermittent/continuous ratio: KiBaM {:.2}x (paper 2.23x)",
        kibam_min[1] / kibam_min[0]
    );

    save_table(
        cfg,
        "table1_lifetimes",
        &[
            "frequency",
            "exp_quoted_min",
            "kibam_min",
            "mod_kibam_stochastic_min",
            "mod_kibam_stochastic_paper_min",
            "mod_kibam_numerical_min",
            "mod_kibam_numerical_paper_min",
        ],
        &rows,
    )
}

fn minutes(t: Time) -> f64 {
    t.as_minutes()
}

fn run_lifetime<M: DischargeModel, L: LoadProfile>(
    model: &M,
    load: &L,
    horizon: Time,
) -> Result<Time, String> {
    lifetime(model, load, horizon)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "battery survived the horizon".into())
}

/// Solves for `(C, k)` such that the continuous-load lifetime is 91 min
/// and the 1 Hz square-wave lifetime is 203 min.
///
/// For fixed `k`, `C` follows from the continuous target (monotone).
/// The square-wave lifetime as a function of `k` (with `C` re-fit each
/// time) is 182 min at both `k → 0` and `k → ∞` (the battery then
/// delivers the same charge at 0.96 A and 0.48 A) with a maximum in
/// between, so we scan for a bracket and take the smaller-`k` branch.
fn calibrate_kibam() -> Result<(Kibam, Charge), String> {
    let current = Current::from_amps(LOAD_AMPS);
    let continuous_target = Time::from_minutes(KIBAM_CONTINUOUS_MIN);
    let square_target_s = Time::from_minutes(KIBAM_1HZ_MIN).as_seconds();
    let horizon = Time::from_hours(10.0);

    let square_life_for = |log_k: f64| -> f64 {
        let k = Rate::per_second(log_k.exp());
        let Ok(batt) = Kibam::calibrate_capacity(C_FRACTION, k, current, continuous_target) else {
            return f64::NAN;
        };
        let Ok(wave) = SquareWaveLoad::symmetric(Frequency::from_hertz(1.0), current) else {
            return f64::NAN;
        };
        match lifetime(&batt, &wave, horizon) {
            Ok(Some(l)) => l.as_seconds(),
            _ => f64::NAN,
        }
    };

    // Scan log k for the first up-crossing of the target.
    let objective = |log_k: f64| square_life_for(log_k) - square_target_s;
    let grid: Vec<f64> = (0..=60).map(|i| -16.0 + i as f64 * 0.25).collect();
    let mut bracket = None;
    let mut prev = objective(grid[0]);
    for w in grid.windows(2) {
        let next = objective(w[1]);
        if prev.is_finite() && next.is_finite() && prev < 0.0 && next >= 0.0 {
            bracket = Some((w[0], w[1]));
            break;
        }
        prev = next;
    }
    let (lo, hi) = bracket.ok_or_else(|| {
        "no k reaches the 203-minute square-wave target; check the published row".to_owned()
    })?;
    let log_k = brent(objective, lo, hi, 1e-10, 200).map_err(|e| e.to_string())?;
    let k = Rate::per_second(log_k.exp());
    let battery = Kibam::calibrate_capacity(C_FRACTION, k, current, continuous_target)
        .map_err(|e| e.to_string())?;
    let capacity = battery.capacity();
    Ok((battery, capacity))
}
