//! Amortised batched scenario evaluation: the structure-sharing sweep
//! planner against the naive per-scenario sweep, written as
//! `BENCH_sweep.json`.
//!
//! The grids are the paper's headline use case — families of the Fig. 8
//! two-well scenario spanning workload shape (Erlang stages), battery
//! parameters `(c, k)`, discretisation step `Δ` and a rate-scale axis
//! (the device run at `γ×` speed). Grid sizes 8/64/256 are measured
//! twice per repetition:
//!
//! * **naive** — [`SolverRegistry::sweep_naive`], the pre-planner path:
//!   every scenario re-derives its model, assembles its lattice, and
//!   runs its own full uniformisation sweep;
//! * **planned** — [`SolverRegistry::sweep`]: scenarios grouped by
//!   structural fingerprint share the assembled pattern, the Fox–Glynn
//!   workspace and the worker pool, and the power-of-two rate-scale
//!   families share a single (extendable) uniformisation sweep, so each
//!   group costs roughly its most expensive member instead of the sum.
//!
//! Per group the ideal amortisation is `Σνᵢ / max νᵢ` over the rescale
//! family (≈ 1.9 for the geometric scale axes used here); the measured
//! speedups land close because the per-member residue (value refill +
//! bitwise `P` comparison + Poisson remix) is `O(nnz)` against the
//! `O(iterations·nnz)` sweep it replaces.
//!
//! Both paths run the same single-threaded CSR engine configuration so
//! the comparison isolates planning gains (the active-window engine's
//! trim schedule is horizon-dependent, which disables cross-ν sweep
//! sharing by design — see DESIGN.md §8). The planned results are
//! asserted **bit-identical** to the naive ones (sup-distance exactly 0)
//! on every run; `--quick` is the CI gate mode (8-point grid, one
//! repetition).

use super::config::Config;
use super::{median_ns, write_json};
use kibamrm::scenario::Scenario;
use kibamrm::solver::{SolverOptions, SolverRegistry};
use kibamrm::sweep::{ScenarioGrid, SweepPlan};
use kibamrm::workload::Workload;
use kibamrm::KibamRmError;
use kibamrm::LifetimeDistribution;
use markov::transient::Representation;
use units::{Charge, Current, Frequency, Rate, Time};

/// The Fig. 8-style base scenario the grids vary.
pub(crate) fn base_scenario() -> Result<Scenario, String> {
    Scenario::builder()
        .name("fig8")
        .workload(
            Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
                .map_err(|e| e.to_string())?,
        )
        .capacity(Charge::from_amp_seconds(7200.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .time_grid(Time::from_seconds(8000.0), 16)
        .delta(Charge::from_amp_seconds(300.0))
        .build()
        .map_err(|e| e.to_string())
}

/// The measured grid at `points` ∈ {8, 64, 256}.
pub(crate) fn build_grid(points: usize, base: &Scenario) -> Result<ScenarioGrid, String> {
    let delta = Charge::from_amp_seconds;
    let erlang = |k: u32| {
        Workload::on_off_erlang(Frequency::from_hertz(1.0), k, Current::from_amps(0.96))
            .map_err(|e| e.to_string())
    };
    // Power-of-two scales keep `P = I + Q/ν` bitwise identical across a
    // family, so the planner's rescale fast path fires deterministically.
    let scales4 = vec![0.125, 0.25, 0.5, 1.0];
    let scales8: Vec<f64> = (-7..=0).map(|e| 2f64.powi(e)).collect();
    let grid = match points {
        8 => ScenarioGrid::new(base.clone())
            .deltas(vec![delta(300.0), delta(150.0)])
            .rate_scales(scales4),
        64 => ScenarioGrid::new(base.clone())
            .workloads(vec![
                ("erlang1".into(), erlang(1)?),
                ("erlang2".into(), erlang(2)?),
            ])
            .kibams(vec![
                (0.625, Rate::per_second(4.5e-5)),
                (0.5, Rate::per_second(4.5e-5)),
            ])
            .deltas(vec![delta(300.0), delta(150.0), delta(100.0), delta(75.0)])
            .rate_scales(scales4),
        256 => ScenarioGrid::new(base.clone())
            .workloads(vec![
                ("erlang1".into(), erlang(1)?),
                ("erlang2".into(), erlang(2)?),
            ])
            .kibams(vec![
                (0.625, Rate::per_second(4.5e-5)),
                (0.625, Rate::per_second(9e-5)),
                (0.5, Rate::per_second(4.5e-5)),
                (0.5, Rate::per_second(9e-5)),
            ])
            .deltas(vec![delta(300.0), delta(150.0), delta(100.0), delta(75.0)])
            .rate_scales(scales8),
        other => return Err(format!("no grid defined for {other} points")),
    };
    if grid.len() != points {
        return Err(format!(
            "grid defines {} points, wanted {points}",
            grid.len()
        ));
    }
    Ok(grid)
}

pub(crate) type SweepResults = Vec<Result<LifetimeDistribution, KibamRmError>>;

/// The largest pointwise |a − b| across all slots; errors if any slot
/// failed or the outcome kinds differ.
pub(crate) fn sup_distance(a: &SweepResults, b: &SweepResults) -> Result<f64, String> {
    let mut sup = 0.0f64;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let (x, y) = match (x, y) {
            (Ok(x), Ok(y)) => (x, y),
            (Err(e), _) | (_, Err(e)) => return Err(format!("slot {i} failed: {e}")),
        };
        for ((_, px), (_, py)) in x.points().iter().zip(y.points()) {
            sup = sup.max((px - py).abs());
        }
    }
    Ok(sup)
}

/// One row of the committed JSON.
struct GridRow {
    points: usize,
    groups: usize,
    duplicates: usize,
    shared_solves: usize,
    naive_ns: f64,
    planned_ns: f64,
    sup: f64,
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure — including any
/// non-zero planned-vs-naive sup-distance (bit-identity is part of the
/// planner's contract, not a tolerance).
pub fn run(cfg: &Config) -> Result<(), String> {
    let sizes: &[usize] = if cfg.quick {
        &[8]
    } else if cfg.fast {
        &[8, 64]
    } else {
        &[8, 64, 256]
    };
    // Single-thread, CSR-engine configuration: isolates planning gains
    // from scenario/row parallelism and keeps the rescale fast path
    // available (the active window's trim schedule is ν·t-dependent).
    let registry = SolverRegistry::with_default_backends().with_options(SolverOptions {
        scenario_threads: 1,
        row_threads: 1,
        representation: Representation::Csr,
    });
    let base = base_scenario()?;

    let mut rows: Vec<GridRow> = Vec::new();
    for &points in sizes {
        let reps = match points {
            _ if cfg.quick => 1,
            256 => 1,
            _ => 3,
        };
        let grid = build_grid(points, &base)?;
        let scenarios = grid.expand().map_err(|e| e.to_string())?;
        let plan = SweepPlan::build(&registry, &scenarios);

        let naive = registry.sweep_naive(&scenarios);
        let planned = registry.sweep(&scenarios);
        let sup = sup_distance(&planned, &naive)?;
        if sup != 0.0 {
            return Err(format!(
                "planned sweep differs from independent solves on the \
                 {points}-point grid: sup-distance {sup:e} (must be exactly 0)"
            ));
        }
        // Members whose planned solve reused (part of) a shared sweep
        // show fewer uniformisation products than their naive solve.
        let shared_solves = planned
            .iter()
            .zip(&naive)
            .filter(|(p, n)| {
                let (p, n) = (p.as_ref().expect("checked"), n.as_ref().expect("checked"));
                p.diagnostics().iterations < n.diagnostics().iterations
            })
            .count();

        let naive_ns = median_ns(reps, || {
            registry.sweep_naive(&scenarios);
        });
        let planned_ns = median_ns(reps, || {
            registry.sweep(&scenarios);
        });
        println!(
            "sweep {points:>3} points: {} groups, {} dup, {} shared — naive {:.0} ms, \
             planned {:.0} ms ({:.2}x), sup-distance {sup:e}",
            plan.groups().len(),
            plan.n_duplicates(),
            shared_solves,
            naive_ns / 1e6,
            planned_ns / 1e6,
            naive_ns / planned_ns,
        );
        rows.push(GridRow {
            points,
            groups: plan.groups().len(),
            duplicates: plan.n_duplicates(),
            shared_solves,
            naive_ns,
            planned_ns,
            sup,
        });
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let grids: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"points\": {},\n      \"groups\": {},\n      \
                 \"duplicates\": {},\n      \"shared_sweep_solves\": {},\n      \
                 \"naive_ns_per_grid\": {:.0},\n      \"planned_ns_per_grid\": {:.0},\n      \
                 \"speedup_planned_vs_naive\": {:.3},\n      \
                 \"max_abs_difference_vs_independent\": {:e}\n    }}",
                r.points,
                r.groups,
                r.duplicates,
                r.shared_solves,
                r.naive_ns,
                r.planned_ns,
                r.naive_ns / r.planned_ns,
                r.sup
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"generated_by\": \"bench-harness sweep\",\n  \
         \"engine\": \"csr, single-thread (scenario_threads 1, row_threads 1)\",\n  \
         \"note\": \"generated on a {cores}-core machine; grids are \
         workload × (c,k) × Δ × power-of-two rate-scale families of the Fig. 8 \
         two-well scenario, so the planner amortises one uniformisation sweep per \
         rescale family (ideal per-family gain Σν/maxν ≈ 1.9); planned results are \
         asserted bit-identical to naive per-scenario solves on every run\",\n  \
         \"grids\": [\n{}\n  ]\n}}\n",
        grids.join(",\n")
    );
    write_json(cfg, "BENCH_sweep.json", &body)
}
