//! The resident query service under a synthetic device-fleet trace,
//! written as `BENCH_service.json`.
//!
//! The trace models the service's target shape: a fleet of devices that
//! are *configured alike* but *labelled apart* — every device re-queries
//! the same handful of physical configurations (power-of-two rate
//! rescales × Δ variants of the Fig. 8 two-well scenario) under its own
//! device name. Requests are drawn from a fixed-seed LCG, so the trace
//! (and therefore the hit-rate the regression gate checks) is fully
//! deterministic; `--quick` shrinks it to the CI gate size.
//!
//! Measured per run:
//!
//! * **hit rate** — the fraction of admitted requests served without a
//!   fresh solve (result-cache hits + single-flight joins). The name
//!   erasure in [`Scenario::canonical_bytes`] is what makes per-device
//!   labels free here.
//! * **latency percentiles** — p50/p95/p99 over per-request wall times,
//!   mixing cache hits (~µs) with cold solves (~ms): the p50 *is* the
//!   service's value proposition, the p99 is the cold-solve cost that
//!   remains.
//! * **bit-identity** — after the trace, every distinct configuration is
//!   re-queried and compared against an independent
//!   `SolverRegistry::solve` under the same engine configuration; the
//!   sup-distance must be **exactly 0** (the cross-request cache is an
//!   optimisation, never an approximation). The same check runs in
//!   `bench-harness regress` against the committed baseline.
//!
//! Both paths run the single-threaded CSR engine configuration the sweep
//! bench gates on, so grouped (warm-state) and independent solves are
//! unconditionally comparable.

use super::config::Config;
use super::{sweep as sweep_experiment, write_json};
use kibamrm::scenario::Scenario;
use kibamrm::service::{Answer, LifetimeService, QueryOptions, ServiceConfig, ServiceStats};
use kibamrm::solver::{SolverOptions, SolverRegistry};
use markov::transient::Representation;
use std::time::{Duration, Instant};
use units::Charge;

/// Hit-rate floor the regression gate enforces on the quick trace (the
/// trace is deterministic: 24 requests over 2 configurations leave at
/// most 2 misses, so the realised rate is ≥ 22/24 ≈ 0.92 — the floor
/// leaves slack only for trace-shape edits, not for cache regressions).
pub(crate) const GATE_HIT_RATE_FLOOR: f64 = 0.85;

/// The deadline leg is deterministic by construction (already-expired
/// deadlines, resident-vs-fresh targets alternating 1:1), so its rates
/// are exact machine-independent facts the regression gate compares
/// against bit for bit.
pub(crate) const GATE_DEADLINE_HIT_RATE: f64 = 0.5;
pub(crate) const GATE_DEGRADED_FRACTION: f64 = 0.5;

/// The engine configuration of both the service and the fresh reference
/// solves (single-threaded CSR — the sweep bench's gated configuration).
fn engine_options() -> SolverOptions {
    SolverOptions {
        scenario_threads: 1,
        row_threads: 1,
        representation: Representation::Csr,
    }
}

/// The fleet's distinct physical configurations: power-of-two rate
/// rescales × Δ variants of the Fig. 8 base (2 in quick mode, 8 in
/// full mode).
pub(crate) fn fleet_configurations(quick: bool) -> Result<Vec<Scenario>, String> {
    let base = sweep_experiment::base_scenario()?;
    let (scales, deltas): (&[f64], &[f64]) = if quick {
        (&[1.0, 0.5], &[300.0])
    } else {
        (&[1.0, 0.5, 0.25, 0.125], &[300.0, 150.0])
    };
    let mut configurations = Vec::new();
    for &delta in deltas {
        for &gamma in scales {
            configurations.push(
                base.with_delta(Charge::from_amp_seconds(delta))
                    .with_rate_scale(gamma)
                    .map_err(|e| e.to_string())?,
            );
        }
    }
    Ok(configurations)
}

/// What one trace run produced.
pub(crate) struct TraceOutcome {
    pub requests: usize,
    pub distinct: usize,
    pub workers: usize,
    pub stats: ServiceStats,
    /// Per-request wall times, sorted ascending.
    pub latencies_ns: Vec<f64>,
    /// Sup-distance between the service's answers and independent fresh
    /// solves over every distinct configuration (must be exactly 0).
    pub sup_vs_fresh: f64,
    /// Requests in the deterministic deadline leg (half against resident
    /// configurations, half against fresh Δ-variants).
    pub deadline_requests: usize,
}

impl TraceOutcome {
    /// Fraction of deadline-carrying requests whose deadline expired.
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.deadline_requests == 0 {
            return 0.0;
        }
        self.stats.deadline_expired as f64 / self.deadline_requests as f64
    }

    /// Fraction of deadline-carrying requests served degraded.
    pub fn degraded_fraction(&self) -> f64 {
        if self.deadline_requests == 0 {
            return 0.0;
        }
        self.stats.degraded_served as f64 / self.deadline_requests as f64
    }
}

impl TraceOutcome {
    pub fn percentile_ns(&self, p: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_ns.len() as f64 - 1.0) * p).round() as usize;
        self.latencies_ns[idx]
    }
}

/// Runs the deterministic fleet trace through a fresh resident service:
/// `requests` queries drawn by a fixed-seed LCG over the distinct
/// configurations, each re-labelled with its requesting device's name,
/// driven by `workers` threads. Afterwards every distinct configuration
/// is diffed against an independent fresh solve.
pub(crate) fn run_fleet_trace(
    quick: bool,
    requests: usize,
    workers: usize,
) -> Result<TraceOutcome, String> {
    let configurations = fleet_configurations(quick)?;
    let service = LifetimeService::with_config(
        SolverRegistry::with_default_backends(),
        ServiceConfig::default()
            .with_options(engine_options())
            // The bench measures caching, not shedding: admit everything.
            .with_max_in_flight(requests.max(1)),
    );

    // Fixed-seed LCG (MMIX constants): the trace is part of the gate.
    let mut lcg_state = 2007u64;
    let trace: Vec<Scenario> = (0..requests)
        .map(|device| {
            lcg_state = lcg_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = ((lcg_state >> 33) as usize) % configurations.len();
            configurations[pick].with_name(format!("device-{device:03}"))
        })
        .collect();

    let workers = workers.clamp(1, requests.max(1));
    let mut latencies_ns: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (service, trace) = (&service, &trace);
                scope.spawn(move || {
                    trace
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .map(|scenario| {
                            let t = Instant::now();
                            let answer = service.query(scenario);
                            let ns = t.elapsed().as_nanos() as f64;
                            answer.map(|_| ns).map_err(|e| e.to_string())
                        })
                        .collect::<Result<Vec<f64>, String>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trace worker panicked"))
            .collect::<Result<Vec<Vec<f64>>, String>>()
            .map(|per_worker| per_worker.into_iter().flatten().collect())
    })?;
    latencies_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

    // Bit-identity: every distinct configuration, served (from cache or
    // freshly) vs an independent registry solve.
    let reference = SolverRegistry::with_default_backends().with_options(engine_options());
    let mut sup_vs_fresh = 0.0f64;
    for scenario in &configurations {
        let served = service.query(scenario).map_err(|e| e.to_string())?;
        let fresh = reference.solve(scenario).map_err(|e| e.to_string())?;
        let sup = served.max_difference(&fresh).map_err(|e| e.to_string())?;
        sup_vs_fresh = sup_vs_fresh.max(sup);
    }

    // Deadline leg — deterministic by construction, so its ledger is
    // part of the gate. Per distinct configuration, two requests carry
    // an already-expired deadline with degradation allowed:
    //
    // * one against the (now guaranteed resident) configuration itself —
    //   a cache hit needs no solve, so it serves *exact* within any
    //   deadline;
    // * one against a fresh Δ-variant of the same structural family —
    //   the exact solve fails fast on the exhausted budget and the
    //   cached-family tier serves a degraded answer with an explicit
    //   bound.
    //
    // Realised rates: deadline-hit 1/2, degraded-served 1/2, exactly.
    let opts = QueryOptions::new()
        .with_deadline(Duration::ZERO)
        .allow_degraded();
    let mut deadline_requests = 0usize;
    for scenario in &configurations {
        let resident = service
            .query_with(scenario, &opts)
            .map_err(|e| e.to_string())?;
        deadline_requests += 1;
        if resident.is_degraded() {
            return Err("a resident configuration must serve exact within any deadline".into());
        }
        let variant = scenario.with_delta(Charge::from_amp_seconds(75.0));
        let answer = service
            .query_with(&variant, &opts)
            .map_err(|e| e.to_string())?;
        deadline_requests += 1;
        match answer {
            Answer::Degraded { bound, .. } => {
                if !(bound.is_finite() && bound > 0.0 && bound < 1.0) {
                    return Err(format!(
                        "degraded answer carries a non-probability error bound {bound}"
                    ));
                }
            }
            Answer::Exact(_) => {
                return Err("an expired-deadline solve of a fresh variant cannot be exact".into())
            }
        }
    }

    Ok(TraceOutcome {
        requests,
        distinct: configurations.len(),
        workers,
        stats: service.stats(),
        latencies_ns,
        sup_vs_fresh,
        deadline_requests,
    })
}

/// What the snapshot-reload leg produced. Every field is a deterministic
/// machine-independent fact: the leg solves each distinct configuration
/// once, snapshots, revives into a fresh service, and re-queries — so
/// the written/loaded/rejected counts, the reload hit rate (1.0) and
/// the sup-distance after reload (exactly 0) are all part of the
/// regression gate.
pub(crate) struct SnapshotOutcome {
    pub distinct: usize,
    pub entries_written: usize,
    pub snapshot_bytes: usize,
    pub loaded: usize,
    pub rejected: usize,
    pub reload_hit_rate: f64,
    /// Sup-distance between post-reload served answers and independent
    /// fresh solves (must be exactly 0: revival is byte-exact).
    pub sup_vs_fresh: f64,
}

/// Runs the deterministic snapshot-reload leg: solve every distinct
/// configuration through a fresh service, write a snapshot, revive it
/// into a second fresh service (a simulated restart), and re-query
/// everything against independent fresh solves.
pub(crate) fn run_snapshot_leg(quick: bool) -> Result<SnapshotOutcome, String> {
    let configurations = fleet_configurations(quick)?;
    let config = ServiceConfig::default()
        .with_options(engine_options())
        .with_max_in_flight(configurations.len().max(1));
    let first_life = LifetimeService::with_config(SolverRegistry::with_default_backends(), config);
    for scenario in &configurations {
        first_life.query(scenario).map_err(|e| e.to_string())?;
    }
    let path = std::env::temp_dir().join(format!(
        "kibamrm-bench-snapshot-{}.snap",
        std::process::id()
    ));
    let written = first_life.save_snapshot(&path).map_err(|e| e.to_string())?;

    // The "restarted process": same backends, empty caches, then revive.
    let second_life = LifetimeService::with_config(SolverRegistry::with_default_backends(), config);
    let load = second_life.load_snapshot(&path);
    if let Some(e) = &load.error {
        let _ = std::fs::remove_file(&path);
        return Err(format!("snapshot rejected on reload: {e}"));
    }

    let reference = SolverRegistry::with_default_backends().with_options(engine_options());
    let mut sup_vs_fresh = 0.0f64;
    for scenario in &configurations {
        let served = second_life.query(scenario).map_err(|e| e.to_string())?;
        let fresh = reference.solve(scenario).map_err(|e| e.to_string())?;
        let sup = served.max_difference(&fresh).map_err(|e| e.to_string())?;
        sup_vs_fresh = sup_vs_fresh.max(sup);
    }
    let _ = std::fs::remove_file(&path);
    let stats = second_life.stats();
    Ok(SnapshotOutcome {
        distinct: configurations.len(),
        entries_written: written.entries,
        snapshot_bytes: written.bytes,
        loaded: load.loaded,
        rejected: load.rejected,
        reload_hit_rate: stats.hit_rate(),
        sup_vs_fresh,
    })
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns a human-readable message on any failure — including any
/// non-zero served-vs-fresh sup-distance (bit-identity is part of the
/// service's contract, not a tolerance).
pub fn run(cfg: &Config) -> Result<(), String> {
    let quick = cfg.quick;
    let requests = if quick {
        24
    } else if cfg.fast {
        48
    } else {
        96
    };
    let workers = cfg.threads.clamp(1, 4);
    let outcome = run_fleet_trace(quick, requests, workers)?;
    if outcome.sup_vs_fresh != 0.0 {
        return Err(format!(
            "service answers differ from independent solves: sup-distance \
             {:e} (must be exactly 0)",
            outcome.sup_vs_fresh
        ));
    }
    let stats = outcome.stats;
    let hit_rate = stats.hit_rate();
    println!(
        "service trace: {} requests over {} configurations ({} workers) — \
         hit rate {:.3} ({} hits, {} joined, {} misses, {} shed), warm \
         {}h/{}m, p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs, sup-distance {:e}",
        outcome.requests,
        outcome.distinct,
        outcome.workers,
        hit_rate,
        stats.hits,
        stats.joined,
        stats.misses,
        stats.shed,
        stats.warm_hits,
        stats.warm_misses,
        outcome.percentile_ns(0.50) / 1e3,
        outcome.percentile_ns(0.95) / 1e3,
        outcome.percentile_ns(0.99) / 1e3,
        outcome.sup_vs_fresh,
    );
    println!(
        "deadline leg: {} requests — deadline-hit rate {:.3} ({} expired), \
         degraded-serve fraction {:.3} ({} served, all bounds checked)",
        outcome.deadline_requests,
        outcome.deadline_hit_rate(),
        stats.deadline_expired,
        outcome.degraded_fraction(),
        stats.degraded_served,
    );

    let snap = run_snapshot_leg(quick)?;
    if snap.loaded != snap.entries_written || snap.rejected != 0 {
        return Err(format!(
            "snapshot reload lost entries: {} written, {} loaded, {} rejected",
            snap.entries_written, snap.loaded, snap.rejected
        ));
    }
    if snap.sup_vs_fresh != 0.0 {
        return Err(format!(
            "post-reload answers differ from independent solves: sup-distance \
             {:e} (must be exactly 0)",
            snap.sup_vs_fresh
        ));
    }
    println!(
        "snapshot leg: {} configurations — {} entries / {} bytes written, \
         {} revived, {} rejected, reload hit rate {:.3}, sup-distance {:e}",
        snap.distinct,
        snap.entries_written,
        snap.snapshot_bytes,
        snap.loaded,
        snap.rejected,
        snap.reload_hit_rate,
        snap.sup_vs_fresh,
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let body = format!(
        "{{\n  \"bench\": \"service\",\n  \"generated_by\": \"bench-harness service\",\n  \
         \"engine\": \"csr, single-thread per solve (scenario_threads 1, row_threads 1)\",\n  \
         \"note\": \"generated on a {cores}-core machine; deterministic fixed-seed fleet \
         trace of per-device relabelled queries over power-of-two rate rescales and \
         deltas of the Fig. 8 two-well scenario; latencies mix cache hits with cold \
         solves; served answers are asserted bit-identical to independent fresh solves \
         on every run; the deadline leg is deterministic (already-expired deadlines, \
         resident vs fresh-variant targets 1:1) and every degraded answer's explicit \
         error bound is checked; the snapshot leg writes the solved configurations to \
         a crash-safe snapshot, revives it into a fresh service and asserts every \
         re-query is a warm hit bit-identical to an independent fresh solve\",\n  \
         \"trace\": {{\n    \"requests\": {},\n    \"distinct_configurations\": {},\n    \
         \"workers\": {},\n    \"hit_rate\": {:.4},\n    \"hits\": {},\n    \
         \"joined\": {},\n    \"misses\": {},\n    \"shed\": {},\n    \
         \"warm_hits\": {},\n    \"warm_misses\": {},\n    \"evictions\": {},\n    \
         \"result_cache_bytes\": {},\n    \"p50_ns\": {:.0},\n    \"p95_ns\": {:.0},\n    \
         \"p99_ns\": {:.0},\n    \"max_abs_difference_vs_fresh\": {:e}\n  }},\n  \
         \"deadline_leg\": {{\n    \"requests\": {},\n    \"deadline_expired\": {},\n    \
         \"deadline_hit_rate\": {:.4},\n    \"degraded_served\": {},\n    \
         \"degraded_fraction\": {:.4},\n    \"retries\": {},\n    \
         \"breaker_open\": {}\n  }},\n  \
         \"snapshot\": {{\n    \"distinct_configurations\": {},\n    \
         \"entries_written\": {},\n    \"snapshot_bytes\": {},\n    \
         \"loaded\": {},\n    \"rejected\": {},\n    \
         \"reload_hit_rate\": {:.4},\n    \
         \"max_abs_difference_vs_fresh_after_reload\": {:e}\n  }}\n}}\n",
        outcome.requests,
        outcome.distinct,
        outcome.workers,
        hit_rate,
        stats.hits,
        stats.joined,
        stats.misses,
        stats.shed,
        stats.warm_hits,
        stats.warm_misses,
        stats.evictions,
        stats.result_cache_bytes,
        outcome.percentile_ns(0.50),
        outcome.percentile_ns(0.95),
        outcome.percentile_ns(0.99),
        outcome.sup_vs_fresh,
        outcome.deadline_requests,
        stats.deadline_expired,
        outcome.deadline_hit_rate(),
        stats.degraded_served,
        outcome.degraded_fraction(),
        stats.retries,
        stats.breaker_open,
        snap.distinct,
        snap.entries_written,
        snap.snapshot_bytes,
        snap.loaded,
        snap.rejected,
        snap.reload_hit_rate,
        snap.sup_vs_fresh,
    );
    write_json(cfg, "BENCH_service.json", &body)
}
