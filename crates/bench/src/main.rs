//! `bench-harness` — regenerates every table and figure of
//! *Computing Battery Lifetime Distributions* (DSN'07).
//!
//! ```text
//! bench-harness <experiment> [--fast] [--quick] [--out DIR] [--threads N]
//!
//! experiments:
//!   fig2        KiBaM well trajectories under a slow square wave
//!   table1      lifetimes: experiment vs KiBaM vs modified KiBaM
//!   fig7        on/off model, c = 1: approximation vs simulation
//!   fig8        on/off model, two wells: approximation vs simulation
//!   fig9        initial-capacity comparison
//!   fig10       simple model: approximation, simulation, exact
//!   fig11       simple vs burst model
//!   complexity  state/non-zero/iteration counts of §5.3 & §6.1
//!   calibrate   re-derive λ_burst = 182/h from P[send] = ¼
//!   baseline    machine-readable BENCH_spmv.json / BENCH_uniformisation.json
//!   window      active-window savings: touched entries & deficit per Δ
//!   sweep       planned vs naive batched sweeps → BENCH_sweep.json
//!   spmm        column-panel SpMM vs single-vector sweeps → BENCH_spmm.json
//!   mc          streaming Monte Carlo engine certification → BENCH_mc.json
//!   service     resident query service under a fleet trace → BENCH_service.json
//!   regress     CI gate: diff quick engines against committed BENCH_*.json
//!   all         everything above except regress
//! ```
//!
//! `--fast` trades fidelity for runtime (coarser Δ, fewer simulation
//! runs); `--quick` is the CI smoke mode (tiny sizes, correctness
//! assertions only). `--against DIR` points `regress` at the committed
//! baselines (default `.`); `--epsilon X` loosens/tightens its accuracy
//! check. The default settings match the paper's parameters exactly.
//! Results are written as CSV under `--out` (default `results/`).

#![forbid(unsafe_code)]

mod experiments;
mod json;

use experiments::config::Config;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut experiment = None;
    let mut config = Config::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => config.fast = true,
            "--quick" => config.quick = true,
            "--out" => {
                config.out_dir = args
                    .next()
                    .unwrap_or_else(|| usage("missing DIR after --out"))
            }
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing/invalid N after --threads"))
            }
            "--against" => {
                config.against = args
                    .next()
                    .unwrap_or_else(|| usage("missing DIR after --against"))
            }
            "--epsilon" => {
                config.epsilon = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&e: &f64| e > 0.0 && e < 1.0)
                        .unwrap_or_else(|| usage("missing/invalid X after --epsilon")),
                )
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_owned())
            }
            other => usage(&format!("unrecognised argument: {other}")),
        }
    }
    let experiment = experiment.unwrap_or_else(|| usage("no experiment named"));

    let result = match experiment.as_str() {
        "fig2" => experiments::fig2::run(&config),
        "table1" => experiments::table1::run(&config),
        "fig7" => experiments::fig7::run(&config),
        "fig8" => experiments::fig8::run(&config),
        "fig9" => experiments::fig9::run(&config),
        "fig10" => experiments::fig10::run(&config),
        "fig11" => experiments::fig11::run(&config),
        "complexity" => experiments::complexity::run(&config),
        "calibrate" => experiments::calibrate::run(&config),
        "baseline" => experiments::baseline::run(&config),
        "window" => experiments::window::run(&config),
        "sweep" => experiments::sweep::run(&config),
        "spmm" => experiments::spmm::run(&config),
        "mc" => experiments::mc::run(&config),
        "service" => experiments::service::run(&config),
        "regress" => experiments::regress::run(&config),
        "all" => {
            let runs: [(&str, fn(&Config) -> Result<(), String>); 15] = [
                ("fig2", experiments::fig2::run),
                ("table1", experiments::table1::run),
                ("fig7", experiments::fig7::run),
                ("fig8", experiments::fig8::run),
                ("fig9", experiments::fig9::run),
                ("fig10", experiments::fig10::run),
                ("fig11", experiments::fig11::run),
                ("complexity", experiments::complexity::run),
                ("calibrate", experiments::calibrate::run),
                ("baseline", experiments::baseline::run),
                ("window", experiments::window::run),
                ("sweep", experiments::sweep::run),
                ("spmm", experiments::spmm::run),
                ("mc", experiments::mc::run),
                ("service", experiments::service::run),
            ];
            let mut status = Ok(());
            for (name, f) in runs {
                println!("\n=== {name} ===");
                if let Err(e) = f(&config) {
                    eprintln!("{name} failed: {e}");
                    status = Err(format!("{name} failed"));
                }
            }
            status
        }
        other => usage(&format!("unknown experiment: {other}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: bench-harness <fig2|table1|fig7|fig8|fig9|fig10|fig11|complexity|calibrate|\
         baseline|window|sweep|spmm|mc|service|regress|all> [--fast] [--quick] [--out DIR] \
         [--threads N] [--against DIR] [--epsilon X]"
    );
    std::process::exit(2);
}
