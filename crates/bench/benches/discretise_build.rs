//! Cost of *building* the derived CTMC `Q*` (triplet generation + CSR
//! assembly), separated from solving it — relevant when sweeping `Δ`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate};

fn bench_build(c: &mut Criterion) {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    let m = KibamRm::new(
        w,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let mut group = c.benchmark_group("discretise_build");
    group.sample_size(10);
    for delta in [100.0, 50.0, 25.0] {
        let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta));
        group.bench_with_input(
            BenchmarkId::from_parameter(delta as u64),
            &opts,
            |b, opts| b.iter(|| DiscretisedModel::build(&m, opts).unwrap().stats().states),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
