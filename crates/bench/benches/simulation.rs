//! Stochastic-simulation throughput: lifetimes per second for the
//! paper's workload models (the baseline the Markovian approximation is
//! validated against; 1000 runs per published curve).

use criterion::{criterion_group, criterion_main, Criterion};
use kibamrm::model::KibamRm;
use kibamrm::simulate::simulate_lifetime;
use kibamrm::workload::Workload;
use sim::rng::SimRng;
use units::{Charge, Current, Frequency, Rate, Time};

fn bench_single_runs(c: &mut Criterion) {
    let on_off = KibamRm::new(
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap(),
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let simple = KibamRm::new(
        Workload::simple_model().unwrap(),
        Charge::from_milliamp_hours(800.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();

    let mut group = c.benchmark_group("simulate_lifetime");
    // The on/off model jumps every 0.5 s for ~15000 s: ~30k sojourns/run.
    group.sample_size(20);
    group.bench_function("onoff_1hz_two_wells", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| simulate_lifetime(&on_off, Time::from_seconds(25_000.0), &mut rng).unwrap())
    });
    // The simple model jumps a few dozen times in 30 h: much cheaper.
    group.bench_function("simple_cell_phone", |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| simulate_lifetime(&simple, Time::from_hours(30.0), &mut rng).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_single_runs);
criterion_main!(benches);
