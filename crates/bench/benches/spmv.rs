//! Sparse matrix–vector product throughput — the inner loop of the whole
//! paper (§5.3: each uniformisation iteration is one SpMV on `Pᵀ`).
//!
//! Four kernels per matrix size: the sequential reference, the legacy
//! spawn-per-call parallel path (the baseline the persistent pool
//! replaces), the persistent [`SpmvPool`] with nnz-balanced row blocks,
//! and the fused SpMV+dot pool kernel used by the curve engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::workload::Workload;
use markov::pool::SpmvPool;
use markov::sparse::CsrMatrix;
use units::{Charge, Current, Frequency, Rate};

fn fig8_matrix(delta: f64) -> (CsrMatrix, Vec<f64>) {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    let m = KibamRm::new(
        w,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta));
    let disc = DiscretisedModel::build(&m, &opts).unwrap();
    // Pᵀ straight from the generator, as the transient engines use it.
    let (pt, _nu) = disc.chain().uniformised_transposed(1.0).unwrap();
    (pt, disc.empty_measure().to_vec())
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4);
    for delta in [100.0, 50.0, 25.0] {
        let (m, measure) = fig8_matrix(delta);
        let x = vec![1.0 / m.cols() as f64; m.cols()];
        let mut y = vec![0.0; m.rows()];
        let param = format!("delta{delta}_nnz{}", m.nnz());
        group.throughput(Throughput::Elements(m.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("sequential", &param), &m, |b, m| {
            b.iter(|| m.mul_vec_into(&x, &mut y).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new(format!("spawn_x{threads}"), &param),
            &m,
            |b, m| b.iter(|| m.mul_vec_parallel(&x, &mut y, threads).unwrap()),
        );
        let pool = SpmvPool::with_exact_threads(threads);
        let partition = m.nnz_partition(pool.threads());
        group.bench_with_input(
            BenchmarkId::new(format!("pool_x{threads}"), &param),
            &m,
            |b, m| b.iter(|| pool.mul_vec(m, &partition, &x, &mut y).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("fused_pool_x{threads}"), &param),
            &m,
            |b, m| {
                b.iter(|| {
                    pool.mul_vec_dot(m, &partition, &x, &mut y, &measure)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
