//! Sparse matrix–vector product throughput — the inner loop of the whole
//! paper (§5.3: each uniformisation iteration is one SpMV on `Q*`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::workload::Workload;
use markov::sparse::CsrMatrix;
use units::{Charge, Current, Frequency, Rate};

fn fig8_matrix(delta: f64) -> CsrMatrix {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    let m = KibamRm::new(
        w,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta));
    let disc = DiscretisedModel::build(&m, &opts).unwrap();
    let (p, _nu) = disc.chain().uniformised(1.0).unwrap();
    p.transpose()
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for delta in [100.0, 50.0, 25.0] {
        let m = fig8_matrix(delta);
        let x = vec![1.0 / m.cols() as f64; m.cols()];
        let mut y = vec![0.0; m.rows()];
        group.throughput(Throughput::Elements(m.nnz() as u64));
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("delta{delta}_nnz{}", m.nnz())),
            &m,
            |b, m| b.iter(|| m.mul_vec_into(&x, &mut y).unwrap()),
        );
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        group.bench_with_input(
            BenchmarkId::new(
                format!("parallel_x{threads}"),
                format!("delta{delta}_nnz{}", m.nnz()),
            ),
            &m,
            |b, m| b.iter(|| m.mul_vec_parallel(&x, &mut y, threads).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
