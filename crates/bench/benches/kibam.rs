//! KiBaM kernels: closed-form stepping vs adaptive ODE integration, and
//! exact depletion detection — the per-sojourn work of the simulator.

use battery::kibam::Kibam;
use battery::lifetime::DischargeModel;
use battery::modified::ModifiedKibam;
use criterion::{criterion_group, criterion_main, Criterion};
use units::{Charge, Current, Rate, Time};

fn bench_stepping(c: &mut Criterion) {
    let kibam = Kibam::new(
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let modified = ModifiedKibam::new(
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let i = Current::from_amps(0.96);
    let dt = Time::from_seconds(500.0);

    let mut group = c.benchmark_group("battery_stepping");
    group.bench_function("kibam_closed_form_advance", |b| {
        let s = kibam.full_state();
        b.iter(|| kibam.advance_state(&s, i, dt).unwrap())
    });
    group.bench_function("modified_kibam_rkf45_advance", |b| {
        let s = modified.full_state();
        b.iter(|| modified.advance(&s, i, dt).unwrap())
    });
    group.finish();
}

fn bench_depletion(c: &mut Criterion) {
    let kibam = Kibam::new(
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let i = Current::from_amps(0.96);
    let mut group = c.benchmark_group("depletion_detection");
    group.bench_function("kibam_constant_load_lifetime", |b| {
        b.iter(|| kibam.constant_load_lifetime(i).unwrap())
    });
    group.bench_function("kibam_segment_no_depletion", |b| {
        let s = kibam.full_state();
        b.iter(|| {
            kibam
                .depletion_after(&s, i, Time::from_seconds(500.0))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stepping, bench_depletion);
criterion_main!(benches);
