//! Fox–Glynn Poisson weight computation across the paper's λ = νt range
//! (up to ≈ 4.6·10⁴ for the Fig. 8 curves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use markov::foxglynn::poisson_weights;

fn bench_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("foxglynn");
    for lambda in [100.0, 10_000.0, 46_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(lambda as u64),
            &lambda,
            |b, &l| b.iter(|| poisson_weights(l, 1e-10).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_weights);
criterion_main!(benches);
