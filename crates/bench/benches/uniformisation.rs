//! Scaling of the uniformisation curve engine in the discretisation step
//! `Δ` (the §5.3 cost model: time ∝ Δ⁻² per iteration, Δ⁻³ overall).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

fn model() -> KibamRm {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    KibamRm::new(
        w,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap()
}

fn bench_curve(c: &mut Criterion) {
    let m = model();
    let mut group = c.benchmark_group("uniformisation_curve");
    group.sample_size(10);
    for delta in [300.0, 100.0, 50.0] {
        let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta));
        let disc = DiscretisedModel::build(&m, &opts).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(delta as u64),
            &disc,
            |b, disc| {
                b.iter(|| {
                    disc.empty_probability_curve(&[Time::from_seconds(17_000.0)])
                        .unwrap()
                        .iterations
                })
            },
        );
    }
    group.finish();
}

fn bench_curve_vs_pointwise(c: &mut Criterion) {
    // The curve engine shares one sweep across time points; demonstrate
    // the gain over solving 20 points independently.
    let m = model();
    let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(300.0));
    let disc = DiscretisedModel::build(&m, &opts).unwrap();
    let times: Vec<Time> = (1..=20)
        .map(|i| Time::from_seconds(i as f64 * 1000.0))
        .collect();
    let mut group = c.benchmark_group("curve_sharing");
    group.sample_size(10);
    group.bench_function("one_sweep_20_points", |b| {
        b.iter(|| disc.empty_probability_curve(&times).unwrap().points.len())
    });
    group.bench_function("20_independent_solves", |b| {
        b.iter(|| {
            times
                .iter()
                .map(|&t| disc.empty_probability_at(t).unwrap())
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_steady_state_detection_ablation(c: &mut Criterion) {
    // DESIGN.md calls out steady-state detection as a design choice: for
    // absorbing chains queried far beyond their absorption time, the
    // sweep can stop as soon as the iterates converge. Quantify it.
    let m = model();
    let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(300.0));
    let disc = DiscretisedModel::build(&m, &opts).unwrap();
    // t = 60000 s: everything absorbed long before (mean life ≈ 14000 s).
    let far = [Time::from_seconds(60_000.0)];
    let mut group = c.benchmark_group("steady_state_detection");
    group.sample_size(10);
    group.bench_function("enabled", |b| {
        let mut opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(300.0));
        opts.transient.steady_state_tolerance = 1e-14;
        let disc = DiscretisedModel::build(&m, &opts).unwrap();
        b.iter(|| disc.empty_probability_curve(&far).unwrap().iterations)
    });
    group.bench_function("disabled", |b| {
        let mut opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(300.0));
        opts.transient.steady_state_tolerance = 0.0;
        let disc = DiscretisedModel::build(&m, &opts).unwrap();
        b.iter(|| disc.empty_probability_curve(&far).unwrap().iterations)
    });
    group.finish();
    let _ = disc;
}

criterion_group!(
    benches,
    bench_curve,
    bench_curve_vs_pointwise,
    bench_steady_state_detection_ablation
);
criterion_main!(benches);
