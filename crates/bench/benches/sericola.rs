//! Sericola's exact algorithm: cost per evaluated point as the time bound
//! grows (`O(R²·nnz)` with `R ∝ νt`) — the Fig. 10 "exact" curve's cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kibamrm::analysis::exact_linear_curve;
use kibamrm::model::KibamRm;
use kibamrm::workload::Workload;
use units::{Charge, Rate, Time};

fn bench_exact_point(c: &mut Criterion) {
    let model = KibamRm::new(
        Workload::simple_model().unwrap(),
        Charge::from_milliamp_hours(800.0),
        1.0,
        Rate::per_second(0.0),
    )
    .unwrap();
    let mut group = c.benchmark_group("sericola_exact_point");
    group.sample_size(10);
    for hours in [10.0, 20.0, 30.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(hours as u64),
            &hours,
            |b, &h| b.iter(|| exact_linear_curve(&model, &[Time::from_hours(h)]).unwrap()[0].1),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_point);
criterion_main!(benches);
