//! Facade overhead and sweep throughput of the unified solver API.
//!
//! * `facade_vs_direct` — the same small discretisation solved through
//!   `DiscretisationSolver::solve(&Scenario)` and through the raw
//!   `DiscretisedModel::build` + `empty_probability_curve` path. The
//!   facade adds one model clone, one options struct and one
//!   distribution allocation; the gap must be negligible against the
//!   transient solve itself.
//! * `auto_dispatch` — capability ranking across the default registry
//!   (pure selection, no solving): the per-request cost a service would
//!   pay for backend routing.
//! * `sweep_throughput` — an 8-scenario Δ grid solved serially and with
//!   the registry's worker pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::scenario::Scenario;
use kibamrm::solver::{DiscretisationSolver, LifetimeSolver, SolverRegistry};
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

fn small_scenario() -> Scenario {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    Scenario::builder()
        .name("bench")
        .workload(w)
        .capacity(Charge::from_amp_seconds(720.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .times(
            (1..=10)
                .map(|i| Time::from_seconds(i as f64 * 150.0))
                .collect(),
        )
        .delta(Charge::from_amp_seconds(15.0))
        .build()
        .unwrap()
}

fn bench_facade_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("facade_vs_direct");
    group.sample_size(20);
    let scenario = small_scenario();
    let solver = DiscretisationSolver::new();
    group.bench_function("facade_solve", |b| {
        b.iter(|| solver.solve(&scenario).unwrap().points().len())
    });
    let model = scenario.to_model().unwrap();
    let opts = DiscretisationOptions::with_delta(scenario.effective_delta().unwrap());
    group.bench_function("direct_build_and_curve", |b| {
        b.iter(|| {
            let disc = DiscretisedModel::build(&model, &opts).unwrap();
            disc.empty_probability_curve(scenario.times())
                .unwrap()
                .points
                .len()
        })
    });
    group.finish();
}

fn bench_auto_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("auto_dispatch");
    let registry = SolverRegistry::with_default_backends();
    let two_well = small_scenario();
    let linear = two_well.with_kibam(1.0, Rate::per_second(0.0)).unwrap();
    group.bench_function("two_well", |b| {
        b.iter(|| registry.auto(&two_well).unwrap().name().len())
    });
    group.bench_function("linear", |b| {
        b.iter(|| registry.auto(&linear).unwrap().name().len())
    });
    group.finish();
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    let base = small_scenario();
    let grid: Vec<Scenario> = [60.0, 30.0, 20.0, 15.0, 12.0, 10.0, 7.5, 6.0]
        .iter()
        .map(|&d| base.with_delta(Charge::from_amp_seconds(d)))
        .collect();
    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(DiscretisationSolver::new()));
    group.throughput(Throughput::Elements(grid.len() as u64));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("sweep", format!("threads{threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    registry
                        .sweep_with_threads(&grid, threads)
                        .into_iter()
                        .filter(|r| r.is_ok())
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_facade_vs_direct,
    bench_auto_dispatch,
    bench_sweep_throughput
);
criterion_main!(benches);
