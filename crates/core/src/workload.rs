//! Stochastic workload models: CTMCs whose states draw current.
//!
//! A [`Workload`] is the "performance model" half of the KiBaMRM (paper
//! §4.3): a CTMC over the operating modes of the device, a current `I_i`
//! per mode, and an initial distribution. The paper's three workloads are
//! provided as ready-made constructors with the exact published
//! parameters:
//!
//! * [`Workload::on_off_erlang`] — Fig. 3, the stochastic square wave;
//! * [`Workload::simple_model`] — Fig. 4, idle/send/sleep;
//! * [`Workload::burst_model`] — Fig. 5, buffered sending.

use crate::KibamRmError;
use markov::ctmc::{Ctmc, CtmcBuilder};
use units::{Current, Frequency, Rate};

/// A CTMC workload with per-state current draw.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    ctmc: Ctmc,
    currents: Vec<Current>,
    initial: Vec<f64>,
}

impl Workload {
    /// Builds a workload from parts.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] when lengths mismatch, a current
    /// is negative/non-finite, or `initial` is not a distribution.
    pub fn new(
        ctmc: Ctmc,
        currents: Vec<Current>,
        initial: Vec<f64>,
    ) -> Result<Self, KibamRmError> {
        if currents.len() != ctmc.n_states() {
            return Err(KibamRmError::InvalidWorkload(format!(
                "{} currents for {} states",
                currents.len(),
                ctmc.n_states()
            )));
        }
        if currents.iter().any(|c| !c.is_finite() || c.value() < 0.0) {
            return Err(KibamRmError::InvalidWorkload(
                "currents must be finite and non-negative".into(),
            ));
        }
        ctmc.check_distribution(&initial)
            .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;
        Ok(Workload {
            ctmc,
            currents,
            initial,
        })
    }

    /// The underlying CTMC.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// Number of operating modes.
    pub fn n_states(&self) -> usize {
        self.ctmc.n_states()
    }

    /// Current drawn in state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn current(&self, i: usize) -> Current {
        self.currents[i]
    }

    /// All per-state currents.
    pub fn currents(&self) -> &[Current] {
        &self.currents
    }

    /// The initial distribution over modes.
    pub fn initial(&self) -> &[f64] {
        &self.initial
    }

    /// The per-state currents in amperes (the reward-rate magnitudes used
    /// by the analysis layers).
    pub fn currents_amps(&self) -> Vec<f64> {
        self.currents.iter().map(|c| c.as_amps()).collect()
    }

    /// The paper's Fig. 3 on/off workload: on- and off-periods are
    /// Erlang-`K` distributed with rate `λ = 2fK` per phase, giving mean
    /// period `1/f` and convergence to a deterministic square wave as
    /// `K → ∞`. State layout: stages `0..K` are "on" (drawing
    /// `on_current`), stages `K..2K` are "off" (no draw); the initial
    /// state is the first on-stage.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] for `K = 0`, non-positive
    /// frequency, or invalid current.
    pub fn on_off_erlang(
        frequency: Frequency,
        k_stages: u32,
        on_current: Current,
    ) -> Result<Self, KibamRmError> {
        if k_stages == 0 {
            return Err(KibamRmError::InvalidWorkload(
                "Erlang model needs K ≥ 1".into(),
            ));
        }
        if !(frequency.value() > 0.0) || !frequency.is_finite() {
            return Err(KibamRmError::InvalidWorkload(format!(
                "frequency must be positive, got {frequency}"
            )));
        }
        let k = k_stages as usize;
        let n = 2 * k;
        let lambda = 2.0 * frequency.as_hertz() * k_stages as f64;
        let mut builder = CtmcBuilder::new(n);
        for i in 0..n {
            builder
                .rate(i, (i + 1) % n, lambda)
                .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;
            let phase = if i < k { "on" } else { "off" };
            let stage = i % k + 1;
            builder.label(i, &format!("{phase}{stage}"));
        }
        let ctmc = builder
            .build()
            .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;
        let mut currents = vec![on_current; k];
        currents.extend(vec![Current::ZERO; k]);
        let mut initial = vec![0.0; n];
        initial[0] = 1.0;
        Workload::new(ctmc, currents, initial)
    }

    /// The paper's Fig. 4 simple cell-phone workload:
    ///
    /// * `idle → send` at `λ = 2/h` (data arrives),
    /// * `send → idle` at `µ = 6/h` (10-minute mean transmission),
    /// * `idle → sleep` at `τ = 1/h` (power-save timeout),
    /// * `sleep → send` at `λ = 2/h` (arriving data wakes the device),
    ///
    /// with currents 8 mA (idle), 200 mA (send), 0 mA (sleep) and the
    /// device initially idle. Steady state is (½, ¼, ¼).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches the other
    /// constructors.
    pub fn simple_model() -> Result<Self, KibamRmError> {
        Workload::simple_model_with(
            Rate::per_hour(2.0),
            Rate::per_hour(6.0),
            Rate::per_hour(1.0),
            Current::from_milliamps(8.0),
            Current::from_milliamps(200.0),
        )
    }

    /// [`Workload::simple_model`] with configurable rates and currents
    /// (`lambda` = data arrival, `mu` = send completion, `tau` =
    /// sleep timeout).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] for non-positive rates or
    /// negative currents.
    pub fn simple_model_with(
        lambda: Rate,
        mu: Rate,
        tau: Rate,
        idle_current: Current,
        send_current: Current,
    ) -> Result<Self, KibamRmError> {
        for (name, r) in [("lambda", lambda), ("mu", mu), ("tau", tau)] {
            if !(r.value() > 0.0) || !r.is_finite() {
                return Err(KibamRmError::InvalidWorkload(format!(
                    "rate {name} must be positive, got {r}"
                )));
            }
        }
        let mut b = CtmcBuilder::new(3);
        b.label(0, "idle").label(1, "send").label(2, "sleep");
        let mut add = |from: usize, to: usize, rate: Rate| {
            b.rate(from, to, rate.as_per_second())
                .map(|_| ())
                .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))
        };
        add(0, 1, lambda)?;
        add(1, 0, mu)?;
        add(0, 2, tau)?;
        add(2, 1, lambda)?;
        let ctmc = b
            .build()
            .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;
        Workload::new(
            ctmc,
            vec![idle_current, send_current, Current::ZERO],
            vec![1.0, 0.0, 0.0],
        )
    }

    /// The paper's Fig. 5 burst workload. A data *flow* toggles active /
    /// inactive (`switch_on = 1/h`, `switch_off = 6/h`); while active,
    /// data arrives so fast (`λ_burst = 182/h`) that the device is
    /// essentially always sending; while inactive the device drains its
    /// queue, idles and eventually sleeps (`τ = 1/h`). Send completion is
    /// `µ = 6/h` as in the simple model.
    ///
    /// States: `sleep`, `on-idle`, `off-idle`, `on-send`, `off-send`
    /// with currents 0 / 8 / 8 / 200 / 200 mA; initially `off-idle`.
    ///
    /// `λ_burst = 182/h` makes the steady-state sending probability
    /// exactly ¼ — the same as the simple model — so the two models are
    /// directly comparable (paper §4.3).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches the other
    /// constructors.
    pub fn burst_model() -> Result<Self, KibamRmError> {
        Workload::burst_model_with(Rate::per_hour(182.0))
    }

    /// [`Workload::burst_model`] with a configurable burst arrival rate
    /// (used by the calibration experiment that re-derives the paper's
    /// `λ_burst = 182/h`).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] for a non-positive rate.
    pub fn burst_model_with(lambda_burst: Rate) -> Result<Self, KibamRmError> {
        if !(lambda_burst.value() > 0.0) || !lambda_burst.is_finite() {
            return Err(KibamRmError::InvalidWorkload(format!(
                "burst rate must be positive, got {lambda_burst}"
            )));
        }
        let switch_on = Rate::per_hour(1.0);
        let switch_off = Rate::per_hour(6.0);
        let mu = Rate::per_hour(6.0);
        let tau = Rate::per_hour(1.0);

        const SLEEP: usize = 0;
        const ON_IDLE: usize = 1;
        const OFF_IDLE: usize = 2;
        const ON_SEND: usize = 3;
        const OFF_SEND: usize = 4;

        let mut b = CtmcBuilder::new(5);
        b.label(SLEEP, "sleep")
            .label(ON_IDLE, "on-idle")
            .label(OFF_IDLE, "off-idle")
            .label(ON_SEND, "on-send")
            .label(OFF_SEND, "off-send");
        let mut add = |from: usize, to: usize, rate: Rate| {
            b.rate(from, to, rate.as_per_second())
                .map(|_| ())
                .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))
        };
        add(SLEEP, ON_IDLE, switch_on)?;
        add(ON_IDLE, OFF_IDLE, switch_off)?;
        add(OFF_IDLE, ON_IDLE, switch_on)?;
        add(ON_IDLE, ON_SEND, lambda_burst)?;
        add(ON_SEND, ON_IDLE, mu)?;
        add(ON_SEND, OFF_SEND, switch_off)?;
        add(OFF_SEND, ON_SEND, switch_on)?;
        add(OFF_SEND, OFF_IDLE, mu)?;
        add(OFF_IDLE, SLEEP, tau)?;
        let ctmc = b
            .build()
            .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;

        let idle = Current::from_milliamps(8.0);
        let send = Current::from_milliamps(200.0);
        let mut initial = vec![0.0; 5];
        initial[OFF_IDLE] = 1.0;
        Workload::new(ctmc, vec![Current::ZERO, idle, idle, send, send], initial)
    }

    /// The workload with every transition rate **and** every current
    /// scaled by `gamma` — one axis of a time-rescaled scenario family:
    /// together with scaling the battery's flow constant `k`
    /// ([`crate::scenario::Scenario::with_rate_scale`]), the coupled
    /// model becomes the base process run at `gamma×` speed, so its
    /// derived generator is exactly `γ·Q`. The CTMC's transition
    /// *pattern* (and labels) are preserved through the pattern-reuse
    /// constructor [`markov::ctmc::Ctmc::with_rate_values`], which keeps
    /// the whole family in one sweep-plan group.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] when `gamma` is not positive and
    /// finite.
    pub fn with_rate_scale(&self, gamma: f64) -> Result<Workload, KibamRmError> {
        if !(gamma > 0.0) || !gamma.is_finite() {
            return Err(KibamRmError::InvalidWorkload(format!(
                "rate scale must be positive and finite, got {gamma}"
            )));
        }
        let values: Vec<f64> = self
            .ctmc
            .rates()
            .values()
            .iter()
            .map(|&r| r * gamma)
            .collect();
        let ctmc = self
            .ctmc
            .with_rate_values(values)
            .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;
        let currents = self
            .currents
            .iter()
            .map(|c| Current::from_amps(c.as_amps() * gamma))
            .collect();
        Workload::new(ctmc, currents, self.initial.clone())
    }

    /// Indices of the sending states (current = the maximal current), for
    /// steady-state comparisons between models.
    pub fn send_states(&self) -> Vec<usize> {
        let max = self
            .currents
            .iter()
            .map(|c| c.value())
            .fold(0.0f64, f64::max);
        self.currents
            .iter()
            .enumerate()
            .filter(|(_, c)| c.value() == max && max > 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use markov::steady_state::stationary_gth;

    #[test]
    fn construction_validation() {
        let w = Workload::simple_model().unwrap();
        let c = w.ctmc().clone();
        assert!(Workload::new(c.clone(), vec![Current::ZERO], vec![1.0]).is_err());
        assert!(Workload::new(
            c.clone(),
            vec![Current::from_amps(-1.0); 3],
            vec![1.0, 0.0, 0.0]
        )
        .is_err());
        assert!(Workload::new(c, vec![Current::ZERO; 3], vec![0.5, 0.0, 0.0]).is_err());
    }

    #[test]
    fn on_off_erlang_k1_structure() {
        // K = 1, f = 1 Hz: two states, both rates λ = 2/s (paper §4.3).
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        assert_eq!(w.n_states(), 2);
        assert_eq!(w.ctmc().rates().get(0, 1), 2.0);
        assert_eq!(w.ctmc().rates().get(1, 0), 2.0);
        assert_eq!(w.current(0).as_amps(), 0.96);
        assert_eq!(w.current(1).as_amps(), 0.0);
        assert_eq!(w.initial(), &[1.0, 0.0]);
        assert_eq!(w.ctmc().state_label(0), "on1");
        assert_eq!(w.ctmc().state_label(1), "off1");
    }

    #[test]
    fn on_off_erlang_k4_mean_period() {
        // K = 4, f = 0.5 Hz: 8 stages at rate 2·0.5·4 = 4/s; expected
        // on-time = 4/4 = 1 s = 1/(2f). Steady state is uniform (cycle).
        let w = Workload::on_off_erlang(Frequency::from_hertz(0.5), 4, Current::from_amps(1.0))
            .unwrap();
        assert_eq!(w.n_states(), 8);
        let pi = stationary_gth(w.ctmc()).unwrap();
        for p in &pi {
            assert!((p - 0.125).abs() < 1e-12);
        }
        // Mean on-fraction = ½.
        let on_prob: f64 = (0..4).map(|i| pi[i]).sum();
        assert!((on_prob - 0.5).abs() < 1e-12);
    }

    #[test]
    fn on_off_validation() {
        assert!(Workload::on_off_erlang(Frequency::from_hertz(1.0), 0, Current::ZERO).is_err());
        assert!(Workload::on_off_erlang(Frequency::from_hertz(0.0), 1, Current::ZERO).is_err());
    }

    #[test]
    fn simple_model_matches_paper() {
        let w = Workload::simple_model().unwrap();
        assert_eq!(w.n_states(), 3);
        // Rates in per-second units.
        let per_h = 1.0 / 3600.0;
        assert!((w.ctmc().rates().get(0, 1) - 2.0 * per_h).abs() < 1e-15);
        assert!((w.ctmc().rates().get(1, 0) - 6.0 * per_h).abs() < 1e-15);
        assert!((w.ctmc().rates().get(0, 2) - per_h).abs() < 1e-15);
        assert!((w.ctmc().rates().get(2, 1) - 2.0 * per_h).abs() < 1e-15);
        // Currents: 8 / 200 / 0 mA.
        assert_eq!(w.current(0).as_milliamps(), 8.0);
        assert_eq!(w.current(1).as_milliamps(), 200.0);
        assert_eq!(w.current(2).as_milliamps(), 0.0);
        // Steady state (½, ¼, ¼) — paper §4.3.
        let pi = stationary_gth(w.ctmc()).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-12);
        assert!((pi[1] - 0.25).abs() < 1e-12);
        assert!((pi[2] - 0.25).abs() < 1e-12);
        assert_eq!(w.send_states(), vec![1]);
    }

    #[test]
    fn burst_model_calibration() {
        // λ_burst = 182/h gives P[send] = ¼ exactly (91/364) and a larger
        // sleep probability than the simple model's ¼.
        let w = Workload::burst_model().unwrap();
        assert_eq!(w.n_states(), 5);
        let pi = stationary_gth(w.ctmc()).unwrap();
        let send: f64 = w.send_states().iter().map(|&i| pi[i]).sum();
        assert!((send - 0.25).abs() < 1e-12, "P[send] = {send}");
        let sleep = pi[w.ctmc().find_state("sleep").unwrap()];
        assert!(sleep > 0.25, "P[sleep] = {sleep}");
    }

    #[test]
    fn burst_model_other_rates_change_send_probability() {
        let w = Workload::burst_model_with(Rate::per_hour(20.0)).unwrap();
        let pi = stationary_gth(w.ctmc()).unwrap();
        let send: f64 = w.send_states().iter().map(|&i| pi[i]).sum();
        assert!(send < 0.25, "P[send] = {send}");
        assert!(Workload::burst_model_with(Rate::per_hour(0.0)).is_err());
    }

    #[test]
    fn simple_model_with_validation() {
        assert!(Workload::simple_model_with(
            Rate::per_hour(0.0),
            Rate::per_hour(6.0),
            Rate::per_hour(1.0),
            Current::ZERO,
            Current::ZERO,
        )
        .is_err());
    }

    #[test]
    fn currents_amps_conversion() {
        let w = Workload::simple_model().unwrap();
        assert_eq!(w.currents_amps(), vec![0.008, 0.2, 0.0]);
        assert_eq!(w.currents().len(), 3);
    }
}
