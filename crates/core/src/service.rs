//! The resident lifetime-distribution query service: one long-lived
//! process folding many concurrent [`Scenario`] queries into shared
//! work.
//!
//! Batch sweeps ([`crate::sweep::SweepPlan`]) already amortise a *known*
//! family of scenarios; [`LifetimeService`] does the same for traffic
//! that arrives online — the north-star's fleet shape of many devices,
//! few structural fingerprints, repeated re-queries. One query flows
//! through three layers, all guarded by one small mutex (never held
//! across a solve):
//!
//! 1. **Admission.** At most [`ServiceConfig::max_in_flight`] solves run
//!    at once. A query that would start a solve beyond that budget is
//!    shed with [`ServiceError::Overloaded`] — a typed, immediate
//!    refusal the caller can retry against, instead of an unbounded
//!    queue quietly eating the machine. Queries answered from cache, or
//!    joined onto an in-flight solve, are never shed: they cost no new
//!    work.
//! 2. **Incremental online planning.** Requests are keyed by
//!    [`Scenario::canonical_bytes`] (byte-identity, name erased).
//!    A key already being solved **joins** that flight — single-flight
//!    semantics: the second identical request blocks on the first solve
//!    and shares its result (errors included), it never re-solves. A
//!    new key is routed through
//!    [`SolverRegistry::auto`](crate::solver::SolverRegistry) selection
//!    and then joined into the *live group* for its
//!    `(backend, sweep_fingerprint)`: the same warm
//!    [`GroupState`] a batch sweep would
//!    thread through a plan group — one `DiscretisationTemplate` +
//!    `CurveCache` for a rate-rescale family, one `McPool` for
//!    simulation traffic — now kept resident across requests. Same-group
//!    solves serialise on the group state (exactly like a batch group's
//!    member order); different groups solve concurrently.
//! 3. **Caching.** Solved distributions land in a bounded LRU keyed by
//!    the scenario bytes, budgeted in bytes via
//!    [`LifetimeDistribution::size_in_bytes`] (hits hand out `Arc`
//!    views, never deep copies). Warm group states live in a second,
//!    smaller LRU keyed by `(backend, fingerprint)`. Both caches evict
//!    explicitly (least-recently-used first) and export their counters
//!    through [`ServiceStats`].
//!
//! **Bit-identity invariant.** Every shared fast path — the result
//! cache, single-flight joins, warm group state — returns the same bits
//! an independent [`SolverRegistry::solve`] of the same scenario under
//! the same options would: caching is an optimisation, never an
//! approximation. The `bench-harness regress` service gate enforces
//! sup-distance *exactly 0* between cached and fresh answers.
//!
//! ```
//! use kibamrm::scenario::Scenario;
//! use kibamrm::service::LifetimeService;
//! use kibamrm::solver::SolverRegistry;
//!
//! let service = LifetimeService::new(SolverRegistry::with_default_backends());
//! let scenario = Scenario::paper_cell_phone().unwrap();
//! let first = service.query(&scenario).unwrap();   // solves
//! let second = service.query(&scenario).unwrap();  // cache hit: same bits
//! assert_eq!(first.points(), second.points());
//! let stats = service.stats();
//! assert_eq!((stats.misses, stats.hits), (1, 1));
//! ```

use crate::distribution::LifetimeDistribution;
use crate::scenario::Scenario;
use crate::solver::{GroupState, SolverOptions, SolverRegistry};
use crate::KibamRmError;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Errors from [`LifetimeService::query`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The query was shed: it would have started a new solve while
    /// [`ServiceConfig::max_in_flight`] solves were already running.
    /// Nothing was computed; retrying later is safe and cheap.
    Overloaded {
        /// Solves running when the query was refused.
        in_flight: usize,
        /// The configured admission bound.
        limit: usize,
    },
    /// The underlying solve failed (propagated verbatim, also to every
    /// request joined onto the failing flight).
    Solve(KibamRmError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight, limit } => write!(
                f,
                "service overloaded: {in_flight} solves in flight (limit {limit})"
            ),
            ServiceError::Solve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Solve(e) => Some(e),
            ServiceError::Overloaded { .. } => None,
        }
    }
}

impl From<KibamRmError> for ServiceError {
    fn from(e: KibamRmError) -> Self {
        ServiceError::Solve(e)
    }
}

/// Sizing knobs of a [`LifetimeService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Admission bound: at most this many solves run concurrently;
    /// further solve-starting queries are shed with
    /// [`ServiceError::Overloaded`]. Clamped to ≥ 1. Default: twice the
    /// available parallelism (some headroom for solves blocked on a
    /// shared group state).
    pub max_in_flight: usize,
    /// Byte budget of the solved-distribution LRU, accounted via
    /// [`LifetimeDistribution::size_in_bytes`]. `0` disables result
    /// caching (single-flight dedup still applies). Default: 32 MiB.
    pub cache_capacity_bytes: usize,
    /// Entry budget of the warm group-state LRU (templates, curve
    /// caches, worker pools). `0` disables warm-state reuse — every
    /// solve assembles its own state. Default: 16.
    pub warm_capacity: usize,
    /// Per-solve thread budget handed to the backends (see
    /// [`SolverOptions`]).
    pub options: SolverOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig {
            max_in_flight: 2 * cores,
            cache_capacity_bytes: 32 << 20,
            warm_capacity: 16,
            options: SolverOptions::default(),
        }
    }
}

impl ServiceConfig {
    /// Replaces the admission bound.
    #[must_use]
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Replaces the result-cache byte budget.
    #[must_use]
    pub fn with_cache_capacity_bytes(mut self, bytes: usize) -> Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Replaces the warm-state entry budget.
    #[must_use]
    pub fn with_warm_capacity(mut self, entries: usize) -> Self {
        self.warm_capacity = entries;
        self
    }

    /// Replaces the per-solve thread budget.
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }
}

/// A point-in-time snapshot of the service's counters and occupancy
/// ([`LifetimeService::stats`]). Counters are cumulative since
/// construction and survive [`LifetimeService::purge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries answered from the result cache (no solve, no wait).
    pub hits: u64,
    /// Queries that started a fresh solve.
    pub misses: u64,
    /// Queries that joined an in-flight identical solve (single-flight).
    pub joined: u64,
    /// Queries shed with [`ServiceError::Overloaded`].
    pub shed: u64,
    /// Result-cache entries evicted to make room (LRU order).
    pub evictions: u64,
    /// Solves that found a resident warm group state for their
    /// `(backend, fingerprint)`.
    pub warm_hits: u64,
    /// Solves that had to create (or could not use) a warm group state.
    pub warm_misses: u64,
    /// Warm group states evicted to make room (LRU order).
    pub warm_evictions: u64,
    /// Queries whose scenario has no canonical byte key
    /// ([`Scenario::canonical_bytes`] failed): admitted and solved, but
    /// never cached, deduplicated or joined.
    pub uncacheable: u64,
    /// Solves that returned an error (errors are never cached).
    pub errors: u64,
    /// Solves running right now.
    pub in_flight: usize,
    /// Result-cache entries currently resident.
    pub cached_entries: usize,
    /// Result-cache bytes currently resident.
    pub cached_bytes: usize,
    /// Warm group states currently resident.
    pub warm_entries: usize,
}

impl ServiceStats {
    /// Fraction of admitted queries served without starting a solve:
    /// `(hits + joined) / (hits + joined + misses + uncacheable)`.
    /// `0` when nothing was admitted yet.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.joined;
        let admitted = served + self.misses + self.uncacheable;
        if admitted == 0 {
            0.0
        } else {
            served as f64 / admitted as f64
        }
    }
}

/// An in-flight solve other requests can join: the first request for a
/// key publishes its outcome here and wakes every joiner.
struct Flight {
    done: Mutex<Option<Result<LifetimeDistribution, ServiceError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<LifetimeDistribution, ServiceError> {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn complete(&self, result: Result<LifetimeDistribution, ServiceError>) {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        self.cv.notify_all();
    }
}

/// One resident result-cache entry.
struct CacheEntry {
    dist: LifetimeDistribution,
    bytes: usize,
    last_used: u64,
}

/// One resident warm group state. The `Arc<Mutex<…>>` is the live-group
/// handle: every same-fingerprint solve locks it for the duration of its
/// member solve, which serialises the group exactly like a batch plan
/// group while leaving other groups fully concurrent. Evicting the entry
/// only unlists it — an in-progress solve keeps its state alive through
/// the `Arc` and finishes normally.
struct WarmEntry {
    state: Arc<Mutex<Box<dyn GroupState>>>,
    last_used: u64,
}

/// Everything behind the service mutex. The lock is held only for map
/// lookups and counter bumps — never across a solve.
#[derive(Default)]
struct Inner {
    cache: HashMap<Vec<u8>, CacheEntry>,
    cache_bytes: usize,
    warm: HashMap<(usize, u64), WarmEntry>,
    flights: HashMap<Vec<u8>, Arc<Flight>>,
    in_flight: usize,
    /// Monotone LRU clock: bumped on every cache/warm touch.
    tick: u64,
    hits: u64,
    misses: u64,
    joined: u64,
    shed: u64,
    evictions: u64,
    warm_hits: u64,
    warm_misses: u64,
    warm_evictions: u64,
    uncacheable: u64,
    errors: u64,
}

impl Inner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Inserts a solved distribution, evicting least-recently-used
    /// entries until it fits. Oversized results (bigger than the whole
    /// budget) are simply not cached.
    fn insert_cached(&mut self, key: Vec<u8>, dist: LifetimeDistribution, budget: usize) {
        let bytes = dist.size_in_bytes();
        if bytes > budget {
            return;
        }
        while self.cache_bytes + bytes > budget {
            let Some(victim) = self
                .cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = self.cache.remove(&victim) {
                self.cache_bytes -= evicted.bytes;
                self.evictions += 1;
            }
        }
        let last_used = self.next_tick();
        self.cache_bytes += bytes;
        self.cache.insert(
            key,
            CacheEntry {
                dist,
                bytes,
                last_used,
            },
        );
    }
}

/// The resident query service; see the module docs for the lifecycle.
///
/// The service is `Sync`: share one instance (e.g. behind an `Arc`)
/// between all request threads.
pub struct LifetimeService {
    registry: SolverRegistry,
    config: ServiceConfig,
    inner: Mutex<Inner>,
}

// One `LifetimeService` is shared by every request thread.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<LifetimeService>();
};

/// What the admission lock decided for one keyed query.
enum Admission {
    Hit(LifetimeDistribution),
    Join(Arc<Flight>),
    Solve(Arc<Flight>),
}

impl LifetimeService {
    /// A service over `registry` with the default [`ServiceConfig`].
    pub fn new(registry: SolverRegistry) -> Self {
        LifetimeService::with_config(registry, ServiceConfig::default())
    }

    /// A service over `registry` with explicit sizing.
    pub fn with_config(registry: SolverRegistry, config: ServiceConfig) -> Self {
        LifetimeService {
            registry,
            config,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The service's sizing knobs.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The registry queries are routed through.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking solver thread cannot corrupt the maps (the lock is
        // never held across backend code), so poisoning is not fatal.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Answers one query: from the result cache when the scenario's
    /// canonical bytes are resident, by joining an identical in-flight
    /// solve, or by solving through the live group for its
    /// `(backend, fingerprint)` — whichever is cheapest. Blocks until
    /// the answer (or the flight it joined) is ready.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the query would start a solve
    /// beyond the admission bound (nothing was computed);
    /// [`ServiceError::Solve`] for backend-selection and solve failures
    /// (shared verbatim with every joined request; never cached).
    pub fn query(&self, scenario: &Scenario) -> Result<LifetimeDistribution, ServiceError> {
        let Ok(key) = scenario.canonical_bytes() else {
            return self.query_uncacheable(scenario);
        };
        let admission = {
            let mut inner = self.lock();
            if inner.cache.contains_key(&key) {
                let tick = inner.next_tick();
                inner.hits += 1;
                let entry = inner.cache.get_mut(&key).expect("checked key");
                entry.last_used = tick;
                Admission::Hit(entry.dist.clone())
            } else if let Some(flight) = inner.flights.get(&key).map(Arc::clone) {
                inner.joined += 1;
                Admission::Join(flight)
            } else {
                let limit = self.config.max_in_flight.max(1);
                if inner.in_flight >= limit {
                    inner.shed += 1;
                    return Err(ServiceError::Overloaded {
                        in_flight: inner.in_flight,
                        limit,
                    });
                }
                inner.in_flight += 1;
                inner.misses += 1;
                let flight = Arc::new(Flight::new());
                inner.flights.insert(key.clone(), Arc::clone(&flight));
                Admission::Solve(flight)
            }
        };
        match admission {
            Admission::Hit(dist) => Ok(dist),
            Admission::Join(flight) => flight.wait(),
            Admission::Solve(flight) => self.run_flight(scenario, key, &flight),
        }
    }

    /// The owner path of a flight: solve, publish, cache. A guard keeps
    /// the bookkeeping (and the joiners) correct even if the backend
    /// panics.
    fn run_flight(
        &self,
        scenario: &Scenario,
        key: Vec<u8>,
        flight: &Arc<Flight>,
    ) -> Result<LifetimeDistribution, ServiceError> {
        struct FlightGuard<'a> {
            service: &'a LifetimeService,
            key: Vec<u8>,
            flight: &'a Arc<Flight>,
            done: bool,
        }
        impl Drop for FlightGuard<'_> {
            fn drop(&mut self) {
                if self.done {
                    return;
                }
                // The solve unwound: unregister the flight and wake the
                // joiners with an error instead of leaving them parked
                // forever. The panic keeps propagating to the caller.
                let mut inner = self.service.lock();
                inner.flights.remove(&self.key);
                inner.in_flight -= 1;
                inner.errors += 1;
                drop(inner);
                self.flight
                    .complete(Err(ServiceError::Solve(KibamRmError::InvalidWorkload(
                        "solver panicked during a service query".into(),
                    ))));
            }
        }

        let mut guard = FlightGuard {
            service: self,
            key,
            flight,
            done: false,
        };
        let result = self.solve_via_group(scenario);
        guard.done = true;
        let mut inner = self.lock();
        inner.flights.remove(&guard.key);
        inner.in_flight -= 1;
        match &result {
            Ok(dist) => {
                let key = std::mem::take(&mut guard.key);
                inner.insert_cached(key, dist.clone(), self.config.cache_capacity_bytes);
            }
            Err(_) => inner.errors += 1,
        }
        drop(inner);
        flight.complete(result.clone());
        result
    }

    /// A scenario without a canonical key: admitted (and counted against
    /// the in-flight budget) but never cached, deduplicated or joined.
    fn query_uncacheable(&self, scenario: &Scenario) -> Result<LifetimeDistribution, ServiceError> {
        {
            let mut inner = self.lock();
            let limit = self.config.max_in_flight.max(1);
            if inner.in_flight >= limit {
                inner.shed += 1;
                return Err(ServiceError::Overloaded {
                    in_flight: inner.in_flight,
                    limit,
                });
            }
            inner.in_flight += 1;
            inner.uncacheable += 1;
        }
        let result = self.solve_via_group(scenario);
        let mut inner = self.lock();
        inner.in_flight -= 1;
        if result.is_err() {
            inner.errors += 1;
        }
        result
    }

    /// One solve through the live group for the scenario's
    /// `(backend, fingerprint)`: lock the group's warm state (creating
    /// or resurrecting it as needed) and run the same grouped member
    /// solve a batch sweep would. Backends without a fingerprint or warm
    /// state solve independently.
    fn solve_via_group(&self, scenario: &Scenario) -> Result<LifetimeDistribution, ServiceError> {
        let index = self.registry.auto_index(scenario)?;
        let solver = self.registry.solver_at(index);
        let options = self.config.options;
        let slot = solver
            .sweep_fingerprint(scenario)
            .and_then(|fp| self.warm_slot(index, fp, |opts| solver.new_group_state(opts)));
        let result = match slot {
            Some(slot) => {
                // Serialises same-group solves, exactly like a batch
                // group's member order. A poisoned state (an earlier
                // member panicked mid-solve) is replaced wholesale: a
                // half-updated cache could violate bit-identity.
                let mut state = match slot.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => {
                        let mut guard = poisoned.into_inner();
                        if let Some(fresh) = solver.new_group_state(&options) {
                            *guard = fresh;
                        }
                        guard
                    }
                };
                solver.solve_in_group(scenario, &options, state.as_mut())
            }
            None => solver.solve_with(scenario, &options),
        };
        result.map_err(ServiceError::Solve)
    }

    /// The live-group handle for `(backend index, fingerprint)`:
    /// resident state when there is one, a freshly created (and
    /// LRU-inserted) state otherwise. `None` when the backend has no
    /// warm state or warm caching is disabled.
    fn warm_slot(
        &self,
        index: usize,
        fingerprint: u64,
        make: impl FnOnce(&SolverOptions) -> Option<Box<dyn GroupState>>,
    ) -> Option<Arc<Mutex<Box<dyn GroupState>>>> {
        if self.config.warm_capacity == 0 {
            return None;
        }
        let mut inner = self.lock();
        let tick = inner.next_tick();
        if let Some(entry) = inner.warm.get_mut(&(index, fingerprint)) {
            entry.last_used = tick;
            let state = Arc::clone(&entry.state);
            inner.warm_hits += 1;
            return Some(state);
        }
        inner.warm_misses += 1;
        // Create outside the lock? State construction is cheap for the
        // current backends (pool workers spawn lazily on first use for
        // small thread counts) — and creating inside the lock guarantees
        // at most one state per group ever exists, which is the whole
        // point of a live group.
        let state = Arc::new(Mutex::new(make(&self.config.options)?));
        while inner.warm.len() >= self.config.warm_capacity {
            let Some(victim) = inner
                .warm
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
            else {
                break;
            };
            inner.warm.remove(&victim);
            inner.warm_evictions += 1;
        }
        inner.warm.insert(
            (index, fingerprint),
            WarmEntry {
                state: Arc::clone(&state),
                last_used: tick,
            },
        );
        Some(state)
    }

    /// A snapshot of the counters and current occupancy.
    pub fn stats(&self) -> ServiceStats {
        let inner = self.lock();
        ServiceStats {
            hits: inner.hits,
            misses: inner.misses,
            joined: inner.joined,
            shed: inner.shed,
            evictions: inner.evictions,
            warm_hits: inner.warm_hits,
            warm_misses: inner.warm_misses,
            warm_evictions: inner.warm_evictions,
            uncacheable: inner.uncacheable,
            errors: inner.errors,
            in_flight: inner.in_flight,
            cached_entries: inner.cache.len(),
            cached_bytes: inner.cache_bytes,
            warm_entries: inner.warm.len(),
        }
    }

    /// Drops every cached distribution and warm group state (counters
    /// and in-flight solves are untouched; dropped entries do not count
    /// as evictions). In-progress solves keep their group state alive
    /// through their own handles and finish normally.
    pub fn purge(&self) {
        let mut inner = self.lock();
        inner.cache.clear();
        inner.cache_bytes = 0;
        inner.warm.clear();
    }
}

impl fmt::Debug for LifetimeService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LifetimeService")
            .field("registry", &self.registry)
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Capability, LifetimeSolver};
    use crate::workload::Workload;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use units::{Charge, Current, Frequency, Time};

    /// A cheap linear scenario (Sericola backend, no warm state).
    fn linear(seed: u64) -> Scenario {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        Scenario::builder()
            .name("svc-linear")
            .workload(w)
            .capacity(Charge::from_amp_seconds(72.0))
            .linear()
            .times(
                (1..=8)
                    .map(|i| Time::from_seconds(i as f64 * 20.0))
                    .collect(),
            )
            .delta(Charge::from_amp_seconds(0.5))
            .simulation(50, seed)
            .build()
            .unwrap()
    }

    /// A counting backend: exact, instant, records every solve.
    struct Counting {
        solves: Arc<AtomicUsize>,
    }
    impl LifetimeSolver for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn capability(&self, _s: &Scenario) -> Capability {
            Capability::Exact
        }
        fn solve(&self, s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
            self.solves.fetch_add(1, Ordering::SeqCst);
            let points = s
                .times()
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, (i as f64 + 1.0) / (s.times().len() as f64 + 1.0)))
                .collect();
            LifetimeDistribution::new("counting", points, Default::default())
        }
    }

    /// A backend that parks inside solve() until released — the load
    /// generator for shedding and single-flight tests.
    struct Blocking {
        solves: Arc<AtomicUsize>,
        entered: mpsc::Sender<()>,
        release: Arc<(Mutex<bool>, Condvar)>,
    }
    impl Blocking {
        fn release(gate: &Arc<(Mutex<bool>, Condvar)>) {
            let (lock, cv) = &**gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
    }
    impl LifetimeSolver for Blocking {
        fn name(&self) -> &'static str {
            "blocking"
        }
        fn capability(&self, _s: &Scenario) -> Capability {
            Capability::Exact
        }
        fn solve(&self, s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
            self.solves.fetch_add(1, Ordering::SeqCst);
            let _ = self.entered.send(());
            let (lock, cv) = &*self.release;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            let points = s.times().iter().map(|&t| (t, 0.5)).collect();
            LifetimeDistribution::new("blocking", points, Default::default())
        }
    }

    fn counting_service(budget_bytes: usize) -> (LifetimeService, Arc<AtomicUsize>) {
        let solves = Arc::new(AtomicUsize::new(0));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Counting {
            solves: Arc::clone(&solves),
        }));
        let service = LifetimeService::with_config(
            registry,
            ServiceConfig::default().with_cache_capacity_bytes(budget_bytes),
        );
        (service, solves)
    }

    #[test]
    fn cache_hits_share_bits_and_storage() {
        let (service, solves) = counting_service(32 << 20);
        let s = linear(1);
        let a = service.query(&s).unwrap();
        let b = service.query(&s).unwrap();
        assert_eq!(solves.load(Ordering::SeqCst), 1, "second query is a hit");
        assert_eq!(a.points(), b.points());
        // The hit is a shared view, not a copy.
        assert!(std::ptr::eq(a.points().as_ptr(), b.points().as_ptr()));
        // A name-only variant hits too: the canonical key erases names.
        let c = service.query(&s.with_name("other-label")).unwrap();
        assert_eq!(solves.load(Ordering::SeqCst), 1);
        assert_eq!(c.points(), a.points());
        let stats = service.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
        assert_eq!(stats.cached_entries, 1);
        assert_eq!(stats.cached_bytes, a.size_in_bytes());
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let probe = {
            let (service, _) = counting_service(usize::MAX);
            service.query(&linear(1)).unwrap().size_in_bytes()
        };
        // Room for exactly two entries.
        let (service, solves) = counting_service(2 * probe);
        let (a, b, c) = (linear(1), linear(2), linear(3));
        service.query(&a).unwrap();
        service.query(&b).unwrap();
        service.query(&a).unwrap(); // touch a: b is now least recent
        service.query(&c).unwrap(); // evicts b
        assert_eq!(service.stats().evictions, 1);
        assert_eq!(service.stats().cached_entries, 2);
        let before = solves.load(Ordering::SeqCst);
        service.query(&a).unwrap(); // still resident
        assert_eq!(solves.load(Ordering::SeqCst), before, "a stayed cached");
        service.query(&b).unwrap(); // evicted: must re-solve
        assert_eq!(solves.load(Ordering::SeqCst), before + 1, "b was evicted");
        // Re-querying b evicted the next LRU victim (c after a's touch…
        // a was touched last, so c goes).
        assert_eq!(service.stats().evictions, 2);
    }

    #[test]
    fn zero_budget_disables_caching_but_not_dedup() {
        let (service, solves) = counting_service(0);
        let s = linear(1);
        service.query(&s).unwrap();
        service.query(&s).unwrap();
        assert_eq!(solves.load(Ordering::SeqCst), 2, "nothing cached");
        let stats = service.stats();
        assert_eq!(stats.cached_entries, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn shed_under_load_is_typed_and_harmless() {
        let solves = Arc::new(AtomicUsize::new(0));
        let (entered_tx, entered_rx) = mpsc::channel();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Blocking {
            solves: Arc::clone(&solves),
            entered: entered_tx,
            release: Arc::clone(&gate),
        }));
        let service = Arc::new(LifetimeService::with_config(
            registry,
            ServiceConfig::default().with_max_in_flight(1),
        ));

        let occupant = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.query(&linear(1)))
        };
        entered_rx.recv().expect("first query reached the backend");
        // The budget is full: a *different* scenario is shed…
        let err = service.query(&linear(2)).expect_err("must shed");
        assert!(matches!(
            err,
            ServiceError::Overloaded {
                in_flight: 1,
                limit: 1
            }
        ));
        assert!(err.to_string().contains("overloaded"));
        Blocking::release(&gate);
        let first = occupant.join().unwrap().expect("occupant succeeds");
        assert_eq!(first.points().len(), 8);
        let stats = service.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(
            solves.load(Ordering::SeqCst),
            1,
            "shed query computed nothing"
        );
        // After the flight drains, the same scenario is admitted again.
        assert!(service.query(&linear(2)).is_ok());
    }

    #[test]
    fn identical_concurrent_queries_join_instead_of_shedding() {
        let solves = Arc::new(AtomicUsize::new(0));
        let (entered_tx, entered_rx) = mpsc::channel();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Blocking {
            solves: Arc::clone(&solves),
            entered: entered_tx,
            release: Arc::clone(&gate),
        }));
        // max_in_flight = 1: joiners must not count against the budget.
        let service = Arc::new(LifetimeService::with_config(
            registry,
            ServiceConfig::default().with_max_in_flight(1),
        ));
        let s = linear(1);
        let owner = {
            let (service, s) = (Arc::clone(&service), s.clone());
            std::thread::spawn(move || service.query(&s))
        };
        entered_rx.recv().expect("owner reached the backend");
        let joiners: Vec<_> = (0..3)
            .map(|_| {
                let (service, s) = (Arc::clone(&service), s.clone());
                std::thread::spawn(move || service.query(&s))
            })
            .collect();
        // Joining is registration, not completion — give the threads a
        // moment to park, then release the one real solve.
        while service.stats().joined < 3 {
            std::thread::yield_now();
        }
        Blocking::release(&gate);
        let reference = owner.join().unwrap().unwrap();
        for j in joiners {
            let d = j.join().unwrap().expect("joiner shares the result");
            assert_eq!(d.points(), reference.points());
        }
        assert_eq!(solves.load(Ordering::SeqCst), 1, "one solve for 4 queries");
        let stats = service.stats();
        assert_eq!((stats.misses, stats.joined, stats.shed), (1, 3, 0));
    }

    #[test]
    fn errors_propagate_to_joiners_and_are_not_cached() {
        struct Failing {
            solves: Arc<AtomicUsize>,
        }
        impl LifetimeSolver for Failing {
            fn name(&self) -> &'static str {
                "failing"
            }
            fn capability(&self, _s: &Scenario) -> Capability {
                Capability::Exact
            }
            fn solve(&self, _s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
                self.solves.fetch_add(1, Ordering::SeqCst);
                Err(KibamRmError::InvalidWorkload("synthetic failure".into()))
            }
        }
        let solves = Arc::new(AtomicUsize::new(0));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Failing {
            solves: Arc::clone(&solves),
        }));
        let service = LifetimeService::new(registry);
        let s = linear(1);
        let err = service.query(&s).expect_err("solve fails");
        assert!(matches!(err, ServiceError::Solve(_)));
        // Errors are not cached: the next query re-solves.
        let _ = service.query(&s).expect_err("still fails");
        assert_eq!(solves.load(Ordering::SeqCst), 2);
        let stats = service.stats();
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.cached_entries, 0);
    }

    #[test]
    fn real_registry_serves_bit_identical_answers_and_reuses_warm_state() {
        // Sequential options keep grouped and independent solves
        // unconditionally bit-identical (see the sweep contract).
        let options = SolverOptions::sequential();
        let registry = SolverRegistry::with_default_backends().with_options(options);
        let service = LifetimeService::with_config(
            SolverRegistry::with_default_backends(),
            ServiceConfig::default().with_options(options),
        );
        let base = Scenario::paper_cell_phone().unwrap();
        let family: Vec<Scenario> = [1.0, 0.5, 0.25]
            .iter()
            .map(|&g| base.with_rate_scale(g).unwrap())
            .collect();
        for s in &family {
            let served = service.query(s).unwrap();
            let fresh = registry.solve(s).unwrap();
            assert_eq!(
                served.points(),
                fresh.points(),
                "service answer differs from a fresh solve for {}",
                s.name()
            );
            // And the cached copy is the same bits again.
            assert_eq!(service.query(s).unwrap().points(), fresh.points());
        }
        let stats = service.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
        // The rescale family shares one live group: first member creates
        // the warm state, the rest find it resident.
        assert_eq!(stats.warm_misses, 1);
        assert_eq!(stats.warm_hits, 2);
        assert_eq!(stats.warm_entries, 1);
    }

    #[test]
    fn warm_state_eviction_and_purge() {
        let options = SolverOptions::sequential();
        let service = LifetimeService::with_config(
            SolverRegistry::with_default_backends(),
            ServiceConfig::default()
                .with_options(options)
                .with_warm_capacity(1),
        );
        let base = Scenario::paper_cell_phone().unwrap();
        let coarse = base.with_delta(Charge::from_milliamp_hours(50.0));
        service.query(&base).unwrap();
        // A different Δ is a different fingerprint: with capacity 1 the
        // first group is evicted.
        service.query(&coarse).unwrap();
        let stats = service.stats();
        assert_eq!(stats.warm_evictions, 1);
        assert_eq!(stats.warm_entries, 1);
        service.purge();
        let stats = service.stats();
        assert_eq!((stats.cached_entries, stats.warm_entries), (0, 0));
        assert_eq!(stats.cached_bytes, 0);
        // Counters survive; the next identical query is a miss again.
        assert_eq!(stats.misses, 2);
        service.query(&base).unwrap();
        assert_eq!(service.stats().misses, 3);
    }

    #[test]
    fn unkeyable_scenarios_are_served_uncached() {
        let w = crate::builder::WorkloadBuilder::new()
            .state("has space", Current::from_amps(0.5))
            .build()
            .unwrap();
        let s = Scenario::builder()
            .workload(w)
            .capacity(Charge::from_coulombs(100.0))
            .linear()
            .time_grid(Time::from_seconds(400.0), 4)
            .delta(Charge::from_coulombs(0.5))
            .simulation(20, 1)
            .build()
            .unwrap();
        let service = LifetimeService::with_config(
            SolverRegistry::with_default_backends(),
            ServiceConfig::default().with_options(SolverOptions::sequential()),
        );
        let a = service.query(&s).unwrap();
        let b = service.query(&s).unwrap();
        assert_eq!(a.points(), b.points());
        let stats = service.stats();
        assert_eq!(stats.uncacheable, 2, "served, but never cached");
        assert_eq!(stats.cached_entries, 0);
        assert_eq!(stats.hits + stats.misses, 0);
    }

    #[test]
    fn config_knobs_and_display() {
        let cfg = ServiceConfig::default()
            .with_max_in_flight(3)
            .with_cache_capacity_bytes(1024)
            .with_warm_capacity(2)
            .with_options(SolverOptions::sequential());
        assert_eq!(cfg.max_in_flight, 3);
        assert_eq!(cfg.cache_capacity_bytes, 1024);
        assert_eq!(cfg.warm_capacity, 2);
        let service = LifetimeService::with_config(SolverRegistry::with_default_backends(), cfg);
        assert_eq!(*service.config(), cfg);
        assert!(service.registry().find("sericola").is_some());
        assert!(format!("{service:?}").contains("LifetimeService"));
        let err = ServiceError::Overloaded {
            in_flight: 9,
            limit: 8,
        };
        assert!(err.to_string().contains("9 solves in flight (limit 8)"));
        assert!(std::error::Error::source(&err).is_none());
        let err: ServiceError = KibamRmError::InvalidWorkload("x".into()).into();
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(ServiceStats::default().hit_rate(), 0.0);
    }
}
