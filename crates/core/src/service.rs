//! The resident lifetime-distribution query service: one long-lived
//! process folding many concurrent [`Scenario`] queries into shared
//! work.
//!
//! Batch sweeps ([`crate::sweep::SweepPlan`]) already amortise a *known*
//! family of scenarios; [`LifetimeService`] does the same for traffic
//! that arrives online — the north-star's fleet shape of many devices,
//! few structural fingerprints, repeated re-queries. One query flows
//! through three layers, all guarded by one small mutex (never held
//! across a solve):
//!
//! 1. **Admission.** At most [`ServiceConfig::max_in_flight`] solves run
//!    at once. A query that would start a solve beyond that budget is
//!    shed with [`ServiceError::Overloaded`] — a typed, immediate
//!    refusal the caller can retry against, instead of an unbounded
//!    queue quietly eating the machine. Queries answered from cache, or
//!    joined onto an in-flight solve, are never shed: they cost no new
//!    work.
//! 2. **Incremental online planning.** Requests are keyed by
//!    [`Scenario::canonical_bytes`] (byte-identity, name erased).
//!    A key already being solved **joins** that flight — single-flight
//!    semantics: the second identical request blocks on the first solve
//!    and shares its result (errors included), it never re-solves. A
//!    new key is routed through
//!    [`SolverRegistry::auto`](crate::solver::SolverRegistry) selection
//!    and then joined into the *live group* for its
//!    `(backend, sweep_fingerprint)`: the same warm
//!    [`GroupState`] a batch sweep would
//!    thread through a plan group — one `DiscretisationTemplate` +
//!    `CurveCache` for a rate-rescale family, one `McPool` for
//!    simulation traffic — now kept resident across requests. Same-group
//!    solves serialise on the group state (exactly like a batch group's
//!    member order); different groups solve concurrently.
//! 3. **Caching.** Solved distributions land in a bounded LRU keyed by
//!    the scenario bytes, budgeted in bytes via
//!    [`LifetimeDistribution::size_in_bytes`] (hits hand out `Arc`
//!    views, never deep copies). Warm group states live in a second,
//!    smaller LRU keyed by `(backend, fingerprint)`. Both caches evict
//!    explicitly (least-recently-used first) and export their counters
//!    through [`ServiceStats`].
//!
//! **Bit-identity invariant.** Every shared fast path — the result
//! cache, single-flight joins, warm group state — returns the same bits
//! an independent [`SolverRegistry::solve`] of the same scenario under
//! the same options would: caching is an optimisation, never an
//! approximation. The `bench-harness regress` service gate enforces
//! sup-distance *exactly 0* between cached and fresh answers.
//!
//! ```
//! use kibamrm::scenario::Scenario;
//! use kibamrm::service::LifetimeService;
//! use kibamrm::solver::SolverRegistry;
//!
//! let service = LifetimeService::new(SolverRegistry::with_default_backends());
//! let scenario = Scenario::paper_cell_phone().unwrap();
//! let first = service.query(&scenario).unwrap();   // solves
//! let second = service.query(&scenario).unwrap();  // cache hit: same bits
//! assert_eq!(first.points(), second.points());
//! let stats = service.stats();
//! assert_eq!((stats.misses, stats.hits), (1, 1));
//! ```

use crate::distribution::LifetimeDistribution;
use crate::scenario::Scenario;
use crate::snapshot::{
    self, SnapshotEntry, SnapshotError, SnapshotLoadReport, SnapshotWriteReport,
};
use crate::solver::{GroupState, LifetimeSolver, SimulationSolver, SolverOptions, SolverRegistry};
use crate::KibamRmError;
use markov::Budget;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use units::{Charge, Time};

/// Errors from [`LifetimeService::query`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The query was shed: it would have started a new solve while
    /// [`ServiceConfig::max_in_flight`] solves were already running.
    /// Nothing was computed; retrying later is safe and cheap.
    Overloaded {
        /// Solves running when the query was refused.
        in_flight: usize,
        /// The configured admission bound.
        limit: usize,
    },
    /// The underlying solve failed (propagated verbatim, also to every
    /// request joined onto the failing flight).
    Solve(KibamRmError),
    /// The request's [`QueryOptions::deadline`] expired before the exact
    /// solve finished, and no degraded answer was allowed
    /// ([`QueryOptions::degraded_ok`] was false) or available.
    DeadlineExceeded {
        /// Units of work (backend-specific: uniformisation iterations or
        /// replications) the interrupted solve completed.
        completed: usize,
    },
    /// The circuit breaker for the request's `(backend, fingerprint)` is
    /// open after repeated backend failures: the query was shed fast,
    /// without touching the backend, until a half-open probe succeeds.
    CircuitOpen {
        /// The backend whose breaker is open.
        backend: &'static str,
    },
}

impl ServiceError {
    /// Whether retrying the *same* request later can reasonably succeed.
    ///
    /// * [`Overloaded`](ServiceError::Overloaded) — yes: admission
    ///   pressure drains as in-flight solves finish.
    /// * [`CircuitOpen`](ServiceError::CircuitOpen) — yes: the breaker
    ///   half-opens after its cooldown and lets a probe through.
    /// * [`DeadlineExceeded`](ServiceError::DeadlineExceeded) — no: the
    ///   request's own time budget was consumed; an unchanged retry fails
    ///   the same way. Raise the deadline or allow degradation instead.
    /// * [`Solve`](ServiceError::Solve) — only for transient numerical
    ///   failures (non-convergence); validation errors are permanent.
    pub fn retryable(&self) -> bool {
        match self {
            ServiceError::Overloaded { .. } | ServiceError::CircuitOpen { .. } => true,
            ServiceError::DeadlineExceeded { .. } => false,
            ServiceError::Solve(e) => transient_solve_error(e),
        }
    }
}

/// Transient solve failures — the class the service's bounded-backoff
/// retry loop re-attempts. Validation errors are deterministic and
/// excluded; numerical non-convergence (and injected chaos faults, which
/// reuse that variant) may clear on retry.
fn transient_solve_error(e: &KibamRmError) -> bool {
    matches!(
        e,
        KibamRmError::Markov(markov::MarkovError::NoConvergence(_))
    )
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight, limit } => write!(
                f,
                "service overloaded: {in_flight} solves in flight (limit {limit})"
            ),
            ServiceError::Solve(e) => write!(f, "{e}"),
            ServiceError::DeadlineExceeded { completed } => write!(
                f,
                "request deadline exceeded after {completed} units of completed work"
            ),
            ServiceError::CircuitOpen { backend } => write!(
                f,
                "circuit breaker open for backend '{backend}': shedding until a probe succeeds"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KibamRmError> for ServiceError {
    fn from(e: KibamRmError) -> Self {
        match e {
            KibamRmError::DeadlineExceeded { completed } => {
                ServiceError::DeadlineExceeded { completed }
            }
            other => ServiceError::Solve(other),
        }
    }
}

/// Bounded exponential backoff for transient solve failures
/// ([`QueryOptions::retry`]). `max_retries == 0` (the default) disables
/// retrying entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the first failed solve (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling (the exponential curve saturates here).
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// No retries (the default).
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(640),
        }
    }

    /// Up to `max_retries` re-attempts with the default backoff curve
    /// (10 ms doubling to a 640 ms ceiling).
    pub const fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(640),
        }
    }

    /// Replaces the backoff curve.
    #[must_use]
    pub const fn with_backoff(mut self, initial: Duration, max: Duration) -> Self {
        self.initial_backoff = initial;
        self.max_backoff = max;
        self
    }

    /// The backoff before retry `attempt` (1-based): `initial·2^(n−1)`,
    /// saturating at [`max_backoff`](RetryPolicy::max_backoff).
    fn backoff_for(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        self.initial_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Per-request quality-of-service knobs for
/// [`LifetimeService::query_with`]. The default (`no deadline, no
/// degradation, no retries`) reproduces [`LifetimeService::query`]
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryOptions {
    /// Wall-clock budget for this request. The exact solve is cancelled
    /// cooperatively (at iteration granularity) when it expires; the
    /// deadline instant is fixed once per request, so retries and
    /// degraded fallbacks share it rather than extending it.
    pub deadline: Option<Duration>,
    /// Allow a degraded answer when the exact solve cannot finish in
    /// time: a resident same-family curve at a different Δ, or a fast
    /// Monte Carlo estimate — always tagged
    /// [`Answer::Degraded`] with an explicit error bound.
    pub degraded_ok: bool,
    /// Retry policy for transient solve failures.
    pub retry: RetryPolicy,
}

impl QueryOptions {
    /// The default options (no deadline, exact answers only, no retry).
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Sets the request deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Permits degraded answers on deadline expiry.
    #[must_use]
    pub fn allow_degraded(mut self) -> Self {
        self.degraded_ok = true;
        self
    }

    /// Sets the retry policy for transient failures.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Where a degraded answer came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradedSource {
    /// A resident curve of the same structural family (identical
    /// workload, battery, grid and simulation settings) solved at a
    /// different discretisation step.
    CachedFamily {
        /// The Δ the cached curve was solved at (`None` for
        /// Δ-independent backends, whose curve is the exact answer).
        delta: Option<Charge>,
    },
    /// A fast Monte Carlo estimate computed under the degraded grace
    /// budget ([`ServiceConfig::degraded_grace`]).
    FastSimulation {
        /// Replications behind the estimate.
        runs: usize,
    },
}

/// The outcome of a [`LifetimeService::query_with`] request.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// The exact answer — bit-identical to an independent
    /// [`SolverRegistry::solve`] of the same scenario.
    Exact(LifetimeDistribution),
    /// A degraded answer served because the deadline expired before the
    /// exact solve finished. Never cached; always carries an explicit
    /// error bound.
    Degraded {
        /// The degraded curve.
        dist: LifetimeDistribution,
        /// Explicit sup-norm error bound of the degraded curve: the
        /// Wilson 95 % half-width for Monte Carlo answers, one
        /// discretisation level (`Δ/capacity`) for family variants, `0`
        /// when the variant is exact.
        bound: f64,
        /// Which degradation tier produced it.
        source: DegradedSource,
    },
}

impl Answer {
    /// The distribution, whichever tier produced it.
    pub fn distribution(&self) -> &LifetimeDistribution {
        match self {
            Answer::Exact(d) | Answer::Degraded { dist: d, .. } => d,
        }
    }

    /// Consumes the answer into its distribution.
    pub fn into_distribution(self) -> LifetimeDistribution {
        match self {
            Answer::Exact(d) | Answer::Degraded { dist: d, .. } => d,
        }
    }

    /// Whether this is a degraded answer.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Answer::Degraded { .. })
    }

    /// The explicit error bound of a degraded answer (`None` for exact).
    pub fn bound(&self) -> Option<f64> {
        match self {
            Answer::Exact(_) => None,
            Answer::Degraded { bound, .. } => Some(*bound),
        }
    }
}

/// Sizing knobs of a [`LifetimeService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Admission bound: at most this many solves run concurrently;
    /// further solve-starting queries are shed with
    /// [`ServiceError::Overloaded`]. Clamped to ≥ 1. Default: twice the
    /// available parallelism (some headroom for solves blocked on a
    /// shared group state).
    pub max_in_flight: usize,
    /// Byte budget of the solved-distribution LRU, accounted via
    /// [`LifetimeDistribution::size_in_bytes`]. `0` disables result
    /// caching (single-flight dedup still applies). Default: 32 MiB.
    pub cache_capacity_bytes: usize,
    /// Entry budget of the warm group-state LRU (templates, curve
    /// caches, worker pools). `0` disables warm-state reuse — every
    /// solve assembles its own state. Default: 16.
    pub warm_capacity: usize,
    /// Per-solve thread budget handed to the backends (see
    /// [`SolverOptions`]).
    pub options: SolverOptions,
    /// Consecutive solve failures per `(backend, fingerprint)` that trip
    /// its circuit breaker into the open state. `0` disables the
    /// breaker. Default: 5.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds before half-opening for a single
    /// probe request. Default: 5 s.
    pub breaker_cooldown: Duration,
    /// Wall-clock grace granted to the fast-Monte-Carlo degradation tier
    /// after the request's own deadline expired (the fallback must not
    /// itself run unbounded). Default: 250 ms.
    pub degraded_grace: Duration,
    /// Replications of the fast-Monte-Carlo degradation tier. Default:
    /// 256 (Wilson 95 % half-width ≈ 0.06 at worst).
    pub degraded_runs: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig {
            max_in_flight: 2 * cores,
            cache_capacity_bytes: 32 << 20,
            warm_capacity: 16,
            options: SolverOptions::default(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(5),
            degraded_grace: Duration::from_millis(250),
            degraded_runs: 256,
        }
    }
}

impl ServiceConfig {
    /// Replaces the admission bound.
    #[must_use]
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Replaces the result-cache byte budget.
    #[must_use]
    pub fn with_cache_capacity_bytes(mut self, bytes: usize) -> Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Replaces the warm-state entry budget.
    #[must_use]
    pub fn with_warm_capacity(mut self, entries: usize) -> Self {
        self.warm_capacity = entries;
        self
    }

    /// Replaces the per-solve thread budget.
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the circuit-breaker policy (`threshold == 0` disables).
    #[must_use]
    pub fn with_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Replaces the degraded-fallback policy (grace budget and
    /// replication count of the fast-Monte-Carlo tier).
    #[must_use]
    pub fn with_degraded_fallback(mut self, grace: Duration, runs: usize) -> Self {
        self.degraded_grace = grace;
        self.degraded_runs = runs;
        self
    }
}

/// A point-in-time snapshot of the service's counters and occupancy
/// ([`LifetimeService::stats`]). Counters are cumulative since
/// construction and survive [`LifetimeService::purge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries answered from the result cache (no solve, no wait).
    pub hits: u64,
    /// Queries that started a fresh solve.
    pub misses: u64,
    /// Queries that joined an in-flight identical solve (single-flight).
    pub joined: u64,
    /// Queries shed with [`ServiceError::Overloaded`].
    pub shed: u64,
    /// Result-cache entries evicted to make room (LRU order).
    pub evictions: u64,
    /// Solves that found a resident warm group state for their
    /// `(backend, fingerprint)`.
    pub warm_hits: u64,
    /// Solves that had to create (or could not use) a warm group state.
    pub warm_misses: u64,
    /// Warm group states evicted to make room (LRU order).
    pub warm_evictions: u64,
    /// Queries whose scenario has no canonical byte key
    /// ([`Scenario::canonical_bytes`] failed): admitted and solved, but
    /// never cached, deduplicated or joined.
    pub uncacheable: u64,
    /// Solves that failed in the backend ([`ServiceError::Solve`];
    /// errors are never cached). Deadline expiries and breaker sheds are
    /// not backend failures: they count in `deadline_expired` and
    /// `breaker_open` instead.
    pub errors: u64,
    /// Requests whose deadline expired before an exact answer arrived
    /// (whether or not a degraded answer was then served).
    pub deadline_expired: u64,
    /// Requests answered by a degradation tier instead of an exact
    /// solve.
    pub degraded_served: u64,
    /// Transient-failure retries performed by the bounded-backoff loop.
    pub retries: u64,
    /// Queries shed by an open circuit breaker.
    pub breaker_open: u64,
    /// Snapshot entries revived into the result cache by
    /// [`LifetimeService::load_snapshot`].
    pub snapshot_loaded: u64,
    /// Snapshot files or entries rejected on load (corruption, version
    /// skew, failed re-validation). Disjoint from `snapshot_loaded`:
    /// every snapshot entry counts in exactly one of the two.
    pub snapshot_rejected: u64,
    /// Snapshots written successfully by
    /// [`LifetimeService::save_snapshot`].
    pub snapshot_written: u64,
    /// Solves running right now.
    pub in_flight: usize,
    /// Result-cache entries currently resident.
    pub cached_entries: usize,
    /// Result-cache bytes currently resident.
    pub result_cache_bytes: usize,
    /// Warm group states currently resident.
    pub warm_entries: usize,
}

impl ServiceStats {
    /// Fraction of admitted queries served without starting a solve:
    /// `(hits + joined) / (hits + joined + misses + uncacheable)`.
    /// `0` when nothing was admitted yet.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.joined;
        let admitted = served + self.misses + self.uncacheable;
        if admitted == 0 {
            0.0
        } else {
            served as f64 / admitted as f64
        }
    }
}

/// An in-flight solve other requests can join: the first request for a
/// key publishes its outcome here and wakes every joiner.
struct Flight {
    done: Mutex<Option<Result<LifetimeDistribution, ServiceError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the flight completes, or until `deadline` (when one
    /// is set). `None` means the deadline passed first — the flight
    /// itself keeps running and completes normally for other waiters.
    fn wait_until(
        &self,
        deadline: Option<Instant>,
    ) -> Option<Result<LifetimeDistribution, ServiceError>> {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = done.as_ref() {
                return Some(result.clone());
            }
            match deadline {
                None => done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    done = self
                        .cv
                        .wait_timeout(done, d - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    fn complete(&self, result: Result<LifetimeDistribution, ServiceError>) {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        self.cv.notify_all();
    }
}

/// One resident result-cache entry.
struct CacheEntry {
    dist: LifetimeDistribution,
    bytes: usize,
    last_used: u64,
    /// Hash of the scenario's Δ-erased canonical bytes: entries sharing
    /// it form one structural family (identical workload, battery, grid
    /// and simulation settings; only the discretisation step differs) —
    /// the lookup key of the cached-family degradation tier.
    family: Option<u64>,
}

/// One resident warm group state. The `Arc<Mutex<…>>` is the live-group
/// handle: every same-fingerprint solve locks it for the duration of its
/// member solve, which serialises the group exactly like a batch plan
/// group while leaving other groups fully concurrent. Evicting the entry
/// only unlists it — an in-progress solve keeps its state alive through
/// the `Arc` and finishes normally.
struct WarmEntry {
    state: Arc<Mutex<Box<dyn GroupState>>>,
    last_used: u64,
}

/// Circuit-breaker state machine for one `(backend, fingerprint)`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerState {
    /// Healthy: solves pass through; consecutive failures are counted.
    Closed,
    /// Tripped: queries shed fast with [`ServiceError::CircuitOpen`]
    /// until `until`, when the next query becomes the half-open probe.
    Open {
        /// End of the cooldown.
        until: Instant,
    },
    /// One probe solve is in progress; everything else sheds. The
    /// probe's outcome closes (success) or re-opens (failure) the
    /// breaker.
    HalfOpen,
}

/// Per-`(backend, fingerprint)` failure ledger behind the service lock.
struct Breaker {
    consecutive_failures: u32,
    state: BreakerState,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            consecutive_failures: 0,
            state: BreakerState::Closed,
        }
    }
}

/// How one solve attempt ended, as the breaker sees it.
enum BreakerOutcome {
    /// The backend answered: reset the failure count, close the breaker.
    Success,
    /// The backend failed (error or panic): count it; trip at the
    /// threshold, re-open from half-open.
    Failure,
    /// The *request's* deadline expired mid-solve — says nothing about
    /// backend health. A half-open probe cut short re-opens with no
    /// cooldown so the next request can probe immediately.
    Neutral,
}

/// Everything behind the service mutex. The lock is held only for map
/// lookups and counter bumps — never across a solve.
#[derive(Default)]
struct Inner {
    cache: HashMap<Vec<u8>, CacheEntry>,
    cache_bytes: usize,
    warm: HashMap<(usize, u64), WarmEntry>,
    flights: HashMap<Vec<u8>, Arc<Flight>>,
    breakers: HashMap<(usize, u64), Breaker>,
    in_flight: usize,
    /// Monotone LRU clock: bumped on every cache/warm touch.
    tick: u64,
    hits: u64,
    misses: u64,
    joined: u64,
    shed: u64,
    evictions: u64,
    warm_hits: u64,
    warm_misses: u64,
    warm_evictions: u64,
    uncacheable: u64,
    errors: u64,
    deadline_expired: u64,
    degraded_served: u64,
    retries: u64,
    breaker_open: u64,
    snapshot_loaded: u64,
    snapshot_rejected: u64,
    snapshot_written: u64,
}

impl Inner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Inserts a solved distribution, evicting least-recently-used
    /// entries until it fits. Oversized results (bigger than the whole
    /// budget) are simply not cached.
    fn insert_cached(
        &mut self,
        key: Vec<u8>,
        dist: LifetimeDistribution,
        family: Option<u64>,
        budget: usize,
    ) {
        let bytes = dist.size_in_bytes();
        if bytes > budget {
            return;
        }
        while self.cache_bytes + bytes > budget {
            // DETERMINISM-OK: the minimum is taken over the total key
            // (last_used, canonical bytes) — ticks are already unique,
            // and the tie-break pins the victim even if they were not,
            // so hash order cannot pick it.
            let Some(victim) = self
                .cache
                .iter()
                .min_by_key(|(k, e)| (e.last_used, k.as_slice()))
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = self.cache.remove(&victim) {
                self.cache_bytes -= evicted.bytes;
                self.evictions += 1;
            }
        }
        let last_used = self.next_tick();
        self.cache_bytes += bytes;
        self.cache.insert(
            key,
            CacheEntry {
                dist,
                bytes,
                last_used,
                family,
            },
        );
    }
}

/// Hash of the scenario's Δ-erased canonical bytes — the structural
/// family key of the cached-family degradation tier. Two scenarios with
/// equal family keys differ at most in name and discretisation step.
fn family_key(scenario: &Scenario) -> Option<u64> {
    let erased = scenario.with_delta(Charge::from_coulombs(1.0));
    let bytes = erased.canonical_bytes().ok()?;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    bytes.hash(&mut h);
    Some(h.finish())
}

/// The resident query service; see the module docs for the lifecycle.
///
/// The service is `Sync`: share one instance (e.g. behind an `Arc`)
/// between all request threads.
pub struct LifetimeService {
    registry: SolverRegistry,
    config: ServiceConfig,
    inner: Mutex<Inner>,
}

// One `LifetimeService` is shared by every request thread.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<LifetimeService>();
};

/// What the admission lock decided for one keyed query.
enum Admission {
    Hit(LifetimeDistribution),
    Join(Arc<Flight>),
    Solve(Arc<Flight>),
}

impl LifetimeService {
    /// A service over `registry` with the default [`ServiceConfig`].
    pub fn new(registry: SolverRegistry) -> Self {
        LifetimeService::with_config(registry, ServiceConfig::default())
    }

    /// A service over `registry` with explicit sizing.
    pub fn with_config(registry: SolverRegistry, config: ServiceConfig) -> Self {
        LifetimeService {
            registry,
            config,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The service's sizing knobs.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The registry queries are routed through.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking solver thread cannot corrupt the maps (the lock is
        // never held across backend code), so poisoning is not fatal.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Answers one query: from the result cache when the scenario's
    /// canonical bytes are resident, by joining an identical in-flight
    /// solve, or by solving through the live group for its
    /// `(backend, fingerprint)` — whichever is cheapest. Blocks until
    /// the answer (or the flight it joined) is ready. Equivalent to
    /// [`query_with`](LifetimeService::query_with) under the default
    /// [`QueryOptions`] (no deadline, exact answers only, no retry).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the query would start a solve
    /// beyond the admission bound (nothing was computed);
    /// [`ServiceError::CircuitOpen`] when the backend's breaker is
    /// shedding; [`ServiceError::Solve`] for backend-selection and solve
    /// failures (shared verbatim with every joined request; never
    /// cached).
    pub fn query(&self, scenario: &Scenario) -> Result<LifetimeDistribution, ServiceError> {
        self.query_with(scenario, &QueryOptions::default())
            .map(Answer::into_distribution)
    }

    /// [`query`](LifetimeService::query) with per-request
    /// quality-of-service knobs: a wall-clock deadline (cancelling the
    /// exact solve cooperatively at iteration granularity), graceful
    /// degradation on expiry, and bounded-backoff retry of transient
    /// failures. The request's deadline instant is fixed on entry —
    /// retries and fallbacks spend the same budget, never extend it.
    ///
    /// # Errors
    ///
    /// As for [`query`](LifetimeService::query), plus
    /// [`ServiceError::DeadlineExceeded`] when the deadline expired and
    /// no degraded answer was allowed or available.
    pub fn query_with(
        &self,
        scenario: &Scenario,
        opts: &QueryOptions,
    ) -> Result<Answer, ServiceError> {
        let deadline = opts.deadline.map(|d| Instant::now() + d);
        let Ok(key) = scenario.canonical_bytes() else {
            return self.query_uncacheable(scenario, opts, deadline);
        };
        let admission = {
            let mut inner = self.lock();
            if inner.cache.contains_key(&key) {
                let tick = inner.next_tick();
                inner.hits += 1;
                // PANIC-OK: the key was checked resident two lines up
                // and the same lock guard has been held throughout.
                let entry = inner.cache.get_mut(&key).expect("checked key");
                entry.last_used = tick;
                Admission::Hit(entry.dist.clone())
            } else if let Some(flight) = inner.flights.get(&key).map(Arc::clone) {
                inner.joined += 1;
                Admission::Join(flight)
            } else {
                let limit = self.config.max_in_flight.max(1);
                if inner.in_flight >= limit {
                    inner.shed += 1;
                    return Err(ServiceError::Overloaded {
                        in_flight: inner.in_flight,
                        limit,
                    });
                }
                inner.in_flight += 1;
                inner.misses += 1;
                let flight = Arc::new(Flight::new());
                inner.flights.insert(key.clone(), Arc::clone(&flight));
                Admission::Solve(flight)
            }
        };
        let outcome = match admission {
            // A cache hit is exact and instant: always serve it, even
            // past the deadline.
            Admission::Hit(dist) => return Ok(Answer::Exact(dist)),
            Admission::Join(flight) => match flight.wait_until(deadline) {
                Some(result) => result,
                // The joined flight outlived our deadline; it keeps
                // running for its owner and other joiners.
                None => Err(ServiceError::DeadlineExceeded { completed: 0 }),
            },
            Admission::Solve(flight) => self.run_flight(scenario, key, &flight, opts, deadline),
        };
        match outcome {
            Ok(dist) => Ok(Answer::Exact(dist)),
            Err(ServiceError::DeadlineExceeded { completed }) => {
                self.handle_deadline(scenario, opts, completed)
            }
            Err(e) => Err(e),
        }
    }

    /// The owner path of a flight: solve, publish, cache. A guard keeps
    /// the bookkeeping (and the joiners) correct even if the backend
    /// panics.
    fn run_flight(
        &self,
        scenario: &Scenario,
        key: Vec<u8>,
        flight: &Arc<Flight>,
        opts: &QueryOptions,
        deadline: Option<Instant>,
    ) -> Result<LifetimeDistribution, ServiceError> {
        struct FlightGuard<'a> {
            service: &'a LifetimeService,
            key: Vec<u8>,
            flight: &'a Arc<Flight>,
            done: bool,
        }
        impl Drop for FlightGuard<'_> {
            fn drop(&mut self) {
                if self.done {
                    return;
                }
                // The solve unwound: unregister the flight and wake the
                // joiners with an error instead of leaving them parked
                // forever. The panic keeps propagating to the caller.
                let mut inner = self.service.lock();
                inner.flights.remove(&self.key);
                inner.in_flight -= 1;
                inner.errors += 1;
                drop(inner);
                self.flight
                    .complete(Err(ServiceError::Solve(KibamRmError::InvalidWorkload(
                        "solver panicked during a service query".into(),
                    ))));
            }
        }

        let mut guard = FlightGuard {
            service: self,
            key,
            flight,
            done: false,
        };
        let result = self.solve_with_policy(scenario, opts, deadline);
        guard.done = true;
        let mut inner = self.lock();
        inner.flights.remove(&guard.key);
        inner.in_flight -= 1;
        match &result {
            Ok(dist) => {
                let key = std::mem::take(&mut guard.key);
                inner.insert_cached(
                    key,
                    dist.clone(),
                    family_key(scenario),
                    self.config.cache_capacity_bytes,
                );
            }
            // Only backend failures count as errors: deadline expiries
            // and breaker sheds have their own ledger entries.
            Err(ServiceError::Solve(_)) => inner.errors += 1,
            Err(_) => {}
        }
        drop(inner);
        flight.complete(result.clone());
        result
    }

    /// A scenario without a canonical key: admitted (and counted against
    /// the in-flight budget) but never cached, deduplicated or joined.
    fn query_uncacheable(
        &self,
        scenario: &Scenario,
        opts: &QueryOptions,
        deadline: Option<Instant>,
    ) -> Result<Answer, ServiceError> {
        {
            let mut inner = self.lock();
            let limit = self.config.max_in_flight.max(1);
            if inner.in_flight >= limit {
                inner.shed += 1;
                return Err(ServiceError::Overloaded {
                    in_flight: inner.in_flight,
                    limit,
                });
            }
            inner.in_flight += 1;
            inner.uncacheable += 1;
        }
        struct InFlightGuard<'a>(&'a LifetimeService);
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                self.0.lock().in_flight -= 1;
            }
        }
        let result = {
            let _guard = InFlightGuard(self);
            self.solve_with_policy(scenario, opts, deadline)
        };
        match result {
            Ok(dist) => Ok(Answer::Exact(dist)),
            Err(e) => {
                if matches!(e, ServiceError::Solve(_)) {
                    self.lock().errors += 1;
                }
                match e {
                    ServiceError::DeadlineExceeded { completed } => {
                        self.handle_deadline(scenario, opts, completed)
                    }
                    other => Err(other),
                }
            }
        }
    }

    /// The retry loop around one request's solve attempts: transient
    /// failures back off exponentially (bounded, and never past the
    /// request's deadline) and re-attempt up to the policy's budget;
    /// everything else — success, permanent errors, deadline expiry,
    /// open breakers — returns immediately.
    fn solve_with_policy(
        &self,
        scenario: &Scenario,
        opts: &QueryOptions,
        deadline: Option<Instant>,
    ) -> Result<LifetimeDistribution, ServiceError> {
        let budget = match deadline {
            Some(d) => Budget::with_deadline_at(d),
            None => Budget::unlimited(),
        };
        let mut attempt = 0u32;
        loop {
            let result = self.solve_attempt(scenario, &budget);
            let transient =
                matches!(&result, Err(ServiceError::Solve(e)) if transient_solve_error(e));
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            if !transient || attempt >= opts.retry.max_retries || expired {
                return result;
            }
            attempt += 1;
            self.lock().retries += 1;
            let mut backoff = opts.retry.backoff_for(attempt);
            if let Some(d) = deadline {
                backoff = backoff.min(d.saturating_duration_since(Instant::now()));
            }
            std::thread::sleep(backoff);
        }
    }

    /// One solve through the live group for the scenario's
    /// `(backend, fingerprint)`: check the group's circuit breaker, lock
    /// its warm state (creating or resurrecting it as needed) and run
    /// the same grouped member solve a batch sweep would — under the
    /// request's cooperative budget. Backends without a fingerprint or
    /// warm state solve independently.
    ///
    /// Requests arrive one at a time, so this path solves members
    /// serially against the warm state; when a whole same-fingerprint
    /// family is presented *together* (the sweep planner's
    /// `solve_group`), the windowed banded members are additionally
    /// batched into a column-panel SpMM that reads each matrix diagonal
    /// once for the whole family — see DESIGN.md §13.
    fn solve_attempt(
        &self,
        scenario: &Scenario,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, ServiceError> {
        let index = self.registry.auto_index(scenario)?;
        let solver = self.registry.solver_at(index);
        let fingerprint = solver.sweep_fingerprint(scenario);
        let breaker_key = (index, fingerprint.unwrap_or(0));
        self.breaker_admit(breaker_key, solver.name())?;

        // Records the attempt's outcome even if the backend panics (a
        // panic counts as a failure): the drop path runs during unwind.
        struct BreakerGuard<'a> {
            service: &'a LifetimeService,
            key: (usize, u64),
            outcome: Option<BreakerOutcome>,
        }
        impl Drop for BreakerGuard<'_> {
            fn drop(&mut self) {
                let outcome = self.outcome.take().unwrap_or(BreakerOutcome::Failure);
                self.service.breaker_record(self.key, outcome);
            }
        }
        let mut guard = BreakerGuard {
            service: self,
            key: breaker_key,
            outcome: None,
        };

        let options = self.config.options;
        let slot = fingerprint
            .and_then(|fp| self.warm_slot(index, fp, |opts| solver.new_group_state(opts)));
        let result = match slot {
            Some(slot) => {
                // Serialises same-group solves, exactly like a batch
                // group's member order. A poisoned state (an earlier
                // member panicked mid-solve) is replaced wholesale: a
                // half-updated cache could violate bit-identity.
                let mut state = match slot.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => {
                        let mut guard = poisoned.into_inner();
                        if let Some(fresh) = solver.new_group_state(&options) {
                            *guard = fresh;
                        }
                        guard
                    }
                };
                solver.solve_in_group_budgeted(scenario, &options, state.as_mut(), budget)
            }
            None => solver.solve_with_budget(scenario, &options, budget),
        };
        guard.outcome = Some(match &result {
            Ok(_) => BreakerOutcome::Success,
            Err(KibamRmError::DeadlineExceeded { .. }) => BreakerOutcome::Neutral,
            Err(_) => BreakerOutcome::Failure,
        });
        result.map_err(ServiceError::from)
    }

    /// Breaker admission for one attempt: pass when closed, become the
    /// probe when the cooldown has elapsed, shed fast otherwise.
    fn breaker_admit(&self, key: (usize, u64), backend: &'static str) -> Result<(), ServiceError> {
        if self.config.breaker_threshold == 0 {
            return Ok(());
        }
        let mut inner = self.lock();
        let breaker = inner.breakers.entry(key).or_default();
        match breaker.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open { until } => {
                if Instant::now() >= until {
                    // This request becomes the half-open probe.
                    breaker.state = BreakerState::HalfOpen;
                    Ok(())
                } else {
                    inner.breaker_open += 1;
                    Err(ServiceError::CircuitOpen { backend })
                }
            }
            BreakerState::HalfOpen => {
                // A probe is already in progress; shed until it reports.
                inner.breaker_open += 1;
                Err(ServiceError::CircuitOpen { backend })
            }
        }
    }

    /// Folds one attempt's outcome into the breaker state machine.
    fn breaker_record(&self, key: (usize, u64), outcome: BreakerOutcome) {
        if self.config.breaker_threshold == 0 {
            return;
        }
        let mut inner = self.lock();
        let breaker = inner.breakers.entry(key).or_default();
        match outcome {
            BreakerOutcome::Success => {
                breaker.consecutive_failures = 0;
                breaker.state = BreakerState::Closed;
            }
            BreakerOutcome::Failure => {
                breaker.consecutive_failures = breaker.consecutive_failures.saturating_add(1);
                let tripped = breaker.consecutive_failures >= self.config.breaker_threshold;
                if tripped || breaker.state == BreakerState::HalfOpen {
                    breaker.state = BreakerState::Open {
                        until: Instant::now() + self.config.breaker_cooldown,
                    };
                }
            }
            BreakerOutcome::Neutral => {
                // A deadline expiry says nothing about backend health;
                // an interrupted probe re-opens with no cooldown so the
                // next request probes immediately.
                if breaker.state == BreakerState::HalfOpen {
                    breaker.state = BreakerState::Open {
                        until: Instant::now(),
                    };
                }
            }
        }
    }

    /// A request whose deadline expired before an exact answer: record
    /// it, then serve a degraded answer when the request allows one.
    fn handle_deadline(
        &self,
        scenario: &Scenario,
        opts: &QueryOptions,
        completed: usize,
    ) -> Result<Answer, ServiceError> {
        self.lock().deadline_expired += 1;
        if !opts.degraded_ok {
            return Err(ServiceError::DeadlineExceeded { completed });
        }
        self.degrade(scenario, completed)
    }

    /// The degradation ladder: a resident same-family curve first (free),
    /// a fast Monte Carlo estimate under the grace budget second. Both
    /// carry explicit error bounds; neither is ever cached. When every
    /// tier fails the original deadline error stands.
    fn degrade(&self, scenario: &Scenario, completed: usize) -> Result<Answer, ServiceError> {
        if let Some((dist, bound, delta)) = self.family_fallback(scenario) {
            self.lock().degraded_served += 1;
            return Ok(Answer::Degraded {
                dist,
                bound,
                source: DegradedSource::CachedFamily { delta },
            });
        }
        match self.fast_simulation(scenario) {
            Ok((dist, bound, runs)) => {
                self.lock().degraded_served += 1;
                Ok(Answer::Degraded {
                    dist,
                    bound,
                    source: DegradedSource::FastSimulation { runs },
                })
            }
            Err(_) => Err(ServiceError::DeadlineExceeded { completed }),
        }
    }

    /// Tier 1: the most recently used resident curve of the scenario's
    /// structural family (same workload, battery, grid and simulation
    /// settings; different Δ). Returns the curve, its error bound and
    /// the Δ it was solved at.
    fn family_fallback(
        &self,
        scenario: &Scenario,
    ) -> Option<(LifetimeDistribution, f64, Option<Charge>)> {
        let family = family_key(scenario)?;
        let capacity = scenario.capacity();
        let mut inner = self.lock();
        let tick = inner.next_tick();
        // DETERMINISM-OK: the maximum is taken over the total key
        // (last_used, canonical bytes) — ticks are already unique, and
        // the tie-break pins the chosen family curve even if they were
        // not, so hash order cannot pick it.
        let entry = inner
            .cache
            .iter_mut()
            .filter(|(_, e)| e.family == Some(family))
            .max_by_key(|(k, e)| (e.last_used, k.as_slice()))
            .map(|(_, e)| e)?;
        entry.last_used = tick;
        let dist = entry.dist.clone();
        let diag = *dist.diagnostics();
        let (bound, delta) = match (diag.half_width, diag.delta) {
            // A Monte Carlo family curve: its Wilson half-width is the bound.
            (Some(hw), d) => (hw, d),
            // A discretisation curve at a different Δ: one level of
            // charge as a fraction of capacity — the resolution scale of
            // the §5 approximation error.
            (None, Some(d)) => ((d.as_coulombs() / capacity.as_coulombs()).abs(), Some(d)),
            // A Δ-independent exact backend: the variant is the answer.
            (None, None) => (0.0, None),
        };
        Some((dist, bound, delta))
    }

    /// Tier 2: a fast Monte Carlo estimate with
    /// [`ServiceConfig::degraded_runs`] replications under the
    /// [`ServiceConfig::degraded_grace`] budget, bounded by its Wilson
    /// 95 % half-width. Bypasses the registry (and any chaos wrapping of
    /// it): the fallback must stay dependable when backends are not.
    fn fast_simulation(
        &self,
        scenario: &Scenario,
    ) -> Result<(LifetimeDistribution, f64, usize), ServiceError> {
        let runs = self.config.degraded_runs.max(1);
        let fallback = scenario.with_simulation(runs, scenario.sim_seed());
        let budget = Budget::with_deadline(self.config.degraded_grace);
        let dist =
            SimulationSolver::new().solve_with_budget(&fallback, &self.config.options, &budget)?;
        let diag = *dist.diagnostics();
        let bound = diag.half_width.unwrap_or(1.0);
        let actual_runs = diag.runs.unwrap_or(runs);
        Ok((dist, bound, actual_runs))
    }

    /// The live-group handle for `(backend index, fingerprint)`:
    /// resident state when there is one, a freshly created (and
    /// LRU-inserted) state otherwise. `None` when the backend has no
    /// warm state or warm caching is disabled.
    fn warm_slot(
        &self,
        index: usize,
        fingerprint: u64,
        make: impl FnOnce(&SolverOptions) -> Option<Box<dyn GroupState>>,
    ) -> Option<Arc<Mutex<Box<dyn GroupState>>>> {
        if self.config.warm_capacity == 0 {
            return None;
        }
        let mut inner = self.lock();
        let tick = inner.next_tick();
        if let Some(entry) = inner.warm.get_mut(&(index, fingerprint)) {
            entry.last_used = tick;
            let state = Arc::clone(&entry.state);
            inner.warm_hits += 1;
            return Some(state);
        }
        inner.warm_misses += 1;
        // Create outside the lock? State construction is cheap for the
        // current backends (pool workers spawn lazily on first use for
        // small thread counts) — and creating inside the lock guarantees
        // at most one state per group ever exists, which is the whole
        // point of a live group.
        let state = Arc::new(Mutex::new(make(&self.config.options)?));
        while inner.warm.len() >= self.config.warm_capacity {
            // DETERMINISM-OK: the minimum is taken over the total key
            // (last_used, group key) — ticks are already unique, and
            // the tie-break pins the victim even if they were not, so
            // hash order cannot pick it.
            let Some(victim) = inner
                .warm
                .iter()
                .min_by_key(|(&k, e)| (e.last_used, k))
                .map(|(&k, _)| k)
            else {
                break;
            };
            inner.warm.remove(&victim);
            inner.warm_evictions += 1;
        }
        inner.warm.insert(
            (index, fingerprint),
            WarmEntry {
                state: Arc::clone(&state),
                last_used: tick,
            },
        );
        Some(state)
    }

    /// A snapshot of the counters and current occupancy.
    pub fn stats(&self) -> ServiceStats {
        let inner = self.lock();
        ServiceStats {
            hits: inner.hits,
            misses: inner.misses,
            joined: inner.joined,
            shed: inner.shed,
            evictions: inner.evictions,
            warm_hits: inner.warm_hits,
            warm_misses: inner.warm_misses,
            warm_evictions: inner.warm_evictions,
            uncacheable: inner.uncacheable,
            errors: inner.errors,
            deadline_expired: inner.deadline_expired,
            degraded_served: inner.degraded_served,
            retries: inner.retries,
            breaker_open: inner.breaker_open,
            snapshot_loaded: inner.snapshot_loaded,
            snapshot_rejected: inner.snapshot_rejected,
            snapshot_written: inner.snapshot_written,
            in_flight: inner.in_flight,
            cached_entries: inner.cache.len(),
            result_cache_bytes: inner.cache_bytes,
            warm_entries: inner.warm.len(),
        }
    }

    /// Drops every cached distribution and warm group state (counters
    /// and in-flight solves are untouched; dropped entries do not count
    /// as evictions). In-progress solves keep their group state alive
    /// through their own handles and finish normally.
    pub fn purge(&self) {
        let mut inner = self.lock();
        inner.cache.clear();
        inner.cache_bytes = 0;
        inner.warm.clear();
    }

    /// Writes the current result cache to `path` as a crash-safe
    /// snapshot (see [`crate::snapshot`] for the format and the atomic
    /// write protocol). Entries are written least-recently-used first,
    /// so a later [`load_snapshot`](LifetimeService::load_snapshot)
    /// reproduces the recency order. Bumps
    /// [`ServiceStats::snapshot_written`] on success.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be written; the
    /// target is never left torn (the write goes to a temporary
    /// sibling first).
    pub fn save_snapshot(&self, path: &Path) -> Result<SnapshotWriteReport, SnapshotError> {
        let entries: Vec<SnapshotEntry> = {
            let inner = self.lock();
            // DETERMINISM-OK: the entries leave the hash map in
            // arbitrary order but are immediately sorted by the total
            // key (last_used, canonical bytes) — ticks are already
            // unique, and the tie-break makes the snapshot bytes a
            // pure function of the cache contents either way.
            let mut ordered: Vec<(&Vec<u8>, &CacheEntry)> = inner.cache.iter().collect();
            ordered.sort_by_key(|&(k, e)| (e.last_used, k.as_slice()));
            ordered
                .into_iter()
                .map(|(key, e)| SnapshotEntry {
                    scenario: key.clone(),
                    method: e.dist.method().to_string(),
                    diagnostics: *e.dist.diagnostics(),
                    points: e
                        .dist
                        .points()
                        .iter()
                        .map(|&(t, p)| (t.as_seconds(), p))
                        .collect(),
                })
                .collect()
        };
        let bytes = snapshot::encode(&entries)?;
        snapshot::write_atomic(path, &bytes)?;
        self.lock().snapshot_written += 1;
        Ok(SnapshotWriteReport {
            entries: entries.len(),
            bytes: bytes.len(),
        })
    }

    /// Revives a snapshot written by
    /// [`save_snapshot`](LifetimeService::save_snapshot) into the
    /// result cache. Never fails and never panics, whatever the file
    /// contains:
    ///
    /// * a missing file is a clean cold start (no counters move);
    /// * a file that fails structural validation (bad magic,
    ///   truncation, checksum mismatch, version skew) is rejected
    ///   wholesale — [`ServiceStats::snapshot_rejected`] counts one;
    /// * each surviving entry is re-validated from scratch: its
    ///   scenario text is re-parsed, the cache key re-derived through
    ///   [`Scenario::canonical_bytes`], the backend name interned
    ///   against this service's registry, the curve re-checked by
    ///   [`LifetimeDistribution::new`], and the stored grid compared
    ///   bit-for-bit against the scenario's own query grid. Entries
    ///   that pass count in [`ServiceStats::snapshot_loaded`];
    ///   entries that fail (or whose key is already resident, or that
    ///   exceed the cache budget) count in `snapshot_rejected`.
    ///
    /// The revived bits are exactly the bits that were cached when the
    /// snapshot was written, so the service's bit-identity invariant
    /// holds across restarts.
    pub fn load_snapshot(&self, path: &Path) -> SnapshotLoadReport {
        let mut report = SnapshotLoadReport::default();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return report,
            Err(e) => {
                report.rejected = 1;
                report.error = Some(SnapshotError::Io(e));
                self.lock().snapshot_rejected += 1;
                return report;
            }
        };
        let entries = match snapshot::decode(&bytes) {
            Ok(entries) => entries,
            Err(e) => {
                report.rejected = 1;
                report.error = Some(e);
                self.lock().snapshot_rejected += 1;
                return report;
            }
        };
        for entry in entries {
            if self.revive(entry) {
                report.loaded += 1;
            } else {
                report.rejected += 1;
            }
        }
        let mut inner = self.lock();
        inner.snapshot_loaded += report.loaded as u64;
        inner.snapshot_rejected += report.rejected as u64;
        report
    }

    /// Re-validates one snapshot entry end to end and inserts it into
    /// the cache. Returns `false` (entry dropped, nothing cached) on
    /// any doubt — revival must never produce an answer a fresh solve
    /// would not.
    fn revive(&self, entry: SnapshotEntry) -> bool {
        let Ok(text) = std::str::from_utf8(&entry.scenario) else {
            return false;
        };
        let Ok(scenario) = Scenario::from_config_str(text) else {
            return false;
        };
        let Ok(key) = scenario.canonical_bytes() else {
            return false;
        };
        // Intern the backend name against this build's registry: a
        // name nothing registered cannot have produced the curve here
        // (and `LifetimeDistribution` wants the registry's `'static`
        // string, not a leaked copy of snapshot bytes).
        let Some(method) = self.registry.find(&entry.method).map(|s| s.name()) else {
            return false;
        };
        // The stored samples must sit exactly on the scenario's own
        // query grid — same length, same time bits.
        let times = scenario.times();
        if entry.points.len() != times.len()
            || entry
                .points
                .iter()
                .zip(times)
                .any(|(&(t, _), grid)| t.to_bits() != grid.as_seconds().to_bits())
        {
            return false;
        }
        let points: Vec<(Time, f64)> = entry
            .points
            .iter()
            .map(|&(t, p)| (Time::from_seconds(t), p))
            .collect();
        let Ok(dist) = LifetimeDistribution::new(method, points, entry.diagnostics) else {
            return false;
        };
        if dist.size_in_bytes() > self.config.cache_capacity_bytes {
            return false;
        }
        let family = family_key(&scenario);
        let mut inner = self.lock();
        // A resident key keeps its live entry: replacing it would
        // double-charge the byte ledger for nothing.
        if inner.cache.contains_key(&key) {
            return false;
        }
        inner.insert_cached(key, dist, family, self.config.cache_capacity_bytes);
        true
    }
}

impl fmt::Debug for LifetimeService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LifetimeService")
            .field("registry", &self.registry)
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Capability, LifetimeSolver};
    use crate::workload::Workload;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use units::{Charge, Current, Frequency, Time};

    /// A cheap linear scenario (Sericola backend, no warm state).
    fn linear(seed: u64) -> Scenario {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        Scenario::builder()
            .name("svc-linear")
            .workload(w)
            .capacity(Charge::from_amp_seconds(72.0))
            .linear()
            .times(
                (1..=8)
                    .map(|i| Time::from_seconds(i as f64 * 20.0))
                    .collect(),
            )
            .delta(Charge::from_amp_seconds(0.5))
            .simulation(50, seed)
            .build()
            .unwrap()
    }

    /// A counting backend: exact, instant, records every solve.
    struct Counting {
        solves: Arc<AtomicUsize>,
    }
    impl LifetimeSolver for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn capability(&self, _s: &Scenario) -> Capability {
            Capability::Exact
        }
        fn solve(&self, s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
            self.solves.fetch_add(1, Ordering::SeqCst);
            let points = s
                .times()
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, (i as f64 + 1.0) / (s.times().len() as f64 + 1.0)))
                .collect();
            LifetimeDistribution::new("counting", points, Default::default())
        }
    }

    /// A backend that parks inside solve() until released — the load
    /// generator for shedding and single-flight tests.
    struct Blocking {
        solves: Arc<AtomicUsize>,
        entered: mpsc::Sender<()>,
        release: Arc<(Mutex<bool>, Condvar)>,
    }
    impl Blocking {
        fn release(gate: &Arc<(Mutex<bool>, Condvar)>) {
            let (lock, cv) = &**gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
    }
    impl LifetimeSolver for Blocking {
        fn name(&self) -> &'static str {
            "blocking"
        }
        fn capability(&self, _s: &Scenario) -> Capability {
            Capability::Exact
        }
        fn solve(&self, s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
            self.solves.fetch_add(1, Ordering::SeqCst);
            let _ = self.entered.send(());
            let (lock, cv) = &*self.release;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            let points = s.times().iter().map(|&t| (t, 0.5)).collect();
            LifetimeDistribution::new("blocking", points, Default::default())
        }
    }

    fn counting_service(budget_bytes: usize) -> (LifetimeService, Arc<AtomicUsize>) {
        let solves = Arc::new(AtomicUsize::new(0));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Counting {
            solves: Arc::clone(&solves),
        }));
        let service = LifetimeService::with_config(
            registry,
            ServiceConfig::default().with_cache_capacity_bytes(budget_bytes),
        );
        (service, solves)
    }

    #[test]
    fn cache_hits_share_bits_and_storage() {
        let (service, solves) = counting_service(32 << 20);
        let s = linear(1);
        let a = service.query(&s).unwrap();
        let b = service.query(&s).unwrap();
        assert_eq!(solves.load(Ordering::SeqCst), 1, "second query is a hit");
        assert_eq!(a.points(), b.points());
        // The hit is a shared view, not a copy.
        assert!(std::ptr::eq(a.points().as_ptr(), b.points().as_ptr()));
        // A name-only variant hits too: the canonical key erases names.
        let c = service.query(&s.with_name("other-label")).unwrap();
        assert_eq!(solves.load(Ordering::SeqCst), 1);
        assert_eq!(c.points(), a.points());
        let stats = service.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
        assert_eq!(stats.cached_entries, 1);
        assert_eq!(stats.result_cache_bytes, a.size_in_bytes());
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let probe = {
            let (service, _) = counting_service(usize::MAX);
            service.query(&linear(1)).unwrap().size_in_bytes()
        };
        // Room for exactly two entries.
        let (service, solves) = counting_service(2 * probe);
        let (a, b, c) = (linear(1), linear(2), linear(3));
        service.query(&a).unwrap();
        service.query(&b).unwrap();
        service.query(&a).unwrap(); // touch a: b is now least recent
        service.query(&c).unwrap(); // evicts b
        assert_eq!(service.stats().evictions, 1);
        assert_eq!(service.stats().cached_entries, 2);
        let before = solves.load(Ordering::SeqCst);
        service.query(&a).unwrap(); // still resident
        assert_eq!(solves.load(Ordering::SeqCst), before, "a stayed cached");
        service.query(&b).unwrap(); // evicted: must re-solve
        assert_eq!(solves.load(Ordering::SeqCst), before + 1, "b was evicted");
        // Re-querying b evicted the next LRU victim (c after a's touch…
        // a was touched last, so c goes).
        assert_eq!(service.stats().evictions, 2);
    }

    #[test]
    fn zero_budget_disables_caching_but_not_dedup() {
        let (service, solves) = counting_service(0);
        let s = linear(1);
        service.query(&s).unwrap();
        service.query(&s).unwrap();
        assert_eq!(solves.load(Ordering::SeqCst), 2, "nothing cached");
        let stats = service.stats();
        assert_eq!(stats.cached_entries, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn shed_under_load_is_typed_and_harmless() {
        let solves = Arc::new(AtomicUsize::new(0));
        let (entered_tx, entered_rx) = mpsc::channel();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Blocking {
            solves: Arc::clone(&solves),
            entered: entered_tx,
            release: Arc::clone(&gate),
        }));
        let service = Arc::new(LifetimeService::with_config(
            registry,
            ServiceConfig::default().with_max_in_flight(1),
        ));

        let occupant = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.query(&linear(1)))
        };
        entered_rx.recv().expect("first query reached the backend");
        // The budget is full: a *different* scenario is shed…
        let err = service.query(&linear(2)).expect_err("must shed");
        assert!(matches!(
            err,
            ServiceError::Overloaded {
                in_flight: 1,
                limit: 1
            }
        ));
        assert!(err.to_string().contains("overloaded"));
        Blocking::release(&gate);
        let first = occupant.join().unwrap().expect("occupant succeeds");
        assert_eq!(first.points().len(), 8);
        let stats = service.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(
            solves.load(Ordering::SeqCst),
            1,
            "shed query computed nothing"
        );
        // After the flight drains, the same scenario is admitted again.
        assert!(service.query(&linear(2)).is_ok());
    }

    #[test]
    fn identical_concurrent_queries_join_instead_of_shedding() {
        let solves = Arc::new(AtomicUsize::new(0));
        let (entered_tx, entered_rx) = mpsc::channel();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Blocking {
            solves: Arc::clone(&solves),
            entered: entered_tx,
            release: Arc::clone(&gate),
        }));
        // max_in_flight = 1: joiners must not count against the budget.
        let service = Arc::new(LifetimeService::with_config(
            registry,
            ServiceConfig::default().with_max_in_flight(1),
        ));
        let s = linear(1);
        let owner = {
            let (service, s) = (Arc::clone(&service), s.clone());
            std::thread::spawn(move || service.query(&s))
        };
        entered_rx.recv().expect("owner reached the backend");
        let joiners: Vec<_> = (0..3)
            .map(|_| {
                let (service, s) = (Arc::clone(&service), s.clone());
                std::thread::spawn(move || service.query(&s))
            })
            .collect();
        // Joining is registration, not completion — give the threads a
        // moment to park, then release the one real solve.
        while service.stats().joined < 3 {
            std::thread::yield_now();
        }
        Blocking::release(&gate);
        let reference = owner.join().unwrap().unwrap();
        for j in joiners {
            let d = j.join().unwrap().expect("joiner shares the result");
            assert_eq!(d.points(), reference.points());
        }
        assert_eq!(solves.load(Ordering::SeqCst), 1, "one solve for 4 queries");
        let stats = service.stats();
        assert_eq!((stats.misses, stats.joined, stats.shed), (1, 3, 0));
    }

    #[test]
    fn errors_propagate_to_joiners_and_are_not_cached() {
        struct Failing {
            solves: Arc<AtomicUsize>,
        }
        impl LifetimeSolver for Failing {
            fn name(&self) -> &'static str {
                "failing"
            }
            fn capability(&self, _s: &Scenario) -> Capability {
                Capability::Exact
            }
            fn solve(&self, _s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
                self.solves.fetch_add(1, Ordering::SeqCst);
                Err(KibamRmError::InvalidWorkload("synthetic failure".into()))
            }
        }
        let solves = Arc::new(AtomicUsize::new(0));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Failing {
            solves: Arc::clone(&solves),
        }));
        let service = LifetimeService::new(registry);
        let s = linear(1);
        let err = service.query(&s).expect_err("solve fails");
        assert!(matches!(err, ServiceError::Solve(_)));
        // Errors are not cached: the next query re-solves.
        let _ = service.query(&s).expect_err("still fails");
        assert_eq!(solves.load(Ordering::SeqCst), 2);
        let stats = service.stats();
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.cached_entries, 0);
    }

    #[test]
    fn real_registry_serves_bit_identical_answers_and_reuses_warm_state() {
        // Sequential options keep grouped and independent solves
        // unconditionally bit-identical (see the sweep contract).
        let options = SolverOptions::sequential();
        let registry = SolverRegistry::with_default_backends().with_options(options);
        let service = LifetimeService::with_config(
            SolverRegistry::with_default_backends(),
            ServiceConfig::default().with_options(options),
        );
        let base = Scenario::paper_cell_phone().unwrap();
        let family: Vec<Scenario> = [1.0, 0.5, 0.25]
            .iter()
            .map(|&g| base.with_rate_scale(g).unwrap())
            .collect();
        for s in &family {
            let served = service.query(s).unwrap();
            let fresh = registry.solve(s).unwrap();
            assert_eq!(
                served.points(),
                fresh.points(),
                "service answer differs from a fresh solve for {}",
                s.name()
            );
            // And the cached copy is the same bits again.
            assert_eq!(service.query(s).unwrap().points(), fresh.points());
        }
        let stats = service.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
        // The rescale family shares one live group: first member creates
        // the warm state, the rest find it resident.
        assert_eq!(stats.warm_misses, 1);
        assert_eq!(stats.warm_hits, 2);
        assert_eq!(stats.warm_entries, 1);
    }

    #[test]
    fn warm_state_eviction_and_purge() {
        let options = SolverOptions::sequential();
        let service = LifetimeService::with_config(
            SolverRegistry::with_default_backends(),
            ServiceConfig::default()
                .with_options(options)
                .with_warm_capacity(1),
        );
        let base = Scenario::paper_cell_phone().unwrap();
        let coarse = base.with_delta(Charge::from_milliamp_hours(50.0));
        service.query(&base).unwrap();
        // A different Δ is a different fingerprint: with capacity 1 the
        // first group is evicted.
        service.query(&coarse).unwrap();
        let stats = service.stats();
        assert_eq!(stats.warm_evictions, 1);
        assert_eq!(stats.warm_entries, 1);
        service.purge();
        let stats = service.stats();
        assert_eq!((stats.cached_entries, stats.warm_entries), (0, 0));
        assert_eq!(stats.result_cache_bytes, 0);
        // Counters survive; the next identical query is a miss again.
        assert_eq!(stats.misses, 2);
        service.query(&base).unwrap();
        assert_eq!(service.stats().misses, 3);
    }

    #[test]
    fn unkeyable_scenarios_are_served_uncached() {
        let w = crate::builder::WorkloadBuilder::new()
            .state("has space", Current::from_amps(0.5))
            .build()
            .unwrap();
        let s = Scenario::builder()
            .workload(w)
            .capacity(Charge::from_coulombs(100.0))
            .linear()
            .time_grid(Time::from_seconds(400.0), 4)
            .delta(Charge::from_coulombs(0.5))
            .simulation(20, 1)
            .build()
            .unwrap();
        let service = LifetimeService::with_config(
            SolverRegistry::with_default_backends(),
            ServiceConfig::default().with_options(SolverOptions::sequential()),
        );
        let a = service.query(&s).unwrap();
        let b = service.query(&s).unwrap();
        assert_eq!(a.points(), b.points());
        let stats = service.stats();
        assert_eq!(stats.uncacheable, 2, "served, but never cached");
        assert_eq!(stats.cached_entries, 0);
        assert_eq!(stats.hits + stats.misses, 0);
    }

    #[test]
    fn config_knobs_and_display() {
        let cfg = ServiceConfig::default()
            .with_max_in_flight(3)
            .with_cache_capacity_bytes(1024)
            .with_warm_capacity(2)
            .with_options(SolverOptions::sequential());
        assert_eq!(cfg.max_in_flight, 3);
        assert_eq!(cfg.cache_capacity_bytes, 1024);
        assert_eq!(cfg.warm_capacity, 2);
        let service = LifetimeService::with_config(SolverRegistry::with_default_backends(), cfg);
        assert_eq!(*service.config(), cfg);
        assert!(service.registry().find("sericola").is_some());
        assert!(format!("{service:?}").contains("LifetimeService"));
        let err = ServiceError::Overloaded {
            in_flight: 9,
            limit: 8,
        };
        assert!(err.to_string().contains("9 solves in flight (limit 8)"));
        assert!(std::error::Error::source(&err).is_none());
        let err: ServiceError = KibamRmError::InvalidWorkload("x".into()).into();
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(ServiceStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn expired_deadline_fails_fast_without_solving() {
        let (service, solves) = counting_service(32 << 20);
        let opts = QueryOptions::new().with_deadline(Duration::ZERO);
        let err = service
            .query_with(&linear(1), &opts)
            .expect_err("deadline already expired");
        assert!(matches!(
            err,
            ServiceError::DeadlineExceeded { completed: 0 }
        ));
        assert!(err.to_string().contains("deadline exceeded"));
        assert!(!err.retryable(), "the budget is spent: retrying is futile");
        assert_eq!(
            solves.load(Ordering::SeqCst),
            0,
            "an expired deadline must never run the solve"
        );
        let stats = service.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.degraded_served, 0);
        assert_eq!(stats.in_flight, 0, "no flight leaked");
        // The failure was not cached; a plain query still works.
        assert!(service.query(&linear(1)).is_ok());
    }

    #[test]
    fn deadline_with_degraded_ok_serves_cached_family_variant() {
        let (service, solves) = counting_service(32 << 20);
        let s = linear(1);
        let exact = service.query(&s).unwrap();
        // Same structural family, different Δ — and no time to solve it.
        let coarse = s.with_delta(Charge::from_amp_seconds(2.0));
        let opts = QueryOptions::new()
            .with_deadline(Duration::ZERO)
            .allow_degraded();
        let answer = service.query_with(&coarse, &opts).unwrap();
        assert!(answer.is_degraded());
        match answer {
            Answer::Degraded {
                ref dist,
                bound,
                source: DegradedSource::CachedFamily { delta },
            } => {
                assert_eq!(dist.points(), exact.points(), "served the family variant");
                // The counting backend is Δ-independent: exact bound.
                assert_eq!(bound, 0.0);
                assert_eq!(delta, None);
            }
            ref other => panic!("expected a cached-family answer, got {other:?}"),
        }
        assert_eq!(solves.load(Ordering::SeqCst), 1, "only the first solve ran");
        let stats = service.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.degraded_served, 1);
        assert_eq!(stats.cached_entries, 1, "degraded answers are never cached");
    }

    #[test]
    fn deadline_without_family_falls_back_to_fast_simulation() {
        let (service, solves) = counting_service(32 << 20);
        let opts = QueryOptions::new()
            .with_deadline(Duration::ZERO)
            .allow_degraded();
        let answer = service.query_with(&linear(7), &opts).unwrap();
        match answer {
            Answer::Degraded {
                ref dist,
                bound,
                source: DegradedSource::FastSimulation { runs },
            } => {
                assert_eq!(dist.points().len(), 8);
                assert!(
                    bound > 0.0 && bound < 1.0,
                    "a Monte Carlo answer carries a real Wilson bound, got {bound}"
                );
                assert_eq!(runs, ServiceConfig::default().degraded_runs);
            }
            ref other => panic!("expected a fast-simulation answer, got {other:?}"),
        }
        assert_eq!(solves.load(Ordering::SeqCst), 0, "exact solve never ran");
        let stats = service.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.degraded_served, 1);
        assert_eq!(stats.cached_entries, 0, "degraded answers are never cached");
    }

    #[test]
    fn transient_failures_retry_with_backoff_then_succeed() {
        /// Fails with a transient (retryable) error `failures` times,
        /// then answers.
        struct Flaky {
            solves: Arc<AtomicUsize>,
            failures: usize,
        }
        impl LifetimeSolver for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn capability(&self, _s: &Scenario) -> Capability {
                Capability::Exact
            }
            fn solve(&self, s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
                let n = self.solves.fetch_add(1, Ordering::SeqCst);
                if n < self.failures {
                    return Err(KibamRmError::Markov(markov::MarkovError::NoConvergence(
                        "injected transient fault".into(),
                    )));
                }
                let points = s.times().iter().map(|&t| (t, 0.25)).collect();
                LifetimeDistribution::new("flaky", points, Default::default())
            }
        }
        let solves = Arc::new(AtomicUsize::new(0));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Flaky {
            solves: Arc::clone(&solves),
            failures: 2,
        }));
        let service = LifetimeService::new(registry);
        let s = linear(1);
        // Without a retry policy the transient error surfaces — and is
        // classified retryable so the caller knows a retry makes sense.
        let err = service
            .query_with(&s, &QueryOptions::new())
            .expect_err("first attempt fails");
        assert!(err.retryable());
        solves.store(0, Ordering::SeqCst);
        // With a budget of two retries the third attempt answers.
        let opts = QueryOptions::new().with_retry(
            RetryPolicy::retries(2)
                .with_backoff(Duration::from_millis(1), Duration::from_millis(4)),
        );
        let answer = service.query_with(&s, &opts).unwrap();
        assert!(!answer.is_degraded());
        assert_eq!(answer.bound(), None);
        assert_eq!(solves.load(Ordering::SeqCst), 3, "two retries, one success");
        assert_eq!(service.stats().retries, 2);
    }

    #[test]
    fn breaker_trips_sheds_and_recovers_through_half_open() {
        /// Fails (permanently, non-retryable) while `failing` is set.
        struct Toggle {
            solves: Arc<AtomicUsize>,
            failing: Arc<std::sync::atomic::AtomicBool>,
        }
        impl LifetimeSolver for Toggle {
            fn name(&self) -> &'static str {
                "toggle"
            }
            fn capability(&self, _s: &Scenario) -> Capability {
                Capability::Exact
            }
            fn solve(&self, s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
                self.solves.fetch_add(1, Ordering::SeqCst);
                if self.failing.load(Ordering::SeqCst) {
                    return Err(KibamRmError::InvalidWorkload("injected hard fault".into()));
                }
                let points = s.times().iter().map(|&t| (t, 0.5)).collect();
                LifetimeDistribution::new("toggle", points, Default::default())
            }
        }
        let solves = Arc::new(AtomicUsize::new(0));
        let failing = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Toggle {
            solves: Arc::clone(&solves),
            failing: Arc::clone(&failing),
        }));
        let cooldown = Duration::from_millis(25);
        let service = LifetimeService::with_config(
            registry,
            ServiceConfig::default().with_breaker(2, cooldown),
        );
        // Two consecutive failures trip the breaker…
        assert!(service.query(&linear(1)).is_err());
        assert!(service.query(&linear(2)).is_err());
        // …so the third request sheds without touching the backend.
        let err = service.query(&linear(3)).expect_err("breaker is open");
        assert!(matches!(
            err,
            ServiceError::CircuitOpen { backend: "toggle" }
        ));
        assert!(err.to_string().contains("circuit breaker open"));
        assert!(err.retryable(), "open breakers heal: retry later is sane");
        assert_eq!(
            solves.load(Ordering::SeqCst),
            2,
            "shed query computed nothing"
        );
        assert_eq!(service.stats().breaker_open, 1);
        // After the cooldown one probe goes through; it fails, so the
        // breaker re-opens and the follow-up sheds again.
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(matches!(
            service.query(&linear(4)).expect_err("probe fails"),
            ServiceError::Solve(_)
        ));
        assert!(matches!(
            service.query(&linear(5)).expect_err("re-opened"),
            ServiceError::CircuitOpen { .. }
        ));
        // Heal the backend: the next probe closes the breaker for good.
        failing.store(false, Ordering::SeqCst);
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(service.query(&linear(6)).is_ok());
        assert!(service.query(&linear(7)).is_ok());
        let stats = service.stats();
        assert_eq!(stats.breaker_open, 2);
        assert_eq!(stats.errors, 3, "two trips plus the failed probe");
    }

    #[test]
    fn joiner_deadline_expires_while_flight_completes_normally() {
        let solves = Arc::new(AtomicUsize::new(0));
        let (entered_tx, entered_rx) = mpsc::channel();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Blocking {
            solves: Arc::clone(&solves),
            entered: entered_tx,
            release: Arc::clone(&gate),
        }));
        let service = Arc::new(LifetimeService::new(registry));
        let s = linear(1);
        let owner = {
            let (service, s) = (Arc::clone(&service), s.clone());
            std::thread::spawn(move || service.query(&s))
        };
        entered_rx.recv().expect("owner reached the backend");
        // The joiner's deadline expires while the owner still holds the
        // flight: it gets a typed timeout, the flight is unharmed.
        let opts = QueryOptions::new().with_deadline(Duration::from_millis(20));
        let err = service.query_with(&s, &opts).expect_err("joiner times out");
        assert!(matches!(err, ServiceError::DeadlineExceeded { .. }));
        Blocking::release(&gate);
        let owned = owner.join().unwrap().expect("owner still succeeds");
        assert_eq!(owned.points().len(), 8);
        let stats = service.stats();
        assert_eq!(stats.joined, 1);
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.in_flight, 0, "no flight leaked");
        assert_eq!(solves.load(Ordering::SeqCst), 1);
        // The owner's answer was cached despite the joiner's timeout.
        assert_eq!(service.query(&s).unwrap().points(), owned.points());
        assert_eq!(service.stats().hits, 1);
    }

    #[test]
    fn service_deadline_cut_solve_then_full_solve_is_bit_identical() {
        let options = SolverOptions::sequential();
        let registry = SolverRegistry::with_default_backends().with_options(options);
        let service = LifetimeService::with_config(
            SolverRegistry::with_default_backends(),
            ServiceConfig::default().with_options(options),
        );
        let s = Scenario::paper_cell_phone().unwrap();
        // A 2 ms deadline lands mid-uniformisation on this model (it
        // takes much longer); on a pathologically fast machine the solve
        // finishes instead — both are legal, the invariant under test is
        // that an interrupted solve never corrupts later exact answers.
        let opts = QueryOptions::new().with_deadline(Duration::from_millis(2));
        match service.query_with(&s, &opts) {
            Err(ServiceError::DeadlineExceeded { .. }) => {}
            Ok(answer) => assert!(!answer.is_degraded()),
            Err(other) => panic!("unexpected error: {other}"),
        }
        let served = service.query(&s).expect("full solve succeeds");
        let fresh = registry.solve(&s).unwrap();
        assert_eq!(
            served.points(),
            fresh.points(),
            "an interrupted solve must not perturb the exact answer"
        );
        assert_eq!(service.stats().in_flight, 0);
    }

    #[test]
    fn retryable_classification_spans_every_variant() {
        assert!(ServiceError::Overloaded {
            in_flight: 2,
            limit: 1
        }
        .retryable());
        assert!(ServiceError::CircuitOpen { backend: "x" }.retryable());
        assert!(!ServiceError::DeadlineExceeded { completed: 3 }.retryable());
        assert!(
            ServiceError::Solve(KibamRmError::Markov(markov::MarkovError::NoConvergence(
                "t".into()
            )))
            .retryable()
        );
        assert!(!ServiceError::Solve(KibamRmError::InvalidWorkload("x".into())).retryable());
        assert!(!ServiceError::Solve(KibamRmError::DeadlineExceeded { completed: 1 }).retryable());
        // Display and source round-trips for the new variants.
        let deadline = ServiceError::DeadlineExceeded { completed: 41 };
        assert!(deadline.to_string().contains("41"));
        assert!(std::error::Error::source(&deadline).is_none());
        let open = ServiceError::CircuitOpen { backend: "disc" };
        assert!(open.to_string().contains("disc"));
        assert!(std::error::Error::source(&open).is_none());
    }

    #[test]
    fn query_options_and_retry_policy_builders() {
        let opts = QueryOptions::new()
            .with_deadline(Duration::from_secs(1))
            .allow_degraded()
            .with_retry(RetryPolicy::retries(3));
        assert_eq!(opts.deadline, Some(Duration::from_secs(1)));
        assert!(opts.degraded_ok);
        assert_eq!(opts.retry.max_retries, 3);
        let policy = RetryPolicy::retries(4)
            .with_backoff(Duration::from_millis(2), Duration::from_millis(5));
        assert_eq!(policy.backoff_for(1), Duration::from_millis(2));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(4));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(5), "capped");
        assert_eq!(policy.backoff_for(64), Duration::from_millis(5), "capped");
        assert_eq!(RetryPolicy::default().max_retries, 0);
        let cfg = ServiceConfig::default()
            .with_breaker(7, Duration::from_secs(2))
            .with_degraded_fallback(Duration::from_millis(100), 64);
        assert_eq!(cfg.breaker_threshold, 7);
        assert_eq!(cfg.breaker_cooldown, Duration::from_secs(2));
        assert_eq!(cfg.degraded_grace, Duration::from_millis(100));
        assert_eq!(cfg.degraded_runs, 64);
    }

    /// A unique temp path for one snapshot test.
    fn snap_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kibamrm-svc-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.snap"))
    }

    #[test]
    fn snapshot_round_trip_revives_identical_bits() {
        let (service, solves) = counting_service(32 << 20);
        let scenarios: Vec<Scenario> = (1..=3).map(linear).collect();
        let originals: Vec<LifetimeDistribution> = scenarios
            .iter()
            .map(|s| service.query(s).unwrap())
            .collect();
        let path = snap_path("round-trip");
        let report = service.save_snapshot(&path).unwrap();
        assert_eq!(report.entries, 3);
        assert!(report.bytes > snapshot::HEADER_LEN);
        assert_eq!(service.stats().snapshot_written, 1);

        // A fresh process: same backends, empty cache.
        let (revived, revived_solves) = counting_service(32 << 20);
        let load = revived.load_snapshot(&path);
        assert_eq!((load.loaded, load.rejected), (3, 0));
        assert!(load.error.is_none());
        assert!(!load.is_cold());
        for (s, original) in scenarios.iter().zip(&originals) {
            let served = revived.query(s).unwrap();
            assert_eq!(served.points(), original.points(), "bits differ for {s:?}");
            assert_eq!(served.method(), original.method());
        }
        assert_eq!(
            revived_solves.load(Ordering::SeqCst),
            0,
            "every post-restart query was a warm hit"
        );
        let stats = revived.stats();
        assert_eq!(stats.snapshot_loaded, 3);
        assert_eq!(stats.snapshot_rejected, 0);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 0);
        assert_eq!(
            stats.result_cache_bytes,
            service.stats().result_cache_bytes,
            "the byte ledger survives the round trip"
        );
        drop(solves);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_load_preserves_lru_order() {
        let probe = {
            let (service, _) = counting_service(usize::MAX);
            service.query(&linear(1)).unwrap().size_in_bytes()
        };
        let (service, _) = counting_service(3 * probe);
        let (a, b, c) = (linear(1), linear(2), linear(3));
        service.query(&a).unwrap();
        service.query(&b).unwrap();
        service.query(&c).unwrap();
        service.query(&a).unwrap(); // a is most recent: LRU order b, c, a
        let path = snap_path("lru-order");
        service.save_snapshot(&path).unwrap();

        // Revive into a cache with room for the same three entries,
        // then insert a fourth: b must be the victim.
        let (revived, _) = counting_service(3 * probe);
        assert_eq!(revived.load_snapshot(&path).loaded, 3);
        revived.query(&linear(4)).unwrap();
        assert_eq!(revived.stats().evictions, 1);
        let before = revived.stats().misses;
        revived.query(&a).unwrap();
        revived.query(&c).unwrap();
        assert_eq!(revived.stats().misses, before, "a and c stayed resident");
        revived.query(&b).unwrap();
        assert_eq!(
            revived.stats().misses,
            before + 1,
            "b was the least-recently-used revived entry"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_missing_file_is_a_clean_cold_start() {
        let (service, _) = counting_service(32 << 20);
        let load = service.load_snapshot(Path::new("/nonexistent/kibamrm-nowhere.snap"));
        assert_eq!((load.loaded, load.rejected), (0, 0));
        assert!(load.error.is_none());
        assert!(load.is_cold());
        let stats = service.stats();
        assert_eq!((stats.snapshot_loaded, stats.snapshot_rejected), (0, 0));
    }

    #[test]
    fn snapshot_corruption_rejects_wholesale_and_counts_once() {
        let (service, _) = counting_service(32 << 20);
        service.query(&linear(1)).unwrap();
        let path = snap_path("corrupt");
        service.save_snapshot(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (revived, _) = counting_service(32 << 20);
        let load = revived.load_snapshot(&path);
        assert_eq!((load.loaded, load.rejected), (0, 1));
        assert!(matches!(load.error, Some(SnapshotError::Corrupt(_))));
        assert!(load.is_cold());
        let stats = revived.stats();
        assert_eq!(stats.snapshot_rejected, 1);
        assert_eq!(stats.cached_entries, 0, "nothing revived from a bad file");
        // The service still answers normally after the cold start.
        assert!(revived.query(&linear(1)).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_entries_skip_resident_keys_and_unknown_backends() {
        let (service, _) = counting_service(32 << 20);
        service.query(&linear(1)).unwrap();
        service.query(&linear(2)).unwrap();
        let path = snap_path("skips");
        service.save_snapshot(&path).unwrap();

        // One key already resident: only the other entry is revived.
        let (half_warm, _) = counting_service(32 << 20);
        half_warm.query(&linear(1)).unwrap();
        let load = half_warm.load_snapshot(&path);
        assert_eq!((load.loaded, load.rejected), (1, 1));
        assert_eq!(half_warm.stats().cached_entries, 2);
        assert_eq!(
            half_warm.stats().result_cache_bytes,
            service.stats().result_cache_bytes,
            "skipping the resident key keeps the byte ledger exact"
        );

        // A registry that never had the "counting" backend rejects
        // every entry: the method cannot be interned.
        let strangers = LifetimeService::new(SolverRegistry::with_default_backends());
        let load = strangers.load_snapshot(&path);
        assert_eq!((load.loaded, load.rejected), (0, 2));
        assert_eq!(strangers.stats().snapshot_rejected, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_rejects_curves_off_the_scenario_grid() {
        let (service, _) = counting_service(32 << 20);
        service.query(&linear(1)).unwrap();
        let path = snap_path("grid");
        service.save_snapshot(&path).unwrap();

        // Re-encode the snapshot with one sample time nudged off the
        // scenario's grid: structurally valid, semantically wrong.
        let mut entries = snapshot::decode(&std::fs::read(&path).unwrap()).unwrap();
        entries[0].points[0].0 += 1.0;
        snapshot::write_atomic(&path, &snapshot::encode(&entries).unwrap()).unwrap();

        let (revived, revived_solves) = counting_service(32 << 20);
        let load = revived.load_snapshot(&path);
        assert_eq!((load.loaded, load.rejected), (0, 1));
        // The rejected entry costs a fresh solve — never a wrong answer.
        revived.query(&linear(1)).unwrap();
        assert_eq!(revived_solves.load(Ordering::SeqCst), 1);
        let _ = std::fs::remove_file(&path);
    }
}
