//! Error type of the `kibamrm` crate.

use std::fmt;

/// Errors from the KiBaMRM pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum KibamRmError {
    /// A workload definition was malformed.
    InvalidWorkload(String),
    /// Battery parameters were out of range.
    InvalidBattery(String),
    /// A discretisation step `Δ` that does not evenly divide the well
    /// capacities, or other discretisation problems.
    InvalidDiscretisation(String),
    /// An error propagated from the Markov-chain layer.
    Markov(markov::MarkovError),
    /// An error propagated from the battery-model layer.
    Battery(battery::BatteryError),
    /// A cooperative [`markov::Budget`] check failed: the solve was
    /// cancelled or ran past its deadline. Carries the work completed
    /// before the interruption (uniformisation iterations for the
    /// discretisation backend, replications for simulation).
    DeadlineExceeded {
        /// Units of work (backend-specific) completed before the budget
        /// expired.
        completed: usize,
    },
}

impl fmt::Display for KibamRmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KibamRmError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            KibamRmError::InvalidBattery(msg) => write!(f, "invalid battery: {msg}"),
            KibamRmError::InvalidDiscretisation(msg) => {
                write!(f, "invalid discretisation: {msg}")
            }
            KibamRmError::Markov(e) => write!(f, "markov layer: {e}"),
            KibamRmError::Battery(e) => write!(f, "battery layer: {e}"),
            KibamRmError::DeadlineExceeded { completed } => {
                write!(
                    f,
                    "deadline exceeded after {completed} units of completed work"
                )
            }
        }
    }
}

impl std::error::Error for KibamRmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KibamRmError::Markov(e) => Some(e),
            KibamRmError::Battery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<markov::MarkovError> for KibamRmError {
    fn from(e: markov::MarkovError) -> Self {
        // Deadline interruptions are a first-class outcome at this
        // layer (the service degrades or retries on them), so they are
        // lifted out of the generic Markov wrapper at the boundary.
        match e {
            markov::MarkovError::DeadlineExceeded { completed } => {
                KibamRmError::DeadlineExceeded { completed }
            }
            other => KibamRmError::Markov(other),
        }
    }
}

impl From<battery::BatteryError> for KibamRmError {
    fn from(e: battery::BatteryError) -> Self {
        KibamRmError::Battery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = KibamRmError::InvalidWorkload("w".into());
        assert!(e.to_string().contains("invalid workload"));
        assert!(e.source().is_none());

        let e: KibamRmError = markov::MarkovError::EmptyChain.into();
        assert!(e.to_string().contains("markov layer"));
        assert!(e.source().is_some());

        let e: KibamRmError = battery::BatteryError::InvalidParameter("p".into()).into();
        assert!(e.to_string().contains("battery layer"));
        assert!(e.source().is_some());

        assert!(KibamRmError::InvalidBattery("b".into())
            .to_string()
            .contains("battery"));
        assert!(KibamRmError::InvalidDiscretisation("d".into())
            .to_string()
            .contains("discretisation"));

        let e: KibamRmError = markov::MarkovError::DeadlineExceeded { completed: 3 }.into();
        assert_eq!(e, KibamRmError::DeadlineExceeded { completed: 3 });
        assert!(e.to_string().contains("deadline exceeded after 3"));
        assert!(e.source().is_none());
    }
}
