//! CSV/gnuplot output for experiment results.
//!
//! The benchmark harness regenerates every table and figure of the paper
//! as plain CSV files (plus gnuplot-ready `.dat`): one column per curve,
//! aligned on a shared time grid. No external serialisation crates are
//! needed for this — see DESIGN.md's dependency policy.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A named curve sampled as `(x, y)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Legend label (becomes the CSV column header).
    pub label: String,
    /// Samples in increasing `x`.
    pub points: Vec<(f64, f64)>,
}

impl Curve {
    /// Creates a curve.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Curve {
            label: label.into(),
            points,
        }
    }
}

/// Renders one curve as a two-column CSV (`x,label`).
pub fn curve_to_csv(x_name: &str, curve: &Curve) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{},{}", escape(x_name), escape(&curve.label));
    for (x, y) in &curve.points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Renders several curves that share an x-grid as a multi-column CSV.
/// Curves with differing grids are aligned by row index; shorter curves
/// leave blanks.
pub fn curves_to_csv(x_name: &str, curves: &[Curve]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}", escape(x_name));
    for c in curves {
        let _ = write!(out, ",{}", escape(&c.label));
    }
    let _ = writeln!(out);
    let rows = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for r in 0..rows {
        let x = curves
            .iter()
            .find_map(|c| c.points.get(r).map(|p| p.0))
            .unwrap_or(f64::NAN);
        let _ = write!(out, "{x}");
        for c in curves {
            match c.points.get(r) {
                Some((_, y)) => {
                    let _ = write!(out, ",{y}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a simple table (headers + string rows) as CSV.
pub fn table_to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        );
    }
    out
}

/// Writes `content` to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_file(path: &Path, content: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, content)
}

/// Quotes a CSV field when it contains separators or quotes.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_curve_csv() {
        let c = Curve::new("p_empty", vec![(0.0, 0.0), (1.0, 0.5)]);
        let csv = curve_to_csv("t", &c);
        assert_eq!(csv, "t,p_empty\n0,0\n1,0.5\n");
    }

    #[test]
    fn multi_curve_alignment() {
        let a = Curve::new("delta=5", vec![(0.0, 0.1), (1.0, 0.2)]);
        let b = Curve::new("sim", vec![(0.0, 0.15)]);
        let csv = curves_to_csv("t", &[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,delta=5,sim");
        assert_eq!(lines[1], "0,0.1,0.15");
        assert_eq!(lines[2], "1,0.2,");
    }

    #[test]
    fn table_rendering_with_escapes() {
        let csv = table_to_csv(
            &["frequency", "lifetime, minutes"],
            &[
                vec!["continuous".into(), "91".into()],
                vec!["say \"1\" Hz".into(), "203".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "frequency,\"lifetime, minutes\"");
        assert_eq!(lines[1], "continuous,91");
        assert_eq!(lines[2], "\"say \"\"1\"\" Hz\",203");
    }

    #[test]
    fn write_creates_directories() {
        let dir = std::env::temp_dir().join("kibamrm_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        write_file(&path, "a,b\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_covers_every_special_character() {
        // Comma, quote and newline all force quoting; quotes double.
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(escape("\""), "\"\"\"\"");
        // Plain fields — including empty and numeric-looking ones —
        // pass through unquoted.
        assert_eq!(escape(""), "");
        assert_eq!(escape("3.5e-2"), "3.5e-2");
        assert_eq!(escape("Delta=5"), "Delta=5");
    }

    #[test]
    fn curve_headers_are_escaped() {
        let c = Curve::new("lifetime, minutes", vec![(0.0, 1.0)]);
        let csv = curve_to_csv("t, s", &c);
        assert_eq!(
            csv.lines().next().unwrap(),
            "\"t, s\",\"lifetime, minutes\""
        );
        let multi = curves_to_csv("t", &[c]);
        assert_eq!(multi.lines().next().unwrap(), "t,\"lifetime, minutes\"");
    }

    #[test]
    fn table_cells_with_newlines_and_quotes() {
        let csv = table_to_csv(&["k", "v"], &[vec!["two\nlines".into(), "q\"q".into()]]);
        assert_eq!(csv, "k,v\n\"two\nlines\",\"q\"\"q\"\n");
    }

    #[test]
    fn empty_curves() {
        let csv = curves_to_csv("t", &[]);
        assert_eq!(csv, "t\n");
        let c = Curve::new("empty", vec![]);
        assert_eq!(curve_to_csv("t", &c), "t,empty\n");
    }
}
