//! Deterministic fault injection for dependability testing.
//!
//! [`FaultInjectingSolver`] wraps any [`LifetimeSolver`] and injects a
//! seeded, reproducible mixture of faults at every solve entry point:
//!
//! * **errors** — a transient [`markov::MarkovError::NoConvergence`],
//!   the class the service's retry loop re-attempts and its circuit
//!   breaker counts;
//! * **panics** — an unwind out of the backend, exercising the
//!   service's poisoned-lock and flight-cleanup paths;
//! * **delays** — a bounded sleep before the real solve, widening race
//!   windows so concurrency bugs surface under test.
//!
//! The fault sequence is a pure function of the wrapper's seed and its
//! call counter — two wrappers with equal seeds and rates inject
//! identical fault sequences, so chaos tests are reproducible run to
//! run. The wrapper is a *test harness*, not a production feature: it
//! lives in the library (not `#[cfg(test)]`) so integration tests,
//! property tests and benches can all reach it, but nothing in the
//! solving stack depends on it.

use crate::distribution::LifetimeDistribution;
use crate::error::KibamRmError;
use crate::scenario::Scenario;
use crate::solver::{Capability, GroupState, LifetimeSolver, SolverOptions};
use markov::Budget;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault mixture and seed for a [`FaultInjectingSolver`].
///
/// The three rates are probabilities in `[0, 1]` evaluated in order
/// (error, then panic, then delay) against one uniform draw per solve
/// call, so their sum must not exceed 1. A delay is injected *before* a
/// successful pass-through solve; errors and panics replace it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the deterministic per-call fault sequence.
    pub seed: u64,
    /// Probability a call fails with a transient solve error.
    pub error_rate: f64,
    /// Probability a call panics.
    pub panic_rate: f64,
    /// Probability a call sleeps before solving.
    pub delay_rate: f64,
    /// Upper bound of an injected sleep (draws are uniform in
    /// `[0, max_delay]`).
    pub max_delay: Duration,
}

impl ChaosConfig {
    /// A configuration that injects nothing: pure pass-through.
    pub fn passthrough(seed: u64) -> Self {
        ChaosConfig {
            seed,
            error_rate: 0.0,
            panic_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::from_millis(1),
        }
    }

    /// Sets the transient-error rate.
    ///
    /// # Panics
    ///
    /// If the combined fault rates leave `[0, 1]` (NaN included).
    #[must_use]
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self.validated()
    }

    /// Sets the panic rate.
    ///
    /// # Panics
    ///
    /// If the combined fault rates leave `[0, 1]` (NaN included).
    #[must_use]
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self.validated()
    }

    /// Sets the delay rate and the sleep upper bound.
    ///
    /// # Panics
    ///
    /// If the combined fault rates leave `[0, 1]` (NaN included).
    #[must_use]
    pub fn with_delay(mut self, rate: f64, max_delay: Duration) -> Self {
        self.delay_rate = rate;
        self.max_delay = max_delay;
        self.validated()
    }

    fn validated(self) -> Self {
        let sum = self.error_rate + self.panic_rate + self.delay_rate;
        // NaN-rejecting: a NaN rate fails every comparison below.
        assert!(
            self.error_rate >= 0.0
                && self.panic_rate >= 0.0
                && self.delay_rate >= 0.0
                && sum <= 1.0,
            "chaos fault rates must be in [0, 1] and sum to at most 1, got \
             error={}, panic={}, delay={}",
            self.error_rate,
            self.panic_rate,
            self.delay_rate,
        );
        self
    }
}

/// Shared fault counters of one [`FaultInjectingSolver`] — clone the
/// handle before boxing the wrapper into a registry and read the tallies
/// after the dust settles.
#[derive(Debug, Clone, Default)]
pub struct ChaosLedger {
    inner: Arc<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    calls: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    delays: AtomicU64,
}

impl ChaosLedger {
    /// Total solve calls that reached the wrapper.
    pub fn calls(&self) -> u64 {
        self.inner.calls.load(Ordering::SeqCst)
    }

    /// Transient errors injected.
    pub fn errors(&self) -> u64 {
        self.inner.errors.load(Ordering::SeqCst)
    }

    /// Panics injected.
    pub fn panics(&self) -> u64 {
        self.inner.panics.load(Ordering::SeqCst)
    }

    /// Delays injected.
    pub fn delays(&self) -> u64 {
        self.inner.delays.load(Ordering::SeqCst)
    }
}

/// What one call draw decided.
enum Fault {
    None,
    Error(u64),
    Panic(u64),
    Delay(Duration),
}

/// A [`LifetimeSolver`] wrapper that injects deterministic faults.
///
/// Everything observable about the backend — name, capability,
/// fingerprint, group state — is delegated unchanged, so a wrapped
/// solver is registry- and service-transparent: groups form the same
/// way, the breaker attributes failures to the *inner* backend's name,
/// and when no fault fires the answer is bit-identical to the unwrapped
/// solve.
pub struct FaultInjectingSolver {
    inner: Box<dyn LifetimeSolver>,
    config: ChaosConfig,
    ledger: ChaosLedger,
}

impl FaultInjectingSolver {
    /// Wraps `inner` with the given fault mixture.
    pub fn new(inner: Box<dyn LifetimeSolver>, config: ChaosConfig) -> Self {
        FaultInjectingSolver {
            inner,
            config: config.validated(),
            ledger: ChaosLedger::default(),
        }
    }

    /// A handle onto the wrapper's fault counters (clone it before
    /// boxing the wrapper away).
    pub fn ledger(&self) -> ChaosLedger {
        self.ledger.clone()
    }

    /// Draws the fault for the next call. Pure in `(seed, call index)`:
    /// the counter is the only mutable state, so concurrent callers
    /// partition one global fault sequence among themselves.
    fn draw(&self) -> Fault {
        let n = self.ledger.inner.calls.fetch_add(1, Ordering::SeqCst);
        let bits = splitmix64(self.config.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let u = uniform_unit(bits);
        let c = &self.config;
        if u < c.error_rate {
            self.ledger.inner.errors.fetch_add(1, Ordering::SeqCst);
            Fault::Error(n)
        } else if u < c.error_rate + c.panic_rate {
            self.ledger.inner.panics.fetch_add(1, Ordering::SeqCst);
            Fault::Panic(n)
        } else if u < c.error_rate + c.panic_rate + c.delay_rate {
            self.ledger.inner.delays.fetch_add(1, Ordering::SeqCst);
            let nanos = c.max_delay.as_nanos() as f64 * uniform_unit(splitmix64(bits));
            Fault::Delay(Duration::from_nanos(nanos as u64))
        } else {
            Fault::None
        }
    }

    /// Applies the drawn fault; `Ok(())` means "proceed with the real
    /// solve".
    fn inject(&self) -> Result<(), KibamRmError> {
        match self.draw() {
            Fault::None => Ok(()),
            Fault::Error(n) => Err(KibamRmError::Markov(markov::MarkovError::NoConvergence(
                format!("chaos: injected transient fault (call #{n})"),
            ))),
            Fault::Panic(n) => panic!("chaos: injected panic (call #{n})"),
            Fault::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

impl std::fmt::Debug for FaultInjectingSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjectingSolver")
            .field("inner", &self.inner.name())
            .field("config", &self.config)
            .field("ledger", &self.ledger)
            .finish()
    }
}

impl LifetimeSolver for FaultInjectingSolver {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capability(&self, scenario: &Scenario) -> Capability {
        self.inner.capability(scenario)
    }

    fn solve(&self, scenario: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
        self.inject()?;
        self.inner.solve(scenario)
    }

    fn solve_with(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        self.inject()?;
        self.inner.solve_with(scenario, options)
    }

    fn solve_with_budget(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        self.inject()?;
        self.inner.solve_with_budget(scenario, options, budget)
    }

    fn sweep_fingerprint(&self, scenario: &Scenario) -> Option<u64> {
        self.inner.sweep_fingerprint(scenario)
    }

    fn new_group_state(&self, options: &SolverOptions) -> Option<Box<dyn GroupState>> {
        self.inner.new_group_state(options)
    }

    fn solve_in_group(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        state: &mut dyn GroupState,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        self.inject()?;
        self.inner.solve_in_group(scenario, options, state)
    }

    fn solve_in_group_budgeted(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        state: &mut dyn GroupState,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        self.inject()?;
        self.inner
            .solve_in_group_budgeted(scenario, options, state, budget)
    }
}

// The wrapper must be shareable across the service's worker threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FaultInjectingSolver>();
    assert_send_sync::<ChaosLedger>();
};

/// SplitMix64 — the standard 64-bit finaliser; a single pass is a good
/// enough bit mixer for fault scheduling.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The top 53 bits as a uniform draw in `[0, 1)`.
fn uniform_unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{DiscretisationSolver, SolverRegistry};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn scenario() -> Scenario {
        Scenario::paper_cell_phone()
            .unwrap()
            .with_delta(units::Charge::from_milliamp_hours(100.0))
    }

    fn wrapped(config: ChaosConfig) -> (FaultInjectingSolver, ChaosLedger) {
        let solver = FaultInjectingSolver::new(Box::new(DiscretisationSolver::new()), config);
        let ledger = solver.ledger();
        (solver, ledger)
    }

    #[test]
    fn passthrough_is_bit_identical_and_transparent() {
        let (chaos, ledger) = wrapped(ChaosConfig::passthrough(1));
        let s = scenario();
        let plain = DiscretisationSolver::new();
        let a = chaos.solve(&s).unwrap();
        let b = plain.solve(&s).unwrap();
        assert_eq!(a.points(), b.points());
        assert_eq!(chaos.name(), plain.name());
        assert_eq!(chaos.capability(&s), plain.capability(&s));
        assert_eq!(chaos.sweep_fingerprint(&s), plain.sweep_fingerprint(&s));
        assert_eq!(ledger.calls(), 1);
        assert_eq!(ledger.errors() + ledger.panics() + ledger.delays(), 0);
        assert!(format!("{chaos:?}").contains("FaultInjectingSolver"));
    }

    #[test]
    fn fault_sequence_is_deterministic_in_the_seed() {
        let observe = |seed: u64| -> Vec<u8> {
            let (chaos, _) = wrapped(
                ChaosConfig::passthrough(seed)
                    .with_error_rate(0.4)
                    .with_panic_rate(0.3),
            );
            (0..64)
                .map(
                    |_| match catch_unwind(AssertUnwindSafe(|| chaos.solve(&scenario()))) {
                        Ok(Ok(_)) => 0,
                        Ok(Err(_)) => 1,
                        Err(_) => 2,
                    },
                )
                .collect()
        };
        let a = observe(7);
        assert_eq!(a, observe(7), "same seed, same fault sequence");
        assert_ne!(a, observe(8), "different seed, different sequence");
        assert!(a.contains(&0) && a.contains(&1) && a.contains(&2));
    }

    #[test]
    fn injected_errors_are_transient_and_typed() {
        let (chaos, ledger) = wrapped(ChaosConfig::passthrough(3).with_error_rate(1.0));
        let err = chaos.solve(&scenario()).expect_err("always injects");
        assert!(matches!(
            err,
            KibamRmError::Markov(markov::MarkovError::NoConvergence(_))
        ));
        assert!(err.to_string().contains("chaos"));
        assert!(crate::service::ServiceError::Solve(err).retryable());
        assert_eq!((ledger.calls(), ledger.errors()), (1, 1));
    }

    #[test]
    fn injected_delays_still_answer_exactly() {
        let (chaos, ledger) =
            wrapped(ChaosConfig::passthrough(5).with_delay(1.0, Duration::from_millis(1)));
        let s = scenario();
        let a = chaos.solve(&s).unwrap();
        assert_eq!(
            a.points(),
            DiscretisationSolver::new().solve(&s).unwrap().points()
        );
        assert_eq!(ledger.delays(), 1);
    }

    #[test]
    fn wrapped_registry_still_groups_and_solves() {
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(FaultInjectingSolver::new(
            Box::new(DiscretisationSolver::new()),
            ChaosConfig::passthrough(11),
        )));
        let s = scenario();
        let viaregistry = registry.solve(&s).unwrap();
        let direct = DiscretisationSolver::new().solve(&s).unwrap();
        assert_eq!(viaregistry.points(), direct.points());
    }

    #[test]
    #[should_panic(expected = "fault rates")]
    fn invalid_rates_are_rejected() {
        let _ = ChaosConfig::passthrough(1)
            .with_error_rate(0.8)
            .with_panic_rate(0.8);
    }
}
