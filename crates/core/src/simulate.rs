//! Stochastic simulation of the exact KiBaMRM dynamics.
//!
//! This is the validation baseline of the paper's §6 ("Simulation" curves,
//! 1000 independent runs): the workload CTMC is sampled jump by jump, and
//! within each sojourn — where the current is constant — the KiBaM wells
//! evolve by the *closed-form* solution, with exact depletion detection.
//! No discretisation error enters at all; the only error is statistical.
//!
//! Two drivers share [`simulate_lifetime`]:
//!
//! * [`lifetime_study`] — the exact-order-statistics reference: every
//!   observed lifetime is kept (O(runs) memory);
//! * [`streaming_lifetime_study`] — the production path: replications
//!   run on a [`sim::engine::McPool`] worker pool and fold into a
//!   fixed-grid [`StreamingLifetimeStudy`] (O(grid) memory,
//!   bit-identical for any thread count), with an optional adaptive
//!   Wilson-half-width stopping rule.

use crate::model::KibamRm;
use crate::KibamRmError;
use markov::Budget;
use sim::engine::{EngineError, McOptions, McPool, Replication};
use sim::replication::{run_replications, LifetimeStudy};
use sim::rng::SimRng;
use sim::streaming::StreamingLifetimeStudy;
use sim::trajectory::{next_state, sample_initial};
use std::sync::Mutex;
use units::Time;

/// Simulates one battery lifetime, up to `horizon`.
///
/// Returns `Ok(None)` when the battery survives the whole horizon.
///
/// # Errors
///
/// [`KibamRmError::Markov`] for sampling failures (cannot happen for
/// validated workloads), [`KibamRmError::Battery`] for battery stepping
/// failures.
pub fn simulate_lifetime(
    model: &KibamRm,
    horizon: Time,
    rng: &mut SimRng,
) -> Result<Option<Time>, KibamRmError> {
    let workload = model.workload();
    let chain = workload.ctmc();
    let battery = model.battery();

    let mut state = sample_initial(chain, workload.initial(), rng)?;
    let mut charge = battery.full_state();
    let mut t = Time::ZERO;

    while t < horizon {
        let exit = chain.exit_rate(state);
        let sojourn = if exit > 0.0 {
            Time::from_seconds(rng.exponential(exit))
        } else {
            horizon - t // absorbing workload state: stay forever
        };
        let dt = sojourn.min(horizon - t);
        let current = workload.current(state);
        if let Some(d) = battery.depletion_after(&charge, current, dt)? {
            return Ok(Some(t + d));
        }
        charge = battery.advance_state(&charge, current, dt)?;
        t += dt;
        if t < horizon && exit > 0.0 {
            state = next_state(chain, state, rng)?;
        }
    }
    Ok(None)
}

/// Runs `runs` independent lifetime simulations (the paper uses 1000) and
/// returns the empirical study with every observed lifetime kept.
///
/// A study where no run depleted is returned as the valid all-zero curve
/// (`depleted_runs() == 0`), **not** an error — one long-lived scenario
/// must not abort a whole sweep.
///
/// # Errors
///
/// Propagates the first simulation error; [`KibamRmError::InvalidWorkload`]
/// for a zero replication count.
pub fn lifetime_study(
    model: &KibamRm,
    horizon: Time,
    runs: usize,
    seed: u64,
) -> Result<LifetimeStudy, KibamRmError> {
    if runs == 0 {
        return Err(KibamRmError::InvalidWorkload(
            "a lifetime study needs at least one replication".into(),
        ));
    }
    let outcomes: Vec<Result<Option<f64>, KibamRmError>> = run_replications(runs, seed, |rng| {
        simulate_lifetime(model, horizon, rng).map(|o| o.map(|t| t.as_seconds()))
    });
    let mut flat = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        flat.push(o?);
    }
    LifetimeStudy::new(&flat, horizon.as_seconds()).map_err(|e| {
        // Only NaN lifetimes reach this branch now (all-censored is a
        // valid study and `runs > 0` was checked above).
        KibamRmError::InvalidWorkload(format!("simulated lifetimes are malformed: {e}"))
    })
}

/// Runs the parallel streaming study: replications on `pool`'s workers,
/// folded into a fixed-grid accumulator over `grid` (O(grid) memory),
/// under `opts`' stopping rule. Results are bit-identical for any
/// worker count, and agree replication by replication with
/// [`lifetime_study`] on the same seed (both draw replication `i` from
/// [`SimRng::stream`]`(seed, i)`).
///
/// # Errors
///
/// [`KibamRmError::InvalidWorkload`] on empty/unsorted grids, a horizon
/// short of the grid, or inconsistent engine options; the first
/// per-replication simulation error otherwise.
pub fn streaming_lifetime_study(
    model: &KibamRm,
    grid: &[Time],
    horizon: Time,
    seed: u64,
    opts: &McOptions,
    pool: &McPool,
) -> Result<StreamingLifetimeStudy, KibamRmError> {
    streaming_lifetime_study_budgeted(model, grid, horizon, seed, opts, pool, &Budget::unlimited())
}

/// [`streaming_lifetime_study`] under a cooperative [`Budget`]: the
/// token is checked once per batch checkpoint, and an exhausted budget
/// stops dispatching (draining in-flight batches first) and surfaces
/// [`KibamRmError::DeadlineExceeded`] with the replications that merged
/// into the study. With [`Budget::unlimited`] this is exactly
/// [`streaming_lifetime_study`].
///
/// # Errors
///
/// As for [`streaming_lifetime_study`], plus
/// [`KibamRmError::DeadlineExceeded`] on budget exhaustion.
pub fn streaming_lifetime_study_budgeted(
    model: &KibamRm,
    grid: &[Time],
    horizon: Time,
    seed: u64,
    opts: &McOptions,
    pool: &McPool,
    budget: &Budget,
) -> Result<StreamingLifetimeStudy, KibamRmError> {
    // The engine sees a plain `Replication`; the actual error object
    // crosses back through this mutex (first writer wins).
    let first_error: Mutex<Option<KibamRmError>> = Mutex::new(None);
    let experiment = |rng: &mut SimRng| match simulate_lifetime(model, horizon, rng) {
        Ok(Some(t)) => Replication::Depleted(t.as_seconds()),
        Ok(None) => Replication::Censored,
        Err(e) => {
            let mut slot = first_error.lock().expect("error mutex poisoned");
            slot.get_or_insert(e);
            Replication::Abort
        }
    };
    let grid_seconds: Vec<f64> = grid.iter().map(|t| t.as_seconds()).collect();
    pool.run_study_budgeted(
        grid_seconds,
        horizon.as_seconds(),
        seed,
        opts,
        &experiment,
        budget,
    )
    .map_err(|e| match e {
        EngineError::Aborted => first_error
            .into_inner()
            .expect("error mutex poisoned")
            .unwrap_or_else(|| {
                KibamRmError::InvalidWorkload("simulation aborted without an error".into())
            }),
        EngineError::DeadlineExceeded { completed_runs } => KibamRmError::DeadlineExceeded {
            completed: completed_runs as usize,
        },
        other => KibamRmError::InvalidWorkload(format!("simulation engine: {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use units::{Charge, Current, Frequency, Rate};

    fn on_off_linear() -> KibamRm {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        KibamRm::new(
            w,
            Charge::from_amp_seconds(7200.0),
            1.0,
            Rate::per_second(0.0),
        )
        .unwrap()
    }

    #[test]
    fn single_run_reproducible() {
        let m = on_off_linear();
        let horizon = Time::from_seconds(25_000.0);
        let a = simulate_lifetime(&m, horizon, &mut SimRng::seed_from(3)).unwrap();
        let b = simulate_lifetime(&m, horizon, &mut SimRng::seed_from(3)).unwrap();
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn on_off_mean_lifetime_near_15000() {
        // §6.1: the lifetime is nearly deterministic around 15 000 s
        // (7200 As at 0.96 A drawn half the time).
        let m = on_off_linear();
        let study = lifetime_study(&m, Time::from_seconds(25_000.0), 300, 1234).unwrap();
        assert_eq!(study.total_runs(), 300);
        assert_eq!(
            study.depleted_runs(),
            300,
            "all runs must deplete by 25 000 s"
        );
        let mean = study.mean_observed_lifetime().unwrap();
        assert!((mean - 15_000.0).abs() < 300.0, "mean = {mean}");
        // The paper notes the distribution is close to deterministic: the
        // 5%—95% spread stays within ±10 % of the mean.
        let lo = study.lifetime_quantile(0.05).unwrap();
        let hi = study.lifetime_quantile(0.95).unwrap();
        assert!(hi - lo < 0.25 * mean, "spread [{lo}, {hi}]");
    }

    #[test]
    fn erlang_k_concentrates_lifetime() {
        // §6.1: larger K makes on/off times closer to deterministic and
        // the simulated lifetime distribution tighter.
        let spread_for = |k: u32| {
            let w =
                Workload::on_off_erlang(Frequency::from_hertz(1.0), k, Current::from_amps(0.96))
                    .unwrap();
            let m = KibamRm::new(
                w,
                Charge::from_amp_seconds(7200.0),
                1.0,
                Rate::per_second(0.0),
            )
            .unwrap();
            let study = lifetime_study(&m, Time::from_seconds(25_000.0), 200, 99).unwrap();
            study.lifetime_quantile(0.9).unwrap() - study.lifetime_quantile(0.1).unwrap()
        };
        let s1 = spread_for(1);
        let s8 = spread_for(8);
        assert!(s8 < s1, "K=1 spread {s1} vs K=8 spread {s8}");
    }

    #[test]
    fn two_well_battery_dies_earlier_than_linear() {
        // With c = 0.625 part of the charge is locked in the bound well:
        // lifetimes shorten (Fig. 9's message).
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let linear = on_off_linear();
        let two_well = KibamRm::new(
            w,
            Charge::from_amp_seconds(7200.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap();
        let horizon = Time::from_seconds(25_000.0);
        let m_lin = lifetime_study(&linear, horizon, 150, 5)
            .unwrap()
            .mean_observed_lifetime()
            .unwrap();
        let m_two = lifetime_study(&two_well, horizon, 150, 5)
            .unwrap()
            .mean_observed_lifetime()
            .unwrap();
        assert!(m_two < m_lin, "two-well {m_two} vs linear {m_lin}");
        // But longer than the available-charge-only battery (recovery
        // transfers bound charge): 4500 As / 0.48 A = 9375 s.
        assert!(m_two > 9375.0, "two-well {m_two}");
    }

    #[test]
    fn survives_short_horizon_as_a_zero_curve() {
        let m = on_off_linear();
        let out =
            simulate_lifetime(&m, Time::from_seconds(100.0), &mut SimRng::seed_from(1)).unwrap();
        assert_eq!(out, None);
        // Regression: an all-censored study used to abort with an error;
        // it is the valid all-zero curve.
        let study = lifetime_study(&m, Time::from_seconds(100.0), 10, 1).unwrap();
        assert_eq!(study.total_runs(), 10);
        assert_eq!(study.depleted_runs(), 0);
        assert_eq!(study.empty_probability(100.0), 0.0);
        assert_eq!(study.mean_observed_lifetime(), None);
        assert_eq!(study.lifetime_quantile(0.5), None);
        // Zero replications stay an error.
        assert!(lifetime_study(&m, Time::from_seconds(100.0), 0, 1).is_err());
    }

    #[test]
    fn streaming_study_matches_the_exact_study_at_grid_points() {
        let m = on_off_linear();
        let horizon = Time::from_seconds(25_000.0);
        let grid: Vec<Time> = (1..=10)
            .map(|i| Time::from_seconds(i as f64 * 2500.0))
            .collect();
        let opts = McOptions {
            runs: 300,
            ..McOptions::default()
        };
        let pool = McPool::with_exact_threads(1);
        let streaming = streaming_lifetime_study(&m, &grid, horizon, 1234, &opts, &pool).unwrap();
        let exact = lifetime_study(&m, horizon, 300, 1234).unwrap();
        assert_eq!(streaming.total_runs(), 300);
        for (i, t) in grid.iter().enumerate() {
            assert_eq!(
                streaming.depleted_at(i) as usize,
                exact.depleted_at(t.as_seconds()),
                "same replications, same counts at t = {t}"
            );
        }
        let (a, b) = (
            streaming.mean_observed_lifetime().unwrap(),
            exact.mean_observed_lifetime().unwrap(),
        );
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn streaming_study_is_bit_identical_across_thread_counts() {
        let m = on_off_linear();
        let horizon = Time::from_seconds(25_000.0);
        let grid: Vec<Time> = (1..=5)
            .map(|i| Time::from_seconds(i as f64 * 5000.0))
            .collect();
        let opts = McOptions {
            runs: 120,
            batch: 32,
            ..McOptions::default()
        };
        let reference =
            streaming_lifetime_study(&m, &grid, horizon, 7, &opts, &McPool::with_exact_threads(1))
                .unwrap();
        for threads in [2, 4] {
            let study = streaming_lifetime_study(
                &m,
                &grid,
                horizon,
                7,
                &opts,
                &McPool::with_exact_threads(threads),
            )
            .unwrap();
            assert_eq!(study, reference, "threads = {threads}");
        }
    }
}
