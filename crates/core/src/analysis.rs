//! High-level analyses: the exact `c = 1` curve and mean-lifetime
//! utilities, plus deprecated shims for the loose curve helpers that
//! predate [`crate::distribution::LifetimeDistribution`].
//!
//! For `c = 1` every bit of charge is directly available, so the consumed
//! charge is a plain accumulated reward `Y(t) = ∫ I_{X(s)} ds` of a
//! *homogeneous* MRM, and since consumption is monotone,
//! `Pr[battery empty at t] = Pr{Y(t) ≥ C}` **exactly**. The paper uses
//! this (uniformisation-based algorithm of Sericola, its ref. \[25\]) for
//! the rightmost curve of Fig. 10; we bridge to the implementation in
//! [`markov::sericola`].

use crate::model::KibamRm;
use crate::KibamRmError;
use markov::mrm::MarkovRewardModel;
use markov::sericola::{reward_exceeds_curve, PerformabilityOptions};
use units::Time;

/// `Pr[battery empty at t]` for a **linear** (`c = 1`) model, exactly.
///
/// # Errors
///
/// [`KibamRmError::InvalidBattery`] when the model is not linear;
/// propagates Sericola-solver errors.
///
/// # Examples
///
/// ```
/// use kibamrm::analysis::exact_linear_curve;
/// use kibamrm::model::KibamRm;
/// use kibamrm::workload::Workload;
/// use units::{Charge, Rate, Time};
///
/// let model = KibamRm::new(
///     Workload::simple_model().unwrap(),
///     Charge::from_milliamp_hours(800.0),
///     1.0,
///     Rate::per_second(0.0),
/// ).unwrap();
/// let curve = exact_linear_curve(&model, &[Time::from_hours(30.0)]).unwrap();
/// assert!(curve[0].1 > 0.99); // surely empty after 30 h
/// ```
pub fn exact_linear_curve(
    model: &KibamRm,
    times: &[Time],
) -> Result<Vec<(f64, f64)>, KibamRmError> {
    if !model.is_linear() {
        return Err(KibamRmError::InvalidBattery(format!(
            "the exact algorithm requires c = 1 (all charge available), got c = {}",
            model.c()
        )));
    }
    let workload = model.workload();
    let mrm = MarkovRewardModel::new(workload.ctmc().clone(), workload.currents_amps())?;
    let opts = PerformabilityOptions::default();
    let capacity = model.capacity().as_coulombs();
    let secs: Vec<f64> = times.iter().map(|t| t.as_seconds()).collect();
    Ok(reward_exceeds_curve(
        &mrm,
        workload.initial(),
        &secs,
        capacity,
        &opts,
    )?)
}

/// Mean lifetime of a discretised model, computed *algebraically* from
/// the derived chain: the expected time to absorption solves
/// `m_i = 1/q_i + Σ_j (q_{ij}/q_i) m_j` (Gauss–Seidel in `O(nnz)` space).
///
/// Complements [`mean_lifetime_from_curve`]: no time grid or truncation
/// is involved, but the iteration count grows with the expected number of
/// jumps, so this is intended for small/medium chains (the guard rejects
/// chains above one million states).
///
/// # Errors
///
/// [`KibamRmError::InvalidDiscretisation`] for oversized chains;
/// [`KibamRmError::Markov`] when the solver does not converge.
pub fn mean_lifetime_absorbing(
    disc: &crate::discretise::DiscretisedModel,
) -> Result<Time, KibamRmError> {
    use markov::absorbing::{mean_time_to_absorption, AbsorbingOptions};
    if disc.stats().states > 1_000_000 {
        return Err(KibamRmError::InvalidDiscretisation(format!(
            "absorbing-solver path guards at 10^6 states, got {}; \
             integrate the curve instead",
            disc.stats().states
        )));
    }
    let opts = AbsorbingOptions {
        tolerance: 1e-10,
        ..Default::default()
    };
    let m = mean_time_to_absorption(disc.chain(), &opts)?;
    let mean = disc
        .alpha()
        .iter()
        .zip(&m)
        .map(|(a, mi)| a * mi)
        .sum::<f64>();
    Ok(Time::from_seconds(mean))
}

/// Mean lifetime obtained by integrating a lifetime CDF curve:
/// `E[L] = ∫₀^∞ (1 − F(t)) dt`, truncated at the last grid point (so the
/// result is a lower bound when the curve has not reached 1).
///
/// The curve must be sampled as `(t_seconds, probability)` with
/// increasing `t`.
#[deprecated(since = "0.1.0", note = "use `LifetimeDistribution::mean` instead")]
pub fn mean_lifetime_from_curve(points: &[(f64, f64)]) -> Time {
    let mut acc = 0.0;
    for w in points.windows(2) {
        let dt = w[1].0 - w[0].0;
        let survival = 1.0 - 0.5 * (w[0].1 + w[1].1);
        acc += survival.max(0.0) * dt;
    }
    Time::from_seconds(acc)
}

/// The largest absolute difference between two curves sampled on the same
/// time grid (used to quantify `Δ`-refinement convergence against the
/// simulation reference, as in the paper's Figs. 7–8 discussion).
///
/// # Errors
///
/// [`KibamRmError::InvalidDiscretisation`] when the grids differ.
#[deprecated(
    since = "0.1.0",
    note = "use `LifetimeDistribution::max_difference` instead"
)]
pub fn max_curve_difference(a: &[(f64, f64)], b: &[(f64, f64)]) -> Result<f64, KibamRmError> {
    sup_distance(a, b)
}

/// Shared implementation of the sup-distance between two curves on the
/// same grid (used by the deprecated shims and the comparison report).
pub(crate) fn sup_distance(a: &[(f64, f64)], b: &[(f64, f64)]) -> Result<f64, KibamRmError> {
    if a.len() != b.len() || a.iter().zip(b).any(|(x, y)| (x.0 - y.0).abs() > 1e-9) {
        return Err(KibamRmError::InvalidDiscretisation(
            "curves must share the same time grid".into(),
        ));
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x.1 - y.1).abs())
        .fold(0.0, f64::max))
}

/// An equispaced time grid `0, …, t_max` with `points+1` samples — the
/// grids used by every figure-regeneration harness.
pub fn time_grid(t_max: Time, points: usize) -> Vec<Time> {
    (0..=points)
        .map(|i| Time::from_seconds(t_max.as_seconds() * i as f64 / points.max(1) as f64))
        .collect()
}

/// Cross-method validation report for one model: runs every applicable
/// method on a shared grid and reports the pairwise sup-distances.
///
/// This is the triple cross-check of the paper's §6 packaged as an API,
/// so users can validate *their own* workload models before trusting a
/// coarse-Δ approximation.
#[deprecated(since = "0.1.0", note = "use `SolverRegistry::cross_validate` instead")]
#[derive(Debug, Clone)]
pub struct MethodComparison {
    /// The shared `(t_seconds, p)` grid from the discretisation.
    pub approximation: Vec<(f64, f64)>,
    /// Simulation estimate on the same grid.
    pub simulation: Vec<(f64, f64)>,
    /// Exact (Sericola) curve — only for `c = 1` models.
    pub exact: Option<Vec<(f64, f64)>>,
    /// `sup |approximation − simulation|`.
    pub approx_vs_sim: f64,
    /// `sup |approximation − exact|` when the exact method applies.
    pub approx_vs_exact: Option<f64>,
    /// Number of simulation replications used.
    pub runs: usize,
}

/// Runs all applicable methods for `model` and compares them.
///
/// # Errors
///
/// Propagates discretisation/simulation errors (an all-censored
/// simulation study is the valid all-zero curve, not an error).
#[deprecated(since = "0.1.0", note = "use `SolverRegistry::cross_validate` instead")]
#[allow(deprecated)]
pub fn compare_methods(
    model: &KibamRm,
    disc: &crate::discretise::DiscretisedModel,
    times: &[Time],
    runs: usize,
    seed: u64,
) -> Result<MethodComparison, KibamRmError> {
    let horizon = times.iter().cloned().fold(Time::ZERO, Time::max);
    let approximation = disc.empty_probability_curve(times)?.points;
    let study = crate::simulate::lifetime_study(model, horizon, runs, seed)?;
    let simulation: Vec<(f64, f64)> = times
        .iter()
        .map(|t| (t.as_seconds(), study.empty_probability(t.as_seconds())))
        .collect();
    let approx_vs_sim = sup_distance(&approximation, &simulation)?;
    let (exact, approx_vs_exact) = if model.is_linear() {
        let e = exact_linear_curve(model, times)?;
        let d = sup_distance(&approximation, &e)?;
        (Some(e), Some(d))
    } else {
        (None, None)
    };
    Ok(MethodComparison {
        approximation,
        simulation,
        exact,
        approx_vs_sim,
        approx_vs_exact,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretise::{DiscretisationOptions, DiscretisedModel};
    use crate::simulate::lifetime_study;
    use crate::workload::Workload;
    use units::{Charge, Current, Frequency, Rate};

    /// A 100×-downscaled Fig. 7 battery (C = 72 As, lifetime ≈ 150 s):
    /// identical structure but νt stays ≈ 500, where Sericola's O((νt)²)
    /// recursion is test-suite friendly.
    fn linear_on_off() -> KibamRm {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        KibamRm::new(
            w,
            Charge::from_amp_seconds(72.0),
            1.0,
            Rate::per_second(0.0),
        )
        .unwrap()
    }

    #[test]
    fn exact_requires_linear() {
        let w = Workload::simple_model().unwrap();
        let m = KibamRm::new(
            w,
            Charge::from_milliamp_hours(800.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap();
        assert!(matches!(
            exact_linear_curve(&m, &[Time::from_hours(1.0)]),
            Err(KibamRmError::InvalidBattery(_))
        ));
    }

    #[test]
    fn exact_matches_simulation_on_off() {
        // Triple cross-validation, part 1: Sericola vs Monte Carlo.
        let m = linear_on_off();
        let horizon = Time::from_seconds(400.0);
        let study = lifetime_study(&m, horizon, 1500, 2024).unwrap();
        let times: Vec<Time> = (6..=24)
            .map(|i| Time::from_seconds(i as f64 * 10.0))
            .collect();
        let exact = exact_linear_curve(&m, &times).unwrap();
        for (t, p) in &exact {
            let sim = study.empty_probability(*t);
            // Binomial error at 1500 runs ≈ 0.013 (1σ); allow 4σ.
            assert!((p - sim).abs() < 0.05, "t = {t}: exact {p} vs sim {sim}");
        }
    }

    #[test]
    fn exact_matches_discretisation_on_off() {
        // Triple cross-validation, part 2: Sericola vs the paper's
        // Markovian approximation at a fine Δ.
        let m = linear_on_off();
        let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(0.25));
        let disc = DiscretisedModel::build(&m, &opts).unwrap();
        let times: Vec<Time> = (8..=20)
            .map(|i| Time::from_seconds(i as f64 * 10.0))
            .collect();
        let exact = exact_linear_curve(&m, &times).unwrap();
        let approx = disc.empty_probability_curve(&times).unwrap();
        for ((t, pe), (_, pa)) in exact.iter().zip(&approx.points) {
            // The paper's own Fig. 7 shows the phase-type approximation of
            // a near-deterministic lifetime converging slowly in Δ; at
            // 288 levels the two curves agree except at the steep centre.
            assert!((pe - pa).abs() < 0.15, "t = {t}: exact {pe} vs approx {pa}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn absorbing_mean_agrees_with_curve_integral() {
        // Full-size Fig. 7 battery (C = 7200 As): the absorbing solver
        // never touches Sericola, so the scale is fine here.
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let m = KibamRm::new(
            w,
            Charge::from_amp_seconds(7200.0),
            1.0,
            Rate::per_second(0.0),
        )
        .unwrap();
        let disc = DiscretisedModel::build(
            &m,
            &DiscretisationOptions::with_delta(Charge::from_amp_seconds(100.0)),
        )
        .unwrap();
        let algebraic = mean_lifetime_absorbing(&disc).unwrap();
        let times: Vec<Time> = (0..=600)
            .map(|i| Time::from_seconds(i as f64 * 50.0))
            .collect();
        let curve = disc.empty_probability_curve(&times).unwrap();
        let integrated = mean_lifetime_from_curve(&curve.points);
        let rel =
            (algebraic.as_seconds() - integrated.as_seconds()).abs() / integrated.as_seconds();
        assert!(
            rel < 0.01,
            "algebraic {algebraic} vs integrated {integrated}"
        );
        // Both near the deterministic 15000 s (phase-type smearing keeps
        // the mean almost exactly right even at coarse Δ).
        assert!(
            (algebraic.as_seconds() - 15_000.0).abs() < 400.0,
            "{algebraic}"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn mean_from_curve_exponential() {
        // F(t) = 1 − e^{-t}: E[L] = 1.
        let points: Vec<(f64, f64)> = (0..=4000)
            .map(|i| (i as f64 * 0.005, 1.0 - (-i as f64 * 0.005).exp()))
            .collect();
        let mean = mean_lifetime_from_curve(&points);
        assert!((mean.as_seconds() - 1.0).abs() < 2e-3, "{mean}");
    }

    #[test]
    #[allow(deprecated)]
    fn mean_from_degenerate_curve() {
        assert_eq!(mean_lifetime_from_curve(&[]).as_seconds(), 0.0);
        assert_eq!(mean_lifetime_from_curve(&[(0.0, 0.0)]).as_seconds(), 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn curve_difference() {
        let a = vec![(0.0, 0.1), (1.0, 0.5)];
        let b = vec![(0.0, 0.2), (1.0, 0.4)];
        assert!((max_curve_difference(&a, &b).unwrap() - 0.1).abs() < 1e-12);
        let c = vec![(0.0, 0.1)];
        assert!(max_curve_difference(&a, &c).is_err());
        let d = vec![(0.0, 0.1), (2.0, 0.5)];
        assert!(max_curve_difference(&a, &d).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn compare_methods_reports_small_distances() {
        let m = linear_on_off();
        let disc = DiscretisedModel::build(
            &m,
            &DiscretisationOptions::with_delta(Charge::from_amp_seconds(0.5)),
        )
        .unwrap();
        let times: Vec<Time> = (0..=20)
            .map(|i| Time::from_seconds(60.0 + i as f64 * 12.0))
            .collect();
        let cmp = compare_methods(&m, &disc, &times, 800, 31).unwrap();
        assert_eq!(cmp.runs, 800);
        assert_eq!(cmp.approximation.len(), times.len());
        assert_eq!(cmp.simulation.len(), times.len());
        assert!(cmp.exact.is_some(), "c = 1 model must get the exact curve");
        // Fine Δ: the approximation is close to both references.
        assert!(
            cmp.approx_vs_exact.unwrap() < 0.12,
            "{:?}",
            cmp.approx_vs_exact
        );
        assert!(cmp.approx_vs_sim < 0.15, "{}", cmp.approx_vs_sim);
    }

    #[test]
    #[allow(deprecated)]
    fn compare_methods_skips_exact_for_two_wells() {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let m = KibamRm::new(
            w,
            Charge::from_amp_seconds(72.0),
            0.625,
            Rate::per_second(4.5e-3),
        )
        .unwrap();
        let disc = DiscretisedModel::build(
            &m,
            &DiscretisationOptions::with_delta(Charge::from_amp_seconds(1.5)),
        )
        .unwrap();
        let times: Vec<Time> = (0..=10)
            .map(|i| Time::from_seconds(60.0 + i as f64 * 24.0))
            .collect();
        let cmp = compare_methods(&m, &disc, &times, 400, 32).unwrap();
        assert!(cmp.exact.is_none());
        assert!(cmp.approx_vs_exact.is_none());
        // 30 levels of a near-deterministic CDF smear heavily (the Fig. 8
        // phenomenon); the report must still quantify it sanely.
        assert!(cmp.approx_vs_sim < 0.5, "{}", cmp.approx_vs_sim);
    }

    #[test]
    fn grid_shape() {
        let g = time_grid(Time::from_seconds(10.0), 5);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0].as_seconds(), 0.0);
        assert_eq!(g[5].as_seconds(), 10.0);
        assert_eq!(g[1].as_seconds(), 2.0);
    }
}
