//! The solver result type: a sampled battery-lifetime distribution with
//! first-class operations.
//!
//! Every backend of [`crate::solver`] returns a [`LifetimeDistribution`]:
//! the curve `t ↦ Pr[battery empty at t]` sampled on the scenario's query
//! grid, tagged with the method that produced it and its cost
//! diagnostics. The operations that previously lived as loose helpers
//! (`mean_lifetime_from_curve`, `max_curve_difference`, manual
//! interpolation against `Vec<(f64, f64)>`) are methods here:
//! [`cdf`](LifetimeDistribution::cdf),
//! [`quantile`](LifetimeDistribution::quantile),
//! [`mean`](LifetimeDistribution::mean) and
//! [`max_difference`](LifetimeDistribution::max_difference).

use crate::KibamRmError;
use std::sync::Arc;
use units::{Charge, Time};

/// What a solve cost: filled in by each backend as applicable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveDiagnostics {
    /// States of the derived CTMC (discretisation only).
    pub states: Option<usize>,
    /// Non-zero generator entries (discretisation only).
    pub generator_nonzeros: Option<usize>,
    /// Matrix–vector products / uniformisation iterations.
    pub iterations: Option<usize>,
    /// The discretisation step that was used.
    pub delta: Option<Charge>,
    /// Simulation replications (simulation only).
    pub runs: Option<usize>,
    /// Largest 95% Wilson-score half-width over the query grid
    /// (simulation only): an explicit statistical error bound that
    /// degraded service answers surface to the caller.
    pub half_width: Option<f64>,
    /// Wall-clock seconds spent inside the solver.
    pub wall_seconds: f64,
}

/// A battery-lifetime distribution `t ↦ Pr[battery empty at t]` sampled
/// on a strictly increasing time grid.
///
/// The sampled curve is stored behind an [`Arc`], so `Clone` is O(1) and
/// never copies the grid — a cache hit in
/// [`crate::service::LifetimeService`] hands out a shared view of the
/// solved curve, not a deep copy. Equality still compares the sampled
/// values, not the allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeDistribution {
    method: &'static str,
    points: Arc<[(Time, f64)]>,
    diagnostics: SolveDiagnostics,
}

impl LifetimeDistribution {
    /// Builds a distribution from raw samples. Probabilities are clamped
    /// into `[0, 1]` (uniformisation and Sericola can stray by ~10⁻¹²).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidDiscretisation`] when the grid is empty or
    /// not strictly increasing, or a probability is non-finite or
    /// farther than 10⁻⁶ outside `[0, 1]`.
    pub fn new(
        method: &'static str,
        points: Vec<(Time, f64)>,
        diagnostics: SolveDiagnostics,
    ) -> Result<Self, KibamRmError> {
        if points.is_empty() {
            return Err(KibamRmError::InvalidDiscretisation(
                "a lifetime distribution needs at least one sample".into(),
            ));
        }
        for w in points.windows(2) {
            if !(w[1].0 > w[0].0) {
                return Err(KibamRmError::InvalidDiscretisation(format!(
                    "samples must be strictly increasing in t ({} then {})",
                    w[0].0, w[1].0
                )));
            }
        }
        let mut clamped = points;
        for (t, p) in &mut clamped {
            if !p.is_finite() || *p < -1e-6 || *p > 1.0 + 1e-6 {
                return Err(KibamRmError::InvalidDiscretisation(format!(
                    "Pr[empty at {t}] = {p} is not a probability"
                )));
            }
            *p = p.clamp(0.0, 1.0);
        }
        Ok(LifetimeDistribution {
            method,
            points: clamped.into(),
            diagnostics,
        })
    }

    /// Approximate resident size of this distribution in bytes: the
    /// shared curve storage plus the handle itself. This is what the
    /// [`crate::service::LifetimeService`] LRU budget charges per cached
    /// entry; cheap clones share the same curve allocation, so the
    /// service charges it once per cache slot, not once per handle.
    pub fn size_in_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + std::mem::size_of_val::<[(Time, f64)]>(&self.points)
    }

    /// The backend that produced this distribution.
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// Cost diagnostics.
    pub fn diagnostics(&self) -> &SolveDiagnostics {
        &self.diagnostics
    }

    /// The sampled `(t, Pr[empty at t])` points.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// The samples as `(t_seconds, p)` pairs (the CSV/report shape).
    pub fn points_seconds(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|(t, p)| (t.as_seconds(), *p))
            .collect()
    }

    /// The query grid.
    pub fn times(&self) -> impl Iterator<Item = Time> + '_ {
        self.points.iter().map(|(t, _)| *t)
    }

    /// `Pr[battery empty at t]`, linearly interpolated between samples
    /// and clamped to the first/last sample outside the grid.
    pub fn cdf(&self, t: Time) -> f64 {
        let s = t.as_seconds();
        let first = self.points.first().expect("validated non-empty");
        let last = self.points.last().expect("validated non-empty");
        if s <= first.0.as_seconds() {
            return first.1;
        }
        if s >= last.0.as_seconds() {
            return last.1;
        }
        let idx = self.points.partition_point(|(pt, _)| pt.as_seconds() <= s);
        let (t0, p0) = self.points[idx - 1];
        let (t1, p1) = self.points[idx];
        let (t0, t1) = (t0.as_seconds(), t1.as_seconds());
        p0 + (p1 - p0) * (s - t0) / (t1 - t0)
    }

    /// The first grid-interpolated time with `Pr[empty] ≥ q`, or `None`
    /// when the curve never reaches `q` on the grid.
    pub fn quantile(&self, q: f64) -> Option<Time> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let (mut prev_t, mut prev_p) = self.points[0];
        if prev_p >= q {
            return Some(prev_t);
        }
        for &(t, p) in &self.points[1..] {
            if p >= q {
                // Linear inverse interpolation inside the bracket
                // (p > prev_p here: every earlier point had prev_p < q).
                let f = (q - prev_p) / (p - prev_p);
                let s = prev_t.as_seconds() + f * (t.as_seconds() - prev_t.as_seconds());
                return Some(Time::from_seconds(s));
            }
            prev_t = t;
            prev_p = p;
        }
        None
    }

    /// The median lifetime (the 50 % crossing), when reached.
    pub fn median(&self) -> Option<Time> {
        self.quantile(0.5)
    }

    /// Mean lifetime by integrating the survival function,
    /// `E[L] = ∫₀^∞ (1 − F(t)) dt`, truncated at the last grid point —
    /// a lower bound when the curve has not reached 1.
    pub fn mean(&self) -> Time {
        let mut acc = 0.0;
        // The curve implicitly starts at (0, F(t₀)): charge for the
        // leading segment if the grid does not start at zero.
        let first = self.points[0];
        if first.0.as_seconds() > 0.0 {
            acc += (1.0 - first.1).max(0.0) * first.0.as_seconds();
        }
        for w in self.points.windows(2) {
            let dt = w[1].0.as_seconds() - w[0].0.as_seconds();
            let survival = 1.0 - 0.5 * (w[0].1 + w[1].1);
            acc += survival.max(0.0) * dt;
        }
        Time::from_seconds(acc)
    }

    /// The largest pointwise difference against another distribution on
    /// the **same** grid (the paper's Δ-refinement and cross-validation
    /// metric).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidDiscretisation`] when the grids differ.
    pub fn max_difference(&self, other: &LifetimeDistribution) -> Result<f64, KibamRmError> {
        if self.points.len() != other.points.len()
            || self
                .points
                .iter()
                .zip(other.points.iter())
                .any(|((a, _), (b, _))| (a.as_seconds() - b.as_seconds()).abs() > 1e-9)
        {
            return Err(KibamRmError::InvalidDiscretisation(
                "distributions must share the same time grid".into(),
            ));
        }
        Ok(self
            .points
            .iter()
            .zip(other.points.iter())
            .map(|((_, a), (_, b))| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Renders the distribution as a labelled report curve (x = seconds).
    pub fn to_curve(&self, label: impl Into<String>) -> crate::report::Curve {
        crate::report::Curve::new(label, self.points_seconds())
    }

    /// Renders the distribution with the x-axis in hours (the unit most
    /// of the paper's figures use).
    pub fn to_curve_hours(&self, label: impl Into<String>) -> crate::report::Curve {
        crate::report::Curve::new(
            label,
            self.points
                .iter()
                .map(|(t, p)| (t.as_hours(), *p))
                .collect(),
        )
    }
}

/// One labelled slot of a grid sweep.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// The expanded scenario's label (its grid-point name).
    pub label: String,
    /// The solve outcome for that point.
    pub result: Result<LifetimeDistribution, KibamRmError>,
}

/// The labelled result set of a grid sweep: one entry per expanded
/// scenario, in grid order, with the cross-grid summary tables the
/// paper's comparisons are made of (quantiles and mean lifetimes per
/// point). Built by
/// [`SolverRegistry::sweep_grid`](crate::solver::SolverRegistry::sweep_grid).
#[derive(Debug, Clone)]
pub struct SweepResultSet {
    entries: Vec<SweepEntry>,
}

impl SweepResultSet {
    /// Pairs labels with results (both in grid order).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] when the lengths differ.
    pub fn new(
        labels: Vec<String>,
        results: Vec<Result<LifetimeDistribution, KibamRmError>>,
    ) -> Result<Self, KibamRmError> {
        if labels.len() != results.len() {
            return Err(KibamRmError::InvalidWorkload(format!(
                "{} labels for {} sweep results",
                labels.len(),
                results.len()
            )));
        }
        Ok(SweepResultSet {
            entries: labels
                .into_iter()
                .zip(results)
                .map(|(label, result)| SweepEntry { label, result })
                .collect(),
        })
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` for an empty grid.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in grid order.
    pub fn entries(&self) -> &[SweepEntry] {
        &self.entries
    }

    /// The distribution computed for `label`, when that point succeeded.
    pub fn get(&self, label: &str) -> Option<&LifetimeDistribution> {
        self.entries
            .iter()
            .find(|e| e.label == label)
            .and_then(|e| e.result.as_ref().ok())
    }

    /// The successful points as `(label, distribution)` pairs.
    pub fn distributions(&self) -> impl Iterator<Item = (&str, &LifetimeDistribution)> {
        self.entries
            .iter()
            .filter_map(|e| e.result.as_ref().ok().map(|d| (e.label.as_str(), d)))
    }

    /// The failed points as `(label, error)` pairs.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &KibamRmError)> {
        self.entries
            .iter()
            .filter_map(|e| e.result.as_ref().err().map(|err| (e.label.as_str(), err)))
    }

    /// Mean lifetime per grid point (`None` for failed points) — the
    /// one-number-per-point comparison table.
    pub fn mean_table(&self) -> Vec<(&str, Option<Time>)> {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.label.as_str(),
                    e.result.as_ref().ok().map(LifetimeDistribution::mean),
                )
            })
            .collect()
    }

    /// Quantile crossings per grid point: for each entry, the times at
    /// which its CDF reaches each requested level (`None` when the point
    /// failed or its curve never reaches the level on the grid).
    pub fn quantile_table(&self, levels: &[f64]) -> Vec<(&str, Vec<Option<Time>>)> {
        self.entries
            .iter()
            .map(|e| {
                let row = match &e.result {
                    Ok(d) => levels.iter().map(|&q| d.quantile(q)).collect(),
                    Err(_) => vec![None; levels.len()],
                };
                (e.label.as_str(), row)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(points: &[(f64, f64)]) -> LifetimeDistribution {
        LifetimeDistribution::new(
            "test",
            points
                .iter()
                .map(|&(t, p)| (Time::from_seconds(t), p))
                .collect(),
            SolveDiagnostics::default(),
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(LifetimeDistribution::new("m", vec![], SolveDiagnostics::default()).is_err());
        // Non-increasing grid.
        assert!(LifetimeDistribution::new(
            "m",
            vec![
                (Time::from_seconds(1.0), 0.0),
                (Time::from_seconds(1.0), 0.5)
            ],
            SolveDiagnostics::default()
        )
        .is_err());
        // Out-of-range probability.
        assert!(LifetimeDistribution::new(
            "m",
            vec![(Time::from_seconds(1.0), 1.5)],
            SolveDiagnostics::default()
        )
        .is_err());
        assert!(LifetimeDistribution::new(
            "m",
            vec![(Time::from_seconds(1.0), f64::NAN)],
            SolveDiagnostics::default()
        )
        .is_err());
        // Tiny numerical overshoot is clamped, not rejected.
        let d = LifetimeDistribution::new(
            "m",
            vec![(Time::from_seconds(1.0), 1.0 + 1e-9)],
            SolveDiagnostics::default(),
        )
        .unwrap();
        assert_eq!(d.points()[0].1, 1.0);
    }

    #[test]
    fn cdf_interpolates_and_clamps() {
        let d = dist(&[(10.0, 0.0), (20.0, 0.5), (30.0, 1.0)]);
        assert_eq!(d.cdf(Time::from_seconds(0.0)), 0.0);
        assert_eq!(d.cdf(Time::from_seconds(10.0)), 0.0);
        assert!((d.cdf(Time::from_seconds(15.0)) - 0.25).abs() < 1e-12);
        assert!((d.cdf(Time::from_seconds(20.0)) - 0.5).abs() < 1e-12);
        assert!((d.cdf(Time::from_seconds(25.0)) - 0.75).abs() < 1e-12);
        assert_eq!(d.cdf(Time::from_seconds(99.0)), 1.0);
    }

    #[test]
    fn quantiles_invert_the_cdf() {
        let d = dist(&[(10.0, 0.0), (20.0, 0.5), (30.0, 1.0)]);
        assert!((d.quantile(0.25).unwrap().as_seconds() - 15.0).abs() < 1e-9);
        assert!((d.median().unwrap().as_seconds() - 20.0).abs() < 1e-9);
        assert!((d.quantile(1.0).unwrap().as_seconds() - 30.0).abs() < 1e-9);
        assert_eq!(d.quantile(0.0).unwrap(), Time::from_seconds(10.0));
        assert_eq!(d.quantile(1.5), None);
        let partial = dist(&[(10.0, 0.0), (20.0, 0.3)]);
        assert_eq!(partial.quantile(0.9), None);
    }

    #[test]
    fn quantile_handles_flat_segments() {
        let d = dist(&[(0.0, 0.0), (10.0, 0.5), (20.0, 0.5), (30.0, 1.0)]);
        let m = d.median().unwrap().as_seconds();
        assert!((10.0..=20.0).contains(&m), "median {m}");
    }

    #[test]
    fn mean_of_exponential_cdf() {
        // F(t) = 1 − e^{-t}: E[L] = 1.
        let points: Vec<(f64, f64)> = (0..=4000)
            .map(|i| (i as f64 * 0.005, 1.0 - (-(i as f64) * 0.005).exp()))
            .collect();
        let d = dist(&points);
        assert!((d.mean().as_seconds() - 1.0).abs() < 2e-3);
    }

    #[test]
    fn mean_accounts_for_grid_not_starting_at_zero() {
        // Step CDF that is 0 until t = 100 then jumps to 1: mean 100,
        // even when the first sample sits at t = 50.
        let d = dist(&[(50.0, 0.0), (100.0, 0.0), (100.0 + 1e-9, 1.0)]);
        assert!((d.mean().as_seconds() - 100.0).abs() < 1e-3);
    }

    #[test]
    fn max_difference_requires_shared_grid() {
        let a = dist(&[(0.0, 0.1), (1.0, 0.5)]);
        let b = dist(&[(0.0, 0.2), (1.0, 0.4)]);
        assert!((a.max_difference(&b).unwrap() - 0.1).abs() < 1e-12);
        let c = dist(&[(0.0, 0.1)]);
        assert!(a.max_difference(&c).is_err());
        let d = dist(&[(0.0, 0.1), (2.0, 0.5)]);
        assert!(a.max_difference(&d).is_err());
    }

    #[test]
    fn sweep_result_set_tables_and_lookup() {
        let a = dist(&[(10.0, 0.0), (20.0, 0.5), (30.0, 1.0)]);
        let b = dist(&[(10.0, 0.2), (20.0, 0.8), (30.0, 1.0)]);
        let err = KibamRmError::InvalidDiscretisation("Δ divides nothing".into());
        let set = SweepResultSet::new(
            vec!["fine".into(), "coarse".into(), "broken".into()],
            vec![Ok(a.clone()), Ok(b), Err(err)],
        )
        .unwrap();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.entries().len(), 3);
        assert_eq!(set.get("fine").unwrap().points(), a.points());
        assert!(set.get("broken").is_none());
        assert!(set.get("missing").is_none());
        assert_eq!(set.distributions().count(), 2);
        let failures: Vec<_> = set.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "broken");

        let means = set.mean_table();
        assert_eq!(means.len(), 3);
        assert!(
            means[0].1.unwrap() > means[1].1.unwrap(),
            "a survives longer"
        );
        assert!(means[2].1.is_none());

        let q = set.quantile_table(&[0.5, 0.99]);
        assert_eq!(q[0].0, "fine");
        assert!((q[0].1[0].unwrap().as_seconds() - 20.0).abs() < 1e-9);
        assert!(q[0].1[1].is_some());
        assert_eq!(q[2].1, vec![None, None]);

        // Length mismatch is rejected.
        assert!(SweepResultSet::new(vec!["x".into()], vec![]).is_err());
    }

    #[test]
    fn clones_share_curve_storage_and_size_counts_it_once() {
        let d = dist(&[(10.0, 0.0), (20.0, 0.5), (30.0, 1.0)]);
        let c = d.clone();
        // A clone is a shared view of the same allocation, not a copy —
        // the cache-hit contract of the resident service.
        assert!(std::ptr::eq(d.points().as_ptr(), c.points().as_ptr()));
        assert_eq!(d, c);
        // The size accessor charges the handle plus the curve samples.
        let expected =
            std::mem::size_of::<LifetimeDistribution>() + 3 * std::mem::size_of::<(Time, f64)>();
        assert_eq!(d.size_in_bytes(), expected);
        assert_eq!(c.size_in_bytes(), expected);
    }

    #[test]
    fn report_bridges() {
        let d = dist(&[(3600.0, 0.25), (7200.0, 0.75)]);
        let c = d.to_curve("p");
        assert_eq!(c.label, "p");
        assert_eq!(c.points, vec![(3600.0, 0.25), (7200.0, 0.75)]);
        let h = d.to_curve_hours("p");
        assert_eq!(h.points, vec![(1.0, 0.25), (2.0, 0.75)]);
        assert_eq!(d.points_seconds(), vec![(3600.0, 0.25), (7200.0, 0.75)]);
        assert_eq!(d.method(), "test");
        assert_eq!(d.times().count(), 2);
    }
}
