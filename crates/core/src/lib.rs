//! # kibamrm — battery lifetime distributions for stochastic workloads
//!
//! This crate is the primary contribution of *"Computing Battery Lifetime
//! Distributions"* (L. Cloth, M. R. Jongerden, B. R. Haverkort, DSN 2007):
//! the **KiBaMRM**, a reward-inhomogeneous Markov reward model that couples
//! the Kinetic Battery Model to a CTMC workload, and the algorithms that
//! compute the battery lifetime distribution `Pr[battery empty at t]`
//! from it.
//!
//! ## The pipeline: Scenario → Solver → Distribution
//!
//! Everything revolves around one question asked of one value type:
//!
//! 1. **Describe the scenario once.** A [`scenario::Scenario`] bundles
//!    the workload (a CTMC whose states draw current — build your own
//!    with [`builder::WorkloadBuilder`] or use the paper's models from
//!    [`workload::Workload`]), the battery parameters (capacity `C`,
//!    available fraction `c`, flow constant `k`) and the query time
//!    grid. Scenarios are data: clone-and-vary them into grids, or
//!    round-trip them through a plain-text config
//!    ([`scenario::Scenario::to_config_string`]).
//! 2. **Pick a solver — or let the registry pick.** Each of the paper's
//!    three methods implements [`solver::LifetimeSolver`]:
//!    [`solver::DiscretisationSolver`] (§5 discretisation +
//!    uniformisation), [`solver::SimulationSolver`] (stochastic
//!    simulation of the exact dynamics) and [`solver::SericolaSolver`]
//!    (Sericola's exact algorithm, `c = 1` only).
//!    [`solver::SolverRegistry::auto`] selects the best applicable
//!    backend; [`solver::SolverRegistry::sweep`] batch-solves scenario
//!    grids through a structure-sharing [`sweep::SweepPlan`]
//!    (deduplication, per-group pattern reuse, shared uniformisation
//!    sweeps for rate-rescaled families — bit-identical to independent
//!    solves under a matching thread budget);
//!    [`sweep::ScenarioGrid`] builds labelled cartesian
//!    families for it, and
//!    [`solver::SolverRegistry::cross_validate`] runs every applicable
//!    method and reports how far apart they are.
//! 3. **Work with the distribution.** Solvers return a
//!    [`distribution::LifetimeDistribution`] with first-class operations:
//!    CDF evaluation, quantiles, mean lifetime, sup-distance between
//!    curves, and CSV bridging via [`report`].
//!
//! The lower layers remain public for power users: [`model::KibamRm`]
//! couples a workload to a battery, [`discretise::DiscretisedModel`] is
//! the §5 derived CTMC, [`simulate`] the raw Monte Carlo engine and
//! [`analysis`] the exact `c = 1` curve plus mean-lifetime utilities.
//!
//! # Examples
//!
//! ```
//! use kibamrm::scenario::Scenario;
//! use kibamrm::solver::SolverRegistry;
//! use kibamrm::workload::Workload;
//! use units::{Charge, Rate, Time};
//!
//! // The paper's simple cell-phone workload on an 800 mAh battery,
//! // queried every hour for 30 h. Coarse Δ keeps the doctest fast.
//! let scenario = Scenario::builder()
//!     .workload(Workload::simple_model().unwrap())
//!     .capacity(Charge::from_milliamp_hours(800.0))
//!     .kibam(0.625, Rate::per_second(4.5e-5))
//!     .time_grid(Time::from_hours(30.0), 30)
//!     .delta(Charge::from_milliamp_hours(50.0))
//!     .build()
//!     .unwrap();
//!
//! let registry = SolverRegistry::with_default_backends();
//! let dist = registry.solve(&scenario).unwrap();   // picks discretisation
//! assert!(dist.cdf(Time::from_hours(5.0)) < 0.05); // alive early...
//! assert!(dist.cdf(Time::from_hours(30.0)) > 0.95); // ...dead by 30 h
//! assert!(dist.median().unwrap() > Time::from_hours(10.0));
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod chaos;
pub mod discretise;
pub mod distribution;
pub mod model;
pub mod report;
pub mod scenario;
pub mod service;
pub mod simulate;
pub mod snapshot;
pub mod solver;
pub mod sweep;
pub mod workload;

mod error;

pub use chaos::{ChaosConfig, ChaosLedger, FaultInjectingSolver};
pub use distribution::{LifetimeDistribution, SolveDiagnostics, SweepEntry, SweepResultSet};
pub use error::KibamRmError;
pub use scenario::{Scenario, ScenarioBuilder};
pub use service::{
    Answer, DegradedSource, LifetimeService, QueryOptions, RetryPolicy, ServiceConfig,
    ServiceError, ServiceStats,
};
pub use snapshot::{SnapshotError, SnapshotLoadReport, SnapshotWriteReport};
pub use solver::{
    Capability, CrossValidation, DiscretisationSolver, GroupState, LifetimeSolver, SericolaSolver,
    SimulationSolver, SolverRegistry,
};
pub use sweep::{ScenarioGrid, SweepPlan};
