//! # kibamrm — battery lifetime distributions for stochastic workloads
//!
//! This crate is the primary contribution of *"Computing Battery Lifetime
//! Distributions"* (L. Cloth, M. R. Jongerden, B. R. Haverkort, DSN 2007):
//! the **KiBaMRM**, a reward-inhomogeneous Markov reward model that couples
//! the Kinetic Battery Model to a CTMC workload, and the **Markovian
//! approximation algorithm** that computes the battery lifetime
//! distribution `Pr[battery empty at t]` from it.
//!
//! The pipeline:
//!
//! 1. Describe the device as a [`workload::Workload`]: a CTMC whose states
//!    carry energy-consumption currents. The paper's three models —
//!    Erlang on/off (Fig. 3), the simple cell-phone model (Fig. 4) and the
//!    burst model (Fig. 5) — ship as constructors.
//! 2. Couple it to a battery with [`model::KibamRm`] (capacity `C`,
//!    available-charge fraction `c`, flow constant `k`).
//! 3. Compute the lifetime distribution:
//!    * [`discretise::DiscretisedModel`] — the paper's §5 algorithm:
//!      discretise both charge wells with step `Δ`, build the derived
//!      CTMC, make the empty states absorbing, and extract
//!      `Pr[empty at t]` by uniformisation;
//!    * [`simulate`] — stochastic simulation of the exact KiBaMRM
//!      dynamics (closed-form KiBaM stepping inside workload sojourns);
//!    * [`analysis::exact_linear_curve`] — Sericola's exact algorithm for
//!      the degenerate `c = 1` case (Fig. 10's rightmost curve).
//!
//! # Examples
//!
//! ```
//! use kibamrm::model::KibamRm;
//! use kibamrm::workload::Workload;
//! use kibamrm::discretise::{DiscretisedModel, DiscretisationOptions};
//! use units::{Charge, Rate, Time};
//!
//! // The paper's simple cell-phone workload on an 800 mAh battery.
//! let workload = Workload::simple_model().unwrap();
//! let model = KibamRm::new(
//!     workload,
//!     Charge::from_milliamp_hours(800.0),
//!     0.625,
//!     Rate::per_second(4.5e-5),
//! ).unwrap();
//!
//! // Coarse discretisation for the doctest; the paper uses Δ down to 2 mAh.
//! let opts = DiscretisationOptions::with_delta(Charge::from_milliamp_hours(50.0));
//! let disc = DiscretisedModel::build(&model, &opts).unwrap();
//! let curve = disc
//!     .empty_probability_curve(&[Time::from_hours(5.0), Time::from_hours(30.0)])
//!     .unwrap();
//! assert!(curve.points[0].1 < 0.05);     // alive early...
//! assert!(curve.points[1].1 > 0.95);     // ...dead by 30 h
//! ```

pub mod analysis;
pub mod builder;
pub mod discretise;
pub mod model;
pub mod report;
pub mod simulate;
pub mod workload;

mod error;

pub use error::KibamRmError;
