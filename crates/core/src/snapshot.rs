//! Crash-safe result-cache snapshots: the binary format and the atomic
//! file protocol behind
//! [`LifetimeService::save_snapshot`](crate::service::LifetimeService::save_snapshot)
//! and
//! [`LifetimeService::load_snapshot`](crate::service::LifetimeService::load_snapshot).
//!
//! A snapshot is a *hint*, never an authority: every entry it carries is
//! re-keyed through
//! [`Scenario::canonical_bytes`](crate::scenario::Scenario::canonical_bytes)
//! and re-validated through
//! [`LifetimeDistribution::new`](crate::distribution::LifetimeDistribution::new)
//! on load, so a corrupted or
//! stale snapshot can cost a cold start but can never produce a wrong
//! answer. The file protocol is designed for the ugly failure modes of
//! a crashing process:
//!
//! * **Torn writes.** The snapshot is written to a temporary sibling,
//!   `fsync`ed, then `rename`d over the target (and the directory is
//!   synced best-effort). A crash mid-write leaves the previous
//!   snapshot — or nothing — in place, never a half-file under the
//!   real name.
//! * **Truncation and bit flips.** The header carries the payload
//!   length and an FNV-1a 64 checksum of the payload; any mismatch
//!   rejects the whole file with a typed [`SnapshotError`] and the
//!   service starts cold.
//! * **Version skew.** The header carries a format version; a snapshot
//!   from a different format is rejected (`VersionSkew`), not
//!   misparsed.
//! * **Hostile lengths.** Every length field is bounds-checked against
//!   both the remaining payload and a hard cap before any allocation,
//!   so a flipped length byte cannot make the loader allocate
//!   unboundedly.
//!
//! The wire layout (all integers little-endian, all floats IEEE-754
//! bit patterns — the round-trip is bit-exact):
//!
//! ```text
//! magic    8  b"KBRMSNAP"
//! version  4  u32 (currently 1)
//! length   8  u64: payload byte count
//! checksum 8  u64: FNV-1a 64 of the payload
//! payload:
//!   count  4  u32: entry count
//!   entry*:
//!     scenario  4 + n  canonical config text (the cache key itself —
//!                      a parseable `# kibamrm scenario v1` document)
//!     method    2 + n  backend name
//!     diag      1 + …  presence bitmask, then the present fields in
//!                      order: states u64, nonzeros u64, iterations
//!                      u64, delta f64 (coulombs), runs u64,
//!                      half_width f64; then wall_seconds f64
//!     points    4 + 16n  (t seconds f64, probability f64) samples
//! ```
//!
//! Entries are ordered least-recently-used first, so replaying them
//! into the cache in file order reproduces the recency order the
//! process died with.

use crate::distribution::SolveDiagnostics;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use units::Charge;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"KBRMSNAP";
/// The current format version.
pub const VERSION: u32 = 1;
/// Header size: magic + version + payload length + checksum.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Per-entry cap on the canonical scenario text (a real config is a few
/// hundred bytes; anything near this is garbage).
const MAX_SCENARIO_BYTES: usize = 1 << 20;
/// Cap on the backend-name length.
const MAX_METHOD_BYTES: usize = 64;
/// Cap on samples per entry.
const MAX_POINTS: usize = 1 << 20;
/// Cap on entries per snapshot.
const MAX_ENTRIES: usize = 1 << 20;

/// Why a snapshot file (or one of its entries) was rejected.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file failed structural validation: bad magic, length or
    /// checksum mismatch, truncated or over-long payload, or an entry
    /// that does not decode. The message says which check failed.
    Corrupt(String),
    /// The file is a snapshot, but of a different format version.
    VersionSkew {
        /// The version the file claims.
        found: u32,
    },
    /// The in-memory entries cannot be represented in the format (a
    /// length field overflows its wire width). The message says which
    /// field.
    Unencodable(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot rejected: {msg}"),
            SnapshotError::VersionSkew { found } => write!(
                f,
                "snapshot rejected: format version {found} (this build reads {VERSION})"
            ),
            SnapshotError::Unencodable(msg) => {
                write!(f, "snapshot unencodable: {msg}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// One cache entry in transit: the canonical scenario text (which is
/// the cache key), the backend that solved it, and the raw curve.
/// Everything a loader needs to re-derive — and therefore re-validate —
/// the resident [`crate::LifetimeDistribution`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// The scenario's canonical config bytes (UTF-8, parseable).
    pub scenario: Vec<u8>,
    /// The backend name the curve came from.
    pub method: String,
    /// The solve diagnostics, verbatim.
    pub diagnostics: SolveDiagnostics,
    /// The sampled curve as `(t_seconds, probability)` pairs.
    pub points: Vec<(f64, f64)>,
}

/// What [`LifetimeService::save_snapshot`](crate::service::LifetimeService::save_snapshot)
/// did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotWriteReport {
    /// Cache entries written to the file.
    pub entries: usize,
    /// Bytes of the finished snapshot file.
    pub bytes: usize,
}

/// What [`LifetimeService::load_snapshot`](crate::service::LifetimeService::load_snapshot)
/// found. Loading never fails the caller: a missing or corrupt file is
/// a cold start, reported here and in the
/// [`ServiceStats`](crate::service::ServiceStats) snapshot counters.
#[derive(Debug, Default)]
pub struct SnapshotLoadReport {
    /// Entries revived into the result cache.
    pub loaded: usize,
    /// Entries (or, for file-level failures, files) rejected.
    pub rejected: usize,
    /// The file-level rejection, when the whole snapshot was refused.
    pub error: Option<SnapshotError>,
}

impl SnapshotLoadReport {
    /// `true` when nothing was revived (missing file, rejected file, or
    /// every entry rejected).
    pub fn is_cold(&self) -> bool {
        self.loaded == 0
    }
}

/// FNV-1a 64-bit over `bytes` — small, dependency-free, and plenty to
/// catch truncation and bit flips (this is corruption *detection*, not
/// an integrity MAC; the threat model is a crashing disk, not an
/// attacker with write access to the snapshot directory).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A bounds-checked cursor over the payload: every read is validated
/// against the remaining bytes, so no input can make decoding read out
/// of bounds or allocate more than the payload it arrived with.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(SnapshotError::Corrupt(format!(
                "truncated payload: {what} needs {n} bytes, {} remain",
                self.bytes.len() - self.at
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn widen(v: usize) -> u64 {
    // CAST-OK: usize is at most 64 bits on every supported target, so
    // widening to u64 never truncates.
    v as u64
}

fn small(v: u32) -> usize {
    // CAST-OK: u32 -> usize is lossless on the >=32-bit targets this
    // crate supports.
    v as usize
}

/// A u64 count read from the wire, bounded by what fits in memory on
/// this target. Hostile values larger than `usize::MAX` are a
/// corruption, not a truncation.
fn wire_count(v: u64, what: &str) -> Result<usize, SnapshotError> {
    usize::try_from(v)
        .map_err(|_| SnapshotError::Corrupt(format!("{what} {v} does not fit this target")))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

const DIAG_STATES: u8 = 1 << 0;
const DIAG_NONZEROS: u8 = 1 << 1;
const DIAG_ITERATIONS: u8 = 1 << 2;
const DIAG_DELTA: u8 = 1 << 3;
const DIAG_RUNS: u8 = 1 << 4;
const DIAG_HALF_WIDTH: u8 = 1 << 5;
const DIAG_KNOWN: u8 =
    DIAG_STATES | DIAG_NONZEROS | DIAG_ITERATIONS | DIAG_DELTA | DIAG_RUNS | DIAG_HALF_WIDTH;

/// Encodes `entries` into a complete snapshot file image (header
/// included). Fails with [`SnapshotError::Unencodable`] when a length
/// overflows its wire width — the same bound the reader enforces, so a
/// file this function writes always decodes.
pub fn encode(entries: &[SnapshotEntry]) -> Result<Vec<u8>, SnapshotError> {
    let too_big =
        |what: &str| SnapshotError::Unencodable(format!("{what} overflows its wire width"));
    let mut payload = Vec::new();
    let count = u32::try_from(entries.len()).map_err(|_| too_big("entry count"))?;
    put_u32(&mut payload, count);
    for e in entries {
        let scenario_len =
            u32::try_from(e.scenario.len()).map_err(|_| too_big("scenario length"))?;
        put_u32(&mut payload, scenario_len);
        payload.extend_from_slice(&e.scenario);
        let method_len = u16::try_from(e.method.len()).map_err(|_| too_big("method length"))?;
        payload.extend_from_slice(&method_len.to_le_bytes());
        payload.extend_from_slice(e.method.as_bytes());
        let d = &e.diagnostics;
        let mut mask = 0u8;
        for (bit, present) in [
            (DIAG_STATES, d.states.is_some()),
            (DIAG_NONZEROS, d.generator_nonzeros.is_some()),
            (DIAG_ITERATIONS, d.iterations.is_some()),
            (DIAG_DELTA, d.delta.is_some()),
            (DIAG_RUNS, d.runs.is_some()),
            (DIAG_HALF_WIDTH, d.half_width.is_some()),
        ] {
            if present {
                mask |= bit;
            }
        }
        payload.push(mask);
        if let Some(v) = d.states {
            put_u64(&mut payload, widen(v));
        }
        if let Some(v) = d.generator_nonzeros {
            put_u64(&mut payload, widen(v));
        }
        if let Some(v) = d.iterations {
            put_u64(&mut payload, widen(v));
        }
        if let Some(v) = d.delta {
            put_f64(&mut payload, v.as_coulombs());
        }
        if let Some(v) = d.runs {
            put_u64(&mut payload, widen(v));
        }
        if let Some(v) = d.half_width {
            put_f64(&mut payload, v);
        }
        put_f64(&mut payload, d.wall_seconds);
        let n_points = u32::try_from(e.points.len()).map_err(|_| too_big("point count"))?;
        put_u32(&mut payload, n_points);
        for &(t, p) in &e.points {
            put_f64(&mut payload, t);
            put_f64(&mut payload, p);
        }
    }
    let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
    file.extend_from_slice(&MAGIC);
    put_u32(&mut file, VERSION);
    put_u64(&mut file, widen(payload.len()));
    put_u64(&mut file, fnv1a64(&payload));
    file.extend_from_slice(&payload);
    Ok(file)
}

/// Decodes a complete snapshot file image. Rejects (never panics on)
/// any malformed input: bad magic, version skew, length or checksum
/// mismatch, truncated entries, hostile length fields.
pub fn decode(bytes: &[u8]) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Corrupt(format!(
            "file too short for a header: {} bytes",
            bytes.len()
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::VersionSkew { found: version });
    }
    let length = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if length != widen(payload.len()) {
        return Err(SnapshotError::Corrupt(format!(
            "payload length mismatch: header says {length}, file carries {}",
            payload.len()
        )));
    }
    if fnv1a64(payload) != checksum {
        return Err(SnapshotError::Corrupt("checksum mismatch".into()));
    }
    let mut cur = Cursor {
        bytes: payload,
        at: 0,
    };
    let count = small(cur.u32("entry count")?);
    if count > MAX_ENTRIES {
        return Err(SnapshotError::Corrupt(format!(
            "entry count {count} exceeds the cap {MAX_ENTRIES}"
        )));
    }
    let mut entries = Vec::new();
    for i in 0..count {
        let scenario_len = small(cur.u32("scenario length")?);
        if scenario_len > MAX_SCENARIO_BYTES {
            return Err(SnapshotError::Corrupt(format!(
                "entry {i}: scenario length {scenario_len} exceeds the cap"
            )));
        }
        let scenario = cur.take(scenario_len, "scenario text")?.to_vec();
        let method_len = usize::from(cur.u16("method length")?);
        if method_len > MAX_METHOD_BYTES {
            return Err(SnapshotError::Corrupt(format!(
                "entry {i}: method length {method_len} exceeds the cap"
            )));
        }
        let method = String::from_utf8(cur.take(method_len, "method name")?.to_vec())
            .map_err(|_| SnapshotError::Corrupt(format!("entry {i}: method is not UTF-8")))?;
        let mask = cur.u8("diagnostics mask")?;
        if mask & !DIAG_KNOWN != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "entry {i}: unknown diagnostics bits {mask:#04x}"
            )));
        }
        let mut diagnostics = SolveDiagnostics::default();
        if mask & DIAG_STATES != 0 {
            diagnostics.states = Some(wire_count(cur.u64("states")?, "states")?);
        }
        if mask & DIAG_NONZEROS != 0 {
            diagnostics.generator_nonzeros = Some(wire_count(cur.u64("nonzeros")?, "nonzeros")?);
        }
        if mask & DIAG_ITERATIONS != 0 {
            diagnostics.iterations = Some(wire_count(cur.u64("iterations")?, "iterations")?);
        }
        if mask & DIAG_DELTA != 0 {
            diagnostics.delta = Some(Charge::from_coulombs(cur.f64("delta")?));
        }
        if mask & DIAG_RUNS != 0 {
            diagnostics.runs = Some(wire_count(cur.u64("runs")?, "runs")?);
        }
        if mask & DIAG_HALF_WIDTH != 0 {
            diagnostics.half_width = Some(cur.f64("half width")?);
        }
        diagnostics.wall_seconds = cur.f64("wall seconds")?;
        let n_points = small(cur.u32("point count")?);
        if n_points > MAX_POINTS {
            return Err(SnapshotError::Corrupt(format!(
                "entry {i}: point count {n_points} exceeds the cap"
            )));
        }
        // 16 bytes per point must still fit in the remaining payload —
        // checked by `take` before the Vec is sized.
        let raw = cur.take(n_points * 16, "points")?;
        let mut points = Vec::with_capacity(n_points);
        for chunk in raw.chunks_exact(16) {
            let t = f64::from_bits(u64::from_le_bytes(chunk[..8].try_into().unwrap()));
            let p = f64::from_bits(u64::from_le_bytes(chunk[8..].try_into().unwrap()));
            points.push((t, p));
        }
        entries.push(SnapshotEntry {
            scenario,
            method,
            diagnostics,
            points,
        });
    }
    if !cur.done() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the last entry",
            payload.len() - cur.at
        )));
    }
    Ok(entries)
}

/// Writes `bytes` to `path` atomically: a temporary sibling is written
/// and `fsync`ed, then renamed over the target, then the directory is
/// synced (best-effort — not every filesystem supports opening a
/// directory). A crash at any point leaves either the old file or the
/// complete new one, never a torn mix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<SnapshotEntry> {
        vec![
            SnapshotEntry {
                scenario: b"# kibamrm scenario v1\nname -\n".to_vec(),
                method: "discretisation".into(),
                diagnostics: SolveDiagnostics {
                    states: Some(1200),
                    generator_nonzeros: Some(4800),
                    iterations: Some(333),
                    delta: Some(Charge::from_coulombs(300.0)),
                    runs: None,
                    half_width: None,
                    wall_seconds: 0.125,
                },
                points: vec![(20.0, 0.1), (40.0, 0.625), (60.0, 1.0)],
            },
            SnapshotEntry {
                scenario: b"another".to_vec(),
                method: "simulation".into(),
                diagnostics: SolveDiagnostics {
                    runs: Some(512),
                    half_width: Some(0.043),
                    ..Default::default()
                },
                points: vec![(1.5, 0.25)],
            },
        ]
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let entries = sample_entries();
        let file = encode(&entries).unwrap();
        let back = decode(&file).unwrap();
        assert_eq!(back, entries);
        // Empty snapshots round-trip too.
        assert_eq!(decode(&encode(&[]).unwrap()).unwrap(), vec![]);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let file = encode(&sample_entries()).unwrap();
        for len in 0..file.len() {
            let err = decode(&file[..len]).expect_err("truncation must reject");
            assert!(
                matches!(err, SnapshotError::Corrupt(_)),
                "truncation to {len} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let file = encode(&sample_entries()).unwrap();
        for byte in 0..file.len() {
            for bit in 0..8 {
                let mut flipped = file.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    decode(&flipped).is_err(),
                    "flipping bit {bit} of byte {byte} was not caught"
                );
            }
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let mut file = encode(&sample_entries()).unwrap();
        file[8..12].copy_from_slice(&2u32.to_le_bytes());
        // The checksum does not cover the header, so skew is reported
        // as skew (not as corruption).
        match decode(&file) {
            Err(SnapshotError::VersionSkew { found: 2 }) => {}
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A payload claiming u32::MAX entries with 4 bytes of content.
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX);
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        put_u32(&mut file, VERSION);
        put_u64(&mut file, payload.len() as u64);
        put_u64(&mut file, fnv1a64(&payload));
        file.extend_from_slice(&payload);
        assert!(matches!(decode(&file), Err(SnapshotError::Corrupt(_))));

        // An entry whose point count is huge but whose payload is tiny.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 1); // scenario len
        payload.push(b'x');
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.push(b'm');
        payload.push(0); // empty diagnostics
        put_f64(&mut payload, 0.0); // wall seconds
        put_u32(&mut payload, 1 << 19); // 512k points… in 0 bytes
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        put_u32(&mut file, VERSION);
        put_u64(&mut file, payload.len() as u64);
        put_u64(&mut file, fnv1a64(&payload));
        file.extend_from_slice(&payload);
        assert!(matches!(decode(&file), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 0);
        payload.push(0xAA); // junk after the last entry
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        put_u32(&mut file, VERSION);
        put_u64(&mut file, payload.len() as u64);
        put_u64(&mut file, fnv1a64(&payload));
        file.extend_from_slice(&payload);
        let err = decode(&file).expect_err("trailing bytes");
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // A cheap deterministic fuzz sweep; the proptest suite in the
        // net crate goes deeper.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for len in [0usize, 1, 7, 27, 28, 64, 300, 4096] {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bytes.push((x >> 33) as u8);
            }
            let _ = decode(&bytes);
            // And with a valid magic/version prefix grafted on.
            if bytes.len() >= 12 {
                bytes[..8].copy_from_slice(&MAGIC);
                bytes[8..12].copy_from_slice(&VERSION.to_le_bytes());
                let _ = decode(&bytes);
            }
        }
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("kibamrm-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp file left behind.
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1, "leftover files: {names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_display_and_source() {
        let io_err: SnapshotError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(io_err.to_string().contains("i/o"));
        assert!(std::error::Error::source(&io_err).is_some());
        let corrupt = SnapshotError::Corrupt("bad magic".into());
        assert!(corrupt.to_string().contains("bad magic"));
        assert!(std::error::Error::source(&corrupt).is_none());
        let skew = SnapshotError::VersionSkew { found: 9 };
        assert!(skew.to_string().contains('9'));
    }
}
