//! Sweep planning: batched scenario evaluation that stops re-deriving
//! shared structure.
//!
//! The paper's headline use case — and the north-star's huge sweep
//! traffic — is comparing lifetime distributions across *families* of
//! scenarios: workload rates, capacities, discretisation steps. A
//! [`ScenarioGrid`] builds such a family as a labelled cartesian product
//! over axes; a [`SweepPlan`] groups the expanded scenarios by **shared
//! structure** so that [`crate::solver::SolverRegistry::sweep`] can
//! amortise everything the group has in common:
//!
//! * **byte-identical scenarios** are deduplicated — one solve, one
//!   result per input slot, order preserved;
//! * **structurally identical scenarios** (equal
//!   [`LifetimeSolver::sweep_fingerprint`](crate::solver::LifetimeSolver::sweep_fingerprint)
//!   — same workload CTMC pattern, same lattice dimensions) share one
//!   assembled pattern: the banded generator layout, the DIA offsets,
//!   the state labels and the Fox–Glynn workspace are built once per
//!   group and only the numeric rate values are refilled per member;
//! * **rate-rescaled members** (`Q' = γQ`, e.g. a
//!   [`Scenario::with_rate_scale`] family) additionally share the whole
//!   uniformisation sweep: `P = I + Q/ν` is unchanged, so only the
//!   per-time Poisson mixes are recomputed.
//!
//! Sharing is an optimisation, never an approximation: every reuse
//! condition is checked at the bit level, so a planned sweep returns
//! results **bit-identical** to solving each scenario independently
//! under the same per-solve thread budget. (The caveat is about worker
//! counts, not the planner: the fused-dot reduction order follows the
//! effective row-worker count, so comparing runs whose `row_threads`
//! caps resolve differently can move last bits — exactly as it already
//! could between two naive sweeps with different worker counts. With
//! `row_threads = 1` the equality is unconditional.)
//!
//! ```
//! use kibamrm::scenario::Scenario;
//! use kibamrm::solver::SolverRegistry;
//! use kibamrm::sweep::ScenarioGrid;
//! use units::Charge;
//!
//! let base = Scenario::paper_cell_phone().unwrap();
//! let grid = ScenarioGrid::new(base)
//!     .deltas(vec![
//!         Charge::from_milliamp_hours(25.0),
//!         Charge::from_milliamp_hours(10.0),
//!     ])
//!     .rate_scales(vec![0.5, 1.0, 2.0]);
//! assert_eq!(grid.len(), 6);
//! let results = SolverRegistry::with_default_backends()
//!     .sweep_grid(&grid)
//!     .unwrap();
//! assert_eq!(results.len(), 6);
//! assert!(results.failures().next().is_none());
//! ```

use crate::scenario::Scenario;
use crate::solver::SolverRegistry;
use crate::workload::Workload;
use crate::KibamRmError;
use units::{Charge, Rate};

/// A labelled cartesian product of scenario variations — the input shape
/// of a planned sweep.
///
/// Axes left empty keep the base scenario's value. Each expanded point is
/// named `base[/w=…][/C=…][/ck=…][/d=…][/x=…]` (only the active axes
/// appear), so sweep results stay attributable; see
/// [`crate::distribution::SweepResultSet`].
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    base: Scenario,
    workloads: Vec<(String, Workload)>,
    capacities: Vec<Charge>,
    kibams: Vec<(f64, Rate)>,
    deltas: Vec<Charge>,
    rate_scales: Vec<f64>,
}

impl ScenarioGrid {
    /// A grid over `base` with no axes yet (expands to just `base`).
    pub fn new(base: Scenario) -> Self {
        ScenarioGrid {
            base,
            workloads: Vec::new(),
            capacities: Vec::new(),
            kibams: Vec::new(),
            deltas: Vec::new(),
            rate_scales: Vec::new(),
        }
    }

    /// Adds a workload axis: named workload variants (the name feeds the
    /// point label).
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<(String, Workload)>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Adds a capacity axis.
    #[must_use]
    pub fn capacities(mut self, capacities: Vec<Charge>) -> Self {
        self.capacities = capacities;
        self
    }

    /// Adds a battery-parameter axis of `(c, k)` pairs.
    #[must_use]
    pub fn kibams(mut self, kibams: Vec<(f64, Rate)>) -> Self {
        self.kibams = kibams;
        self
    }

    /// Adds a discretisation-step axis. Steps are not validated here
    /// (matching [`Scenario::with_delta`]); a step dividing neither well
    /// fails per point at solve time.
    #[must_use]
    pub fn deltas(mut self, deltas: Vec<Charge>) -> Self {
        self.deltas = deltas;
        self
    }

    /// Adds a rate-scale axis: each point runs the device at `γ×` speed
    /// ([`Scenario::with_rate_scale`]). All members of this axis share
    /// one derived-generator structure, and for power-of-two `γ` the
    /// planner collapses their uniformisation sweeps into one.
    #[must_use]
    pub fn rate_scales(mut self, rate_scales: Vec<f64>) -> Self {
        self.rate_scales = rate_scales;
        self
    }

    /// Number of points the grid expands to.
    pub fn len(&self) -> usize {
        [
            self.workloads.len(),
            self.capacities.len(),
            self.kibams.len(),
            self.deltas.len(),
            self.rate_scales.len(),
        ]
        .iter()
        .map(|&n| n.max(1))
        .product()
    }

    /// `true` when some axis is explicitly empty… which cannot happen:
    /// empty axes fall back to the base value, so a grid always expands
    /// to at least the base scenario.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expands the cartesian product into labelled scenarios, the
    /// rate-scale axis innermost (so a plan group's members arrive in
    /// ascending-ν order and extend one shared sweep).
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the axis modifiers (bad
    /// capacity, workload or scale); per-point *solve* failures are
    /// instead reported per slot by the sweep.
    pub fn expand(&self) -> Result<Vec<Scenario>, KibamRmError> {
        fn axis<T>(values: &[T]) -> Vec<Option<&T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().map(Some).collect()
            }
        }
        let base_name = if self.base.name().is_empty() {
            "grid".to_owned()
        } else {
            self.base.name().to_owned()
        };
        let mut out = Vec::with_capacity(self.len());
        for workload in axis(&self.workloads) {
            for capacity in axis(&self.capacities) {
                for kibam in axis(&self.kibams) {
                    for delta in axis(&self.deltas) {
                        for scale in axis(&self.rate_scales) {
                            let mut label = base_name.clone();
                            let mut s = self.base.clone();
                            if let Some((name, w)) = workload {
                                s = s.with_workload(w.clone())?;
                                label.push_str(&format!("/w={name}"));
                            }
                            if let Some(&cap) = capacity {
                                s = s.with_capacity(cap)?;
                                label.push_str(&format!("/C={}C", cap.as_coulombs()));
                            }
                            if let Some(&(c, k)) = kibam {
                                s = s.with_kibam(c, k)?;
                                label.push_str(&format!("/c={c},k={}", k.as_per_second()));
                            }
                            if let Some(&d) = delta {
                                s = s.with_delta(d);
                                label.push_str(&format!("/d={}C", d.as_coulombs()));
                            }
                            if let Some(&gamma) = scale {
                                s = s.with_rate_scale(gamma)?;
                                label.push_str(&format!("/x={gamma}"));
                            }
                            out.push(s.with_name(label));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// How one input slot of a planned sweep is handled.
#[derive(Debug, Clone)]
pub enum PlanSlot {
    /// Solved inside some plan group.
    Grouped,
    /// Byte-identical to an earlier scenario: its result is cloned from
    /// the canonical slot, which is never itself a duplicate.
    DuplicateOf(usize),
    /// No registered backend supports the scenario; the selection error
    /// is reported in this slot.
    Unsupported(KibamRmError),
}

/// One work item of a plan: a backend plus the input indices of the
/// (deduplicated) scenarios it solves together.
#[derive(Debug, Clone)]
pub struct PlanGroup {
    solver_index: usize,
    fingerprint: Option<u64>,
    members: Vec<usize>,
}

impl PlanGroup {
    /// Registry index of the backend solving this group.
    pub fn solver_index(&self) -> usize {
        self.solver_index
    }

    /// The structural fingerprint shared by the members (`None` for a
    /// backend that opted out of grouping — such groups are singletons).
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Input indices of the member scenarios, in input order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }
}

/// A structure-sharing execution plan for a scenario batch: duplicates
/// collapsed, the rest grouped by `(backend, structural fingerprint)`.
/// Built by [`SweepPlan::build`] and executed by
/// [`SolverRegistry::sweep`]; the accessors exist so benchmarks and tests
/// can inspect how much sharing a grid admits.
#[derive(Debug)]
pub struct SweepPlan {
    slots: Vec<PlanSlot>,
    groups: Vec<PlanGroup>,
}

impl SweepPlan {
    /// Plans `scenarios` against `registry`: deduplicates byte-identical
    /// scenarios (first occurrence is canonical), auto-selects a backend
    /// per unique scenario, and groups scenarios whose selected backend
    /// reports equal
    /// [`sweep_fingerprint`](crate::solver::LifetimeSolver::sweep_fingerprint)s.
    /// Backends returning `None` yield singleton groups.
    pub fn build(registry: &SolverRegistry, scenarios: &[Scenario]) -> SweepPlan {
        let mut slots: Vec<PlanSlot> = Vec::with_capacity(scenarios.len());
        let mut canonical: Vec<usize> = Vec::new();
        let mut groups: Vec<PlanGroup> = Vec::new();
        for (i, scenario) in scenarios.iter().enumerate() {
            if let Some(&j) = canonical.iter().find(|&&j| scenarios[j] == *scenario) {
                slots.push(PlanSlot::DuplicateOf(j));
                continue;
            }
            canonical.push(i);
            match registry.auto_index(scenario) {
                Err(e) => slots.push(PlanSlot::Unsupported(e)),
                Ok(solver_index) => {
                    slots.push(PlanSlot::Grouped);
                    let fingerprint = registry.solver_at(solver_index).sweep_fingerprint(scenario);
                    let existing = fingerprint.and_then(|fp| {
                        groups
                            .iter_mut()
                            .find(|g| g.solver_index == solver_index && g.fingerprint == Some(fp))
                    });
                    match existing {
                        Some(group) => group.members.push(i),
                        None => groups.push(PlanGroup {
                            solver_index,
                            fingerprint,
                            members: vec![i],
                        }),
                    }
                }
            }
        }
        SweepPlan { slots, groups }
    }

    /// Per-input-slot dispositions (same length as the planned batch).
    pub fn slots(&self) -> &[PlanSlot] {
        &self.slots
    }

    /// The disposition of input slot `i`.
    pub fn slot(&self, i: usize) -> &PlanSlot {
        &self.slots[i]
    }

    /// The work items, in first-member order.
    pub fn groups(&self) -> &[PlanGroup] {
        &self.groups
    }

    /// Number of input slots that are byte-identical duplicates of an
    /// earlier slot.
    pub fn n_duplicates(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, PlanSlot::DuplicateOf(_)))
            .count()
    }

    /// Number of scenarios that actually solve (group members).
    pub fn n_solved(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Capability, LifetimeSolver, SolverOptions};
    use crate::{LifetimeDistribution, SolveDiagnostics};
    use markov::transient::Representation;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use units::{Current, Frequency, Time};

    fn base() -> Scenario {
        Scenario::builder()
            .name("base")
            .workload(
                Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
                    .unwrap(),
            )
            .capacity(Charge::from_amp_seconds(7200.0))
            .kibam(0.625, Rate::per_second(4.5e-5))
            .times(
                (1..=4)
                    .map(|i| Time::from_seconds(i as f64 * 1500.0))
                    .collect(),
            )
            .delta(Charge::from_amp_seconds(300.0))
            .simulation(40, 7)
            .build()
            .unwrap()
    }

    /// A registry whose options keep every solve deterministic across
    /// worker counts (row_threads = 1 ⇒ identical accumulation order).
    fn registry() -> SolverRegistry {
        SolverRegistry::with_default_backends().with_options(SolverOptions {
            scenario_threads: 1,
            row_threads: 1,
            representation: Representation::Auto,
        })
    }

    #[test]
    fn grid_expands_the_cartesian_product_with_labels() {
        let grid = ScenarioGrid::new(base())
            .deltas(vec![
                Charge::from_amp_seconds(300.0),
                Charge::from_amp_seconds(150.0),
            ])
            .rate_scales(vec![0.5, 1.0, 2.0]);
        assert_eq!(grid.len(), 6);
        assert!(!grid.is_empty());
        let scenarios = grid.expand().unwrap();
        assert_eq!(scenarios.len(), 6);
        assert_eq!(scenarios[0].name(), "base/d=300C/x=0.5");
        assert_eq!(scenarios[5].name(), "base/d=150C/x=2");
        // The scale axis is innermost: consecutive points share structure.
        assert_eq!(scenarios[1].delta(), scenarios[0].delta());
        assert_ne!(scenarios[3].delta(), scenarios[0].delta());
        // Scaling is real: ×2 doubles the workload rates and k.
        let s2 = &scenarios[5];
        assert_eq!(s2.k().as_per_second(), 9e-5);
        assert_eq!(s2.workload().ctmc().rates().get(0, 1), 4.0);
        assert_eq!(s2.workload().current(0).as_amps(), 1.92);

        // An axis with an invalid value aborts expansion with the
        // validation error.
        let bad = ScenarioGrid::new(base()).capacities(vec![Charge::ZERO]);
        assert!(bad.expand().is_err());
        let bad = ScenarioGrid::new(base()).rate_scales(vec![-1.0]);
        assert!(bad.expand().is_err());
        // A bare grid expands to the base scenario.
        let bare = ScenarioGrid::new(base());
        assert_eq!(bare.len(), 1);
        assert_eq!(bare.expand().unwrap()[0].name(), "base");
    }

    #[test]
    fn plan_groups_by_structure_and_dedups_exact_repeats() {
        let registry = registry();
        let s = base();
        let scaled = s.with_rate_scale(2.0).unwrap();
        let finer = s.with_delta(Charge::from_amp_seconds(150.0));
        let linear = s.with_kibam(1.0, Rate::ZERO).unwrap(); // → Sericola
        let scenarios = vec![s.clone(), scaled, s.clone(), finer, linear];
        let plan = SweepPlan::build(&registry, &scenarios);
        // Slot 2 duplicates slot 0.
        assert!(matches!(plan.slot(2), PlanSlot::DuplicateOf(0)));
        assert_eq!(plan.n_duplicates(), 1);
        assert_eq!(plan.n_solved(), 4);
        // base + ×2 share a group (same pattern); finer Δ does not;
        // the linear scenario goes to Sericola which opts out of
        // grouping (singleton).
        assert_eq!(plan.groups().len(), 3);
        assert_eq!(plan.groups()[0].members(), &[0, 1]);
        assert!(plan.groups()[0].fingerprint().is_some());
        assert_eq!(plan.groups()[1].members(), &[3]);
        assert_eq!(plan.groups()[2].members(), &[4]);
        assert!(plan.groups()[2].fingerprint().is_none());
    }

    #[test]
    fn planned_sweep_matches_independent_solves_bitwise() {
        let registry = registry();
        let grid = ScenarioGrid::new(base())
            .deltas(vec![
                Charge::from_amp_seconds(300.0),
                Charge::from_amp_seconds(150.0),
            ])
            .rate_scales(vec![0.25, 0.5, 1.0, 2.0]);
        let scenarios = grid.expand().unwrap();
        let planned = registry.sweep(&scenarios);
        let naive = registry.sweep_naive(&scenarios);
        assert_eq!(planned.len(), naive.len());
        for (i, (p, n)) in planned.iter().zip(&naive).enumerate() {
            let (p, n) = (p.as_ref().unwrap(), n.as_ref().unwrap());
            assert_eq!(p.points(), n.points(), "slot {i} must be bit-identical");
            assert_eq!(p.method(), n.method());
        }
        // The plan really shared work: 8 scenarios, 2 groups.
        let plan = SweepPlan::build(&registry, &scenarios);
        assert_eq!(plan.groups().len(), 2);
        assert_eq!(plan.groups()[0].members().len(), 4);
    }

    #[test]
    fn duplicates_get_one_solve_but_one_result_slot_each() {
        // The regression the planner fixes: sweep() used to re-solve
        // byte-identical scenarios. Count actual solves with a custom
        // backend.
        static SOLVES: AtomicUsize = AtomicUsize::new(0);
        struct Counting;
        impl LifetimeSolver for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn capability(&self, _s: &Scenario) -> Capability {
                Capability::Exact
            }
            fn solve(&self, s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
                SOLVES.fetch_add(1, Ordering::SeqCst);
                LifetimeDistribution::new(
                    "counting",
                    s.times().iter().map(|&t| (t, 0.5)).collect(),
                    SolveDiagnostics::default(),
                )
            }
        }
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(Counting));
        let s = base();
        let other = s.with_name("other");
        let batch = vec![s.clone(), other.clone(), s.clone(), s, other];
        let results = registry.sweep_with_threads(&batch, 2);
        // Order preserved, one result slot per input.
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            let d = r.as_ref().unwrap();
            assert_eq!(d.method(), "counting", "slot {i}");
            assert_eq!(d.points().len(), batch[i].times().len());
        }
        // …but only the two distinct scenarios were solved.
        assert_eq!(SOLVES.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn planned_sweep_isolates_failures_and_unsupported_slots() {
        // An empty registry reports the selection error per slot,
        // including for duplicates of an unsupported scenario.
        let registry = SolverRegistry::empty();
        let s = base();
        let results = registry.sweep(&[s.clone(), s]);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r
                .as_ref()
                .is_err_and(|e| e.to_string().contains("registry is empty")));
        }
        // A non-dividing Δ fails its own slots (duplicated too) without
        // poisoning the rest of the batch.
        let registry = self::registry();
        let good = base();
        let bad = good.with_delta(Charge::from_amp_seconds(7.0));
        let results = registry.sweep(&[bad.clone(), good.clone(), bad]);
        assert!(matches!(
            results[0],
            Err(KibamRmError::InvalidDiscretisation(_))
        ));
        assert!(results[1].is_ok());
        assert!(matches!(
            results[2],
            Err(KibamRmError::InvalidDiscretisation(_))
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// The satellite property: grid-sweep results are bit-identical
        /// to solving each expanded scenario independently through the
        /// same backend, across worker counts 1–8 and both the CSR and
        /// banded-windowed engine paths.
        #[test]
        fn grid_sweep_bit_identical_to_independent_solves(
            threads in 1usize..=8,
            windowed_sel in 0usize..2,
            delta_idx in 0usize..2,
            scale_exp in -4i32..0,
        ) {
            use proptest::prelude::*;
            let deltas = [300.0, 180.0];
            let representation = if windowed_sel == 1 {
                Representation::Banded // + active window (backend default)
            } else {
                Representation::Csr
            };
            let registry = SolverRegistry::with_default_backends().with_options(SolverOptions {
                scenario_threads: threads,
                row_threads: 1, // deterministic accumulation across workers
                representation,
            });
            let base = base().with_delta(Charge::from_amp_seconds(deltas[delta_idx]));
            let grid = ScenarioGrid::new(base)
                .rate_scales(vec![
                    2f64.powi(scale_exp),
                    2f64.powi(scale_exp + 1),
                    2f64.powi(scale_exp + 2),
                ]);
            let scenarios = grid.expand().unwrap();
            let planned = registry.sweep_with_threads(&scenarios, threads);
            for (s, p) in scenarios.iter().zip(&planned) {
                let solver = registry.auto(s).unwrap();
                let independent = solver
                    .solve_with(s, &SolverOptions {
                        scenario_threads: 1,
                        row_threads: 1,
                        representation,
                    })
                    .unwrap();
                let p = p.as_ref().unwrap();
                prop_assert!(
                    p.points() == independent.points(),
                    "scenario {} differs from its independent solve",
                    s.name()
                );
            }
        }
    }
}
