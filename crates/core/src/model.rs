//! The KiBaMRM: a workload coupled to a KiBaM battery.
//!
//! Paper §4.2: the CTMC states are the device's operating modes; two
//! accumulated rewards track the available-charge well `Y₁(t)` and the
//! bound-charge well `Y₂(t)`, with reward rates
//!
//! ```text
//! r_{i,1}(y₁, y₂) = −I_i + k(h₂ − h₁)   (h₂ > h₁ > 0, else 0)
//! r_{i,2}(y₁, y₂) =      −k(h₂ − h₁)   (h₂ > h₁ > 0, else 0)
//! ```
//!
//! The battery is empty when `Y₁(t) = 0`; the lifetime is the first such
//! instant. This type holds the coupled model and hands it to the three
//! analysis backends (discretisation, simulation, exact `c = 1`).

use crate::workload::Workload;
use crate::KibamRmError;
use battery::kibam::Kibam;
use units::{Charge, Rate};

/// A KiBaM Markov reward model.
#[derive(Debug, Clone, PartialEq)]
pub struct KibamRm {
    workload: Workload,
    battery: Kibam,
}

impl KibamRm {
    /// Couples `workload` to a KiBaM battery with capacity `C`, available
    /// fraction `c` and flow constant `k`.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidBattery`] when the battery parameters are
    /// out of range.
    pub fn new(
        workload: Workload,
        capacity: Charge,
        c: f64,
        k: Rate,
    ) -> Result<Self, KibamRmError> {
        let battery =
            Kibam::new(capacity, c, k).map_err(|e| KibamRmError::InvalidBattery(e.to_string()))?;
        Ok(KibamRm { workload, battery })
    }

    /// Couples `workload` to an already-built battery.
    pub fn with_battery(workload: Workload, battery: Kibam) -> Self {
        KibamRm { workload, battery }
    }

    /// The workload half.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The battery half.
    pub fn battery(&self) -> &Kibam {
        &self.battery
    }

    /// Battery capacity `C`.
    pub fn capacity(&self) -> Charge {
        self.battery.capacity()
    }

    /// Available-charge fraction `c`.
    pub fn c(&self) -> f64 {
        self.battery.c()
    }

    /// Well flow constant `k`.
    pub fn k(&self) -> Rate {
        self.battery.k()
    }

    /// `true` when the model degenerates to a single well (`c = 1`), in
    /// which case [`crate::analysis::exact_linear_curve`] applies.
    pub fn is_linear(&self) -> bool {
        self.battery.c() >= 1.0
    }

    /// An exactly time-compressed copy of the model: every workload rate
    /// and the flow constant `k` are multiplied by `factor` while the
    /// capacity is divided by it (currents unchanged). The KiBaM dynamics
    /// are invariant under this rescaling, so
    ///
    /// ```text
    /// Pr[compressed battery empty at t] = Pr[original empty at factor·t]
    /// ```
    ///
    /// **exactly** — useful to study slow workloads at a fraction of the
    /// numerical cost (uniformisation iterations scale with `νt`, and
    /// Sericola's algorithm with `(νt)²`).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidBattery`] for a non-positive/non-finite
    /// factor, or propagated construction errors.
    pub fn time_compressed(&self, factor: f64) -> Result<KibamRm, KibamRmError> {
        if !(factor > 0.0) || !factor.is_finite() {
            return Err(KibamRmError::InvalidBattery(format!(
                "compression factor must be positive and finite, got {factor}"
            )));
        }
        let old = self.workload.ctmc();
        let mut b = markov::ctmc::CtmcBuilder::new(old.n_states());
        if old.has_custom_labels() {
            for i in 0..old.n_states() {
                b.label(i, old.state_label(i).as_ref());
            }
        }
        for (i, j, r) in old.rates().iter() {
            b.rate(i, j, r * factor)
                .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;
        }
        let chain = b
            .build()
            .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;
        let workload = Workload::new(
            chain,
            self.workload.currents().to_vec(),
            self.workload.initial().to_vec(),
        )?;
        KibamRm::new(
            workload,
            self.capacity() / factor,
            self.c(),
            self.k() * factor,
        )
    }

    /// The paper's reward rates `(r₁, r₂)` for workload state `i` at well
    /// contents `(y₁, y₂)`, including the `h₂ > h₁ > 0` guard of §4.2.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn reward_rates(&self, i: usize, y1: Charge, y2: Charge) -> (f64, f64) {
        let current = self.workload.current(i).as_amps();
        let c = self.battery.c();
        if c >= 1.0 {
            return (-current, 0.0);
        }
        let h1 = y1.value() / c;
        let h2 = y2.value() / (1.0 - c);
        if h2 > h1 && h1 > 0.0 {
            let flow = self.battery.k().value() * (h2 - h1);
            (-current + flow, -flow)
        } else if h1 > 0.0 || current == 0.0 {
            (-current, 0.0)
        } else {
            // Battery empty: both rates vanish (absorbing).
            (0.0, 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KibamRm {
        KibamRm::new(
            Workload::simple_model().unwrap(),
            Charge::from_milliamp_hours(800.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = model();
        assert_eq!(m.capacity().as_milliamp_hours(), 800.0);
        assert_eq!(m.c(), 0.625);
        assert_eq!(m.k().value(), 4.5e-5);
        assert_eq!(m.workload().n_states(), 3);
        assert!(!m.is_linear());
        assert!(KibamRm::new(
            Workload::simple_model().unwrap(),
            Charge::ZERO,
            0.5,
            Rate::per_second(1e-5)
        )
        .is_err());
    }

    #[test]
    fn linear_degenerate_case() {
        let m = KibamRm::new(
            Workload::simple_model().unwrap(),
            Charge::from_milliamp_hours(800.0),
            1.0,
            Rate::per_second(0.0),
        )
        .unwrap();
        assert!(m.is_linear());
        let (r1, r2) = m.reward_rates(1, Charge::from_coulombs(100.0), Charge::ZERO);
        assert_eq!(r1, -0.2);
        assert_eq!(r2, 0.0);
    }

    #[test]
    fn reward_rates_follow_kibam() {
        let m = model();
        // Unequal wells with headroom: recovery flows.
        let y1 = Charge::from_coulombs(100.0);
        let y2 = Charge::from_coulombs(1000.0);
        let h1 = 100.0 / 0.625;
        let h2 = 1000.0 / 0.375;
        let flow = 4.5e-5 * (h2 - h1);
        let (r1, r2) = m.reward_rates(1, y1, y2);
        assert!((r1 - (-0.2 + flow)).abs() < 1e-12);
        assert!((r2 + flow).abs() < 1e-12);
        // Equalised wells: no flow.
        let (r1, r2) = m.reward_rates(
            0,
            Charge::from_coulombs(625.0),
            Charge::from_coulombs(375.0),
        );
        assert!((r1 + 0.008).abs() < 1e-12);
        assert_eq!(r2, 0.0);
        // Empty battery: rates vanish.
        let (r1, r2) = m.reward_rates(1, Charge::ZERO, y2);
        assert_eq!((r1, r2), (0.0, 0.0));
    }

    #[test]
    fn time_compression_invariance() {
        use crate::discretise::{DiscretisationOptions, DiscretisedModel};
        use units::Time;
        // C = 160 mAh, c = 0.625 → wells of 100 and 60 mAh; Δ = 10 mAh
        // divides both, and Δ/factor divides the compressed wells.
        let original = KibamRm::new(
            Workload::simple_model().unwrap(),
            Charge::from_milliamp_hours(160.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap();
        let factor = 8.0;
        let fast = original.time_compressed(factor).unwrap();
        // Matching Δ keeps the two derived chains isomorphic (levels
        // identical, rates scaled), so the curves must agree exactly.
        let d_orig = DiscretisedModel::build(
            &original,
            &DiscretisationOptions::with_delta(Charge::from_milliamp_hours(10.0)),
        )
        .unwrap();
        let d_fast = DiscretisedModel::build(
            &fast,
            &DiscretisationOptions::with_delta(Charge::from_milliamp_hours(10.0 / factor)),
        )
        .unwrap();
        assert_eq!(d_orig.stats().states, d_fast.stats().states);
        for hours in [2.0, 5.0, 8.0] {
            let p_orig = d_orig
                .empty_probability_at(Time::from_hours(hours))
                .unwrap();
            let p_fast = d_fast
                .empty_probability_at(Time::from_hours(hours / factor))
                .unwrap();
            assert!(
                (p_orig - p_fast).abs() < 1e-9,
                "t = {hours} h: {p_orig} vs {p_fast}"
            );
        }
    }

    #[test]
    fn time_compression_validation() {
        let m = model();
        assert!(m.time_compressed(0.0).is_err());
        assert!(m.time_compressed(-2.0).is_err());
        assert!(m.time_compressed(f64::INFINITY).is_err());
    }

    #[test]
    fn with_battery_constructor() {
        let b = Kibam::new(
            Charge::from_coulombs(7200.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap();
        let m = KibamRm::with_battery(Workload::simple_model().unwrap(), b);
        assert_eq!(m.battery().capacity().as_coulombs(), 7200.0);
    }
}
