//! Scenarios: the single value type every solver consumes.
//!
//! A [`Scenario`] bundles the three things the paper's question
//! `Pr[battery empty at t]` depends on — the battery parameters, the
//! CTMC workload and the query time grid — plus the method tuning knobs
//! (`Δ`, replication count, seed) that a batch runner wants to sweep.
//! Scenarios are **data**: they can be built fluently with
//! [`ScenarioBuilder`], cloned and varied with the `with_*` modifiers to
//! form grids for [`crate::solver::SolverRegistry::sweep`], and
//! round-tripped through a plain-text config with
//! [`Scenario::to_config_string`] / [`Scenario::from_config_str`], so a
//! scenario can live in a file, a queue message or a request body.
//!
//! ```
//! use kibamrm::scenario::Scenario;
//! use kibamrm::workload::Workload;
//! use units::{Charge, Rate, Time};
//!
//! let scenario = Scenario::builder()
//!     .name("cell-phone")
//!     .workload(Workload::simple_model().unwrap())
//!     .capacity(Charge::from_milliamp_hours(800.0))
//!     .kibam(0.625, Rate::per_second(4.5e-5))
//!     .time_grid(Time::from_hours(30.0), 60)
//!     .delta(Charge::from_milliamp_hours(10.0))
//!     .build()
//!     .unwrap();
//!
//! // Scenarios are data: serialise, ship, parse back.
//! let text = scenario.to_config_string().unwrap();
//! let parsed = Scenario::from_config_str(&text).unwrap();
//! assert_eq!(parsed.capacity(), scenario.capacity());
//! assert_eq!(parsed.times().len(), scenario.times().len());
//! ```

use crate::model::KibamRm;
use crate::workload::Workload;
use crate::KibamRmError;
use markov::ctmc::CtmcBuilder;
use units::{Charge, Current, Rate, Time};

/// Default simulation replication count (the paper's 1000).
pub const DEFAULT_SIM_RUNS: usize = 1000;
/// Default simulation seed (stable results across runs unless varied).
pub const DEFAULT_SIM_SEED: u64 = 2007;

/// A complete, validated battery-lifetime question.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    workload: Workload,
    capacity: Charge,
    c: f64,
    k: Rate,
    times: Vec<Time>,
    delta: Option<Charge>,
    sim_runs: usize,
    sim_seed: u64,
}

impl Scenario {
    /// Starts a fluent builder.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The paper's cell-phone reference scenario (§4.3 / Fig. 10 middle
    /// family): simple workload, 800 mAh, `c = 0.625`,
    /// `k = 4.5·10⁻⁵ /s`, queried hourly over 30 h.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for uniformity.
    pub fn paper_cell_phone() -> Result<Scenario, KibamRmError> {
        Scenario::builder()
            .name("paper-cell-phone")
            .workload(Workload::simple_model()?)
            .capacity(Charge::from_milliamp_hours(800.0))
            .kibam(0.625, Rate::per_second(4.5e-5))
            .time_grid(Time::from_hours(30.0), 30)
            .delta(Charge::from_milliamp_hours(10.0))
            .build()
    }

    /// Scenario name (free-form label; appears in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload half.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Battery capacity `C`.
    pub fn capacity(&self) -> Charge {
        self.capacity
    }

    /// Available-charge fraction `c`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Well flow constant `k`.
    pub fn k(&self) -> Rate {
        self.k
    }

    /// `true` when the model degenerates to a single well (`c = 1`).
    pub fn is_linear(&self) -> bool {
        self.c >= 1.0
    }

    /// The query time grid (strictly increasing).
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// The largest query time (simulation horizon default).
    pub fn horizon(&self) -> Time {
        *self.times.last().expect("validated non-empty")
    }

    /// The requested discretisation step, if pinned.
    pub fn delta(&self) -> Option<Charge> {
        self.delta
    }

    /// The discretisation step to use: the pinned one, or a default that
    /// splits the capacity into ~`2⁷`–`2¹³` quanta such that both wells
    /// divide evenly.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidDiscretisation`] when no default divides
    /// both wells (an irrational `c`); pin `Δ` explicitly then.
    pub fn effective_delta(&self) -> Result<Charge, KibamRmError> {
        if let Some(d) = self.delta {
            return Ok(d);
        }
        default_delta(self.capacity, self.c)
    }

    /// Simulation replication count.
    pub fn sim_runs(&self) -> usize {
        self.sim_runs
    }

    /// Simulation seed.
    pub fn sim_seed(&self) -> u64 {
        self.sim_seed
    }

    /// The coupled KiBaM Markov reward model for this scenario.
    ///
    /// # Errors
    ///
    /// Never fails after validation; kept fallible to avoid a panic path.
    pub fn to_model(&self) -> Result<KibamRm, KibamRmError> {
        KibamRm::new(self.workload.clone(), self.capacity, self.c, self.k)
    }

    // --- grid-building modifiers (cheap clones for sweep()) -------------

    /// A copy with a different name.
    #[must_use]
    pub fn with_name(&self, name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            ..self.clone()
        }
    }

    /// A copy with a pinned discretisation step. Unlike the builder,
    /// this modifier does not validate `delta` (grids are often built
    /// in tight loops); a non-positive or non-dividing step fails at
    /// solve time with the discretisation error instead.
    #[must_use]
    pub fn with_delta(&self, delta: Charge) -> Scenario {
        Scenario {
            delta: Some(delta),
            ..self.clone()
        }
    }

    /// A copy with a different capacity.
    ///
    /// # Errors
    ///
    /// Propagates battery validation errors.
    pub fn with_capacity(&self, capacity: Charge) -> Result<Scenario, KibamRmError> {
        let s = Scenario {
            capacity,
            ..self.clone()
        };
        s.to_model()?;
        Ok(s)
    }

    /// A copy with different battery parameters `(c, k)`.
    ///
    /// # Errors
    ///
    /// Propagates battery validation errors.
    pub fn with_kibam(&self, c: f64, k: Rate) -> Result<Scenario, KibamRmError> {
        let s = Scenario {
            c,
            k,
            ..self.clone()
        };
        s.to_model()?;
        Ok(s)
    }

    /// A copy with a different workload.
    ///
    /// # Errors
    ///
    /// Propagates workload validation errors.
    pub fn with_workload(&self, workload: Workload) -> Result<Scenario, KibamRmError> {
        let s = Scenario {
            workload,
            ..self.clone()
        };
        s.to_model()?;
        Ok(s)
    }

    /// A copy with a different query grid.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] for an empty/non-increasing grid.
    pub fn with_times(&self, times: Vec<Time>) -> Result<Scenario, KibamRmError> {
        validate_times(&times)?;
        Ok(Scenario {
            times,
            ..self.clone()
        })
    }

    /// A copy describing the same device run at `gamma×` speed: every
    /// workload transition rate, every current and the flow constant `k`
    /// are scaled by `gamma` (the query grid is untouched). The coupled
    /// process is the base process on a rescaled clock, so the lifetime
    /// CDF of the copy at `t` equals the base CDF at `γt` — and the
    /// derived generator is exactly `γ·Q`, which is the family the sweep
    /// planner's rate-rescale fast path collapses to a single
    /// uniformisation sweep (bit-exactly so when `gamma` is a power of
    /// two, since `P = I + Q/ν` is then unchanged).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] when `gamma` is not positive and
    /// finite; battery validation errors otherwise.
    pub fn with_rate_scale(&self, gamma: f64) -> Result<Scenario, KibamRmError> {
        let s = Scenario {
            workload: self.workload.with_rate_scale(gamma)?,
            k: Rate::per_second(self.k.as_per_second() * gamma),
            ..self.clone()
        };
        s.to_model()?;
        Ok(s)
    }

    /// A copy with different simulation settings. Not validated here
    /// (see [`Scenario::with_delta`]); `runs = 0` fails at solve time
    /// with a precise error.
    #[must_use]
    pub fn with_simulation(&self, runs: usize, seed: u64) -> Scenario {
        Scenario {
            sim_runs: runs,
            sim_seed: seed,
            ..self.clone()
        }
    }

    // --- plain-text config round-trip -----------------------------------

    /// Serialises the scenario as a plain-text config (one `key value…`
    /// pair per line, `#` comments). The format is stable and parsed
    /// back by [`Scenario::from_config_str`]; all quantities are written
    /// in SI units (coulombs, amperes, seconds).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] when a state name or the
    /// scenario name contains whitespace or `#`, or the scenario is
    /// named the literal `-` (all unrepresentable in the line format).
    pub fn to_config_string(&self) -> Result<String, KibamRmError> {
        use std::fmt::Write as _;
        let ctmc = self.workload.ctmc();
        for i in 0..ctmc.n_states() {
            let label = ctmc.state_label(i);
            if label.contains(char::is_whitespace) || label.contains('#') {
                return Err(KibamRmError::InvalidWorkload(format!(
                    "state name {label:?} cannot be serialised (whitespace/'#')"
                )));
            }
        }
        // The name rides on a whitespace-separated line too, and "-" is
        // the empty-name sentinel.
        if self.name.contains(char::is_whitespace) || self.name.contains('#') || self.name == "-" {
            return Err(KibamRmError::InvalidWorkload(format!(
                "scenario name {:?} cannot be serialised (whitespace/'#'/'-'); \
                 rename it with with_name before serialising",
                self.name
            )));
        }
        let mut out = String::new();
        let _ = writeln!(out, "# kibamrm scenario v1");
        let _ = writeln!(
            out,
            "name {}",
            if self.name.is_empty() {
                "-"
            } else {
                &self.name
            }
        );
        let _ = writeln!(out, "capacity_c {}", self.capacity.as_coulombs());
        let _ = writeln!(out, "c {}", self.c);
        let _ = writeln!(out, "k_per_s {}", self.k.as_per_second());
        if let Some(d) = self.delta {
            let _ = writeln!(out, "delta_c {}", d.as_coulombs());
        }
        let _ = writeln!(out, "sim_runs {}", self.sim_runs);
        let _ = writeln!(out, "sim_seed {}", self.sim_seed);
        for i in 0..ctmc.n_states() {
            let _ = writeln!(
                out,
                "state {} {}",
                ctmc.state_label(i),
                self.workload.current(i).as_amps()
            );
        }
        for (i, j, rate) in ctmc.rates().iter() {
            let _ = writeln!(
                out,
                "transition {} {} {rate}",
                ctmc.state_label(i),
                ctmc.state_label(j)
            );
        }
        for (i, &p) in self.workload.initial().iter().enumerate() {
            if p != 0.0 {
                let _ = writeln!(out, "initial {} {p}", ctmc.state_label(i));
            }
        }
        let _ = write!(out, "times_s");
        for t in &self.times {
            let _ = write!(out, " {}", t.as_seconds());
        }
        let _ = writeln!(out);
        Ok(out)
    }

    /// The canonical byte encoding of this scenario — the byte-identity
    /// key under which [`crate::service::LifetimeService`] deduplicates
    /// and caches queries.
    ///
    /// The encoding reuses the config round-trip
    /// ([`Scenario::to_config_string`]) with the display name erased:
    /// the name labels a scenario but never changes the answer, so two
    /// scenarios differing only in name share one key (and one cached
    /// solve). Every field that *does* shape the answer — workload
    /// states/rates/initial distribution, battery parameters, `Δ`, the
    /// query grid and the simulation budget/seed — rides on the config
    /// lines, so equal scenarios produce equal keys no matter which
    /// builder path assembled them.
    ///
    /// # Errors
    ///
    /// As for [`Scenario::to_config_string`] (workload state labels the
    /// line format cannot carry); such scenarios are still solvable,
    /// just not keyable — the service serves them uncached.
    pub fn canonical_bytes(&self) -> Result<Vec<u8>, KibamRmError> {
        self.with_name("")
            .to_config_string()
            .map(String::into_bytes)
    }

    /// Parses a scenario from the config format written by
    /// [`Scenario::to_config_string`].
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] for syntax errors, unknown
    /// state references or missing sections; plus the usual validation
    /// errors of [`ScenarioBuilder::build`].
    pub fn from_config_str(text: &str) -> Result<Scenario, KibamRmError> {
        let bad = |msg: String| KibamRmError::InvalidWorkload(msg);
        let parse_f64 = |tok: &str, what: &str| -> Result<f64, KibamRmError> {
            tok.parse::<f64>()
                .map_err(|_| bad(format!("cannot parse {what} from {tok:?}")))
        };

        let mut name = String::new();
        let mut capacity = None;
        let mut c = None;
        let mut k = None;
        let mut delta = None;
        let mut sim_runs = DEFAULT_SIM_RUNS;
        let mut sim_seed = DEFAULT_SIM_SEED;
        let mut states: Vec<(String, Current)> = Vec::new();
        let mut transitions: Vec<(String, String, f64)> = Vec::new();
        let mut initial: Vec<(String, f64)> = Vec::new();
        let mut times: Vec<Time> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            let key = tok.next().expect("non-empty line");
            let mut next = |what: &str| -> Result<&str, KibamRmError> {
                tok.next().ok_or_else(|| {
                    bad(format!("line {}: missing {what} after '{key}'", lineno + 1))
                })
            };
            match key {
                "name" => {
                    let v = next("value")?;
                    name = if v == "-" {
                        String::new()
                    } else {
                        v.to_owned()
                    };
                }
                "capacity_c" => capacity = Some(parse_f64(next("value")?, "capacity")?),
                "c" => c = Some(parse_f64(next("value")?, "c")?),
                "k_per_s" => k = Some(parse_f64(next("value")?, "k")?),
                "delta_c" => delta = Some(parse_f64(next("value")?, "delta")?),
                "sim_runs" => {
                    sim_runs = next("value")?
                        .parse()
                        .map_err(|_| bad(format!("line {}: bad sim_runs", lineno + 1)))?;
                }
                "sim_seed" => {
                    sim_seed = next("value")?
                        .parse()
                        .map_err(|_| bad(format!("line {}: bad sim_seed", lineno + 1)))?;
                }
                "state" => {
                    let label = next("state name")?.to_owned();
                    let amps = parse_f64(next("current")?, "current")?;
                    states.push((label, Current::from_amps(amps)));
                }
                "transition" => {
                    let from = next("source state")?.to_owned();
                    let to = next("target state")?.to_owned();
                    let rate = parse_f64(next("rate")?, "rate")?;
                    transitions.push((from, to, rate));
                }
                "initial" => {
                    let label = next("state name")?.to_owned();
                    let p = parse_f64(next("probability")?, "probability")?;
                    initial.push((label, p));
                }
                "times_s" => {
                    for t in tok.by_ref() {
                        times.push(Time::from_seconds(parse_f64(t, "time")?));
                    }
                }
                other => return Err(bad(format!("line {}: unknown key '{other}'", lineno + 1))),
            }
        }

        if states.is_empty() {
            return Err(bad("config declares no states".into()));
        }
        // Duplicate names would make every later reference silently bind
        // to the first occurrence — a different chain than the config
        // describes.
        for (i, (label, _)) in states.iter().enumerate() {
            if states.iter().skip(i + 1).any(|(l, _)| l == label) {
                return Err(bad(format!("duplicate state '{label}' in config")));
            }
        }
        let index_of = |label: &str| -> Result<usize, KibamRmError> {
            states
                .iter()
                .position(|(l, _)| l == label)
                .ok_or_else(|| bad(format!("unknown state '{label}'")))
        };
        let mut b = CtmcBuilder::new(states.len());
        for (i, (label, _)) in states.iter().enumerate() {
            b.label(i, label);
        }
        // Duplicate transition lines would be silently summed by the
        // sparse assembly — reject them like duplicate states.
        for (i, (from, to, _)) in transitions.iter().enumerate() {
            if transitions
                .iter()
                .skip(i + 1)
                .any(|(f, t, _)| f == from && t == to)
            {
                return Err(bad(format!("duplicate transition '{from} {to}' in config")));
            }
        }
        for (from, to, rate) in &transitions {
            b.rate(index_of(from)?, index_of(to)?, *rate)
                .map_err(|e| bad(e.to_string()))?;
        }
        let ctmc = b.build().map_err(|e| bad(e.to_string()))?;
        let mut alpha = vec![0.0; states.len()];
        if initial.is_empty() {
            alpha[0] = 1.0;
        }
        for (label, p) in &initial {
            alpha[index_of(label)?] = *p;
        }
        let currents: Vec<Current> = states.iter().map(|(_, cur)| *cur).collect();
        let workload = Workload::new(ctmc, currents, alpha)?;

        let mut builder = Scenario::builder()
            .name(name)
            .workload(workload)
            .capacity(Charge::from_coulombs(
                capacity.ok_or_else(|| bad("config is missing 'capacity_c'".into()))?,
            ))
            .kibam(
                c.ok_or_else(|| bad("config is missing 'c'".into()))?,
                Rate::per_second(k.ok_or_else(|| bad("config is missing 'k_per_s'".into()))?),
            )
            .times(times)
            .simulation(sim_runs, sim_seed);
        if let Some(d) = delta {
            builder = builder.delta(Charge::from_coulombs(d));
        }
        builder.build()
    }
}

/// Fluent, validating construction of a [`Scenario`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    name: String,
    workload: Option<Workload>,
    capacity: Option<Charge>,
    c: Option<f64>,
    k: Option<Rate>,
    times: Vec<Time>,
    delta: Option<Charge>,
    sim_runs: Option<usize>,
    sim_seed: Option<u64>,
}

impl ScenarioBuilder {
    /// Names the scenario.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the workload.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the battery capacity `C`.
    #[must_use]
    pub fn capacity(mut self, capacity: Charge) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets the KiBaM parameters `(c, k)`.
    #[must_use]
    pub fn kibam(mut self, c: f64, k: Rate) -> Self {
        self.c = Some(c);
        self.k = Some(k);
        self
    }

    /// Degenerate single-well battery: `c = 1`, `k = 0` (the exact
    /// Sericola method applies).
    #[must_use]
    pub fn linear(self) -> Self {
        self.kibam(1.0, Rate::per_second(0.0))
    }

    /// Sets the query times directly (must be strictly increasing).
    #[must_use]
    pub fn times(mut self, times: Vec<Time>) -> Self {
        self.times = times;
        self
    }

    /// Sets an equispaced grid `0, …, t_max` with `points + 1` samples.
    #[must_use]
    pub fn time_grid(mut self, t_max: Time, points: usize) -> Self {
        self.times = crate::analysis::time_grid(t_max, points);
        self
    }

    /// Pins the discretisation step `Δ`.
    #[must_use]
    pub fn delta(mut self, delta: Charge) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Sets the simulation replication count and seed.
    #[must_use]
    pub fn simulation(mut self, runs: usize, seed: u64) -> Self {
        self.sim_runs = Some(runs);
        self.sim_seed = Some(seed);
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] when the workload or time grid
    /// is missing/invalid; [`KibamRmError::InvalidBattery`] for bad
    /// battery parameters.
    pub fn build(self) -> Result<Scenario, KibamRmError> {
        let workload = self
            .workload
            .ok_or_else(|| KibamRmError::InvalidWorkload("scenario needs a workload".into()))?;
        let capacity = self
            .capacity
            .ok_or_else(|| KibamRmError::InvalidBattery("scenario needs a capacity".into()))?;
        let c = self.c.ok_or_else(|| {
            KibamRmError::InvalidBattery(
                "scenario needs battery parameters: call .kibam(c, k) or .linear()".into(),
            )
        })?;
        let k = self.k.unwrap_or(Rate::ZERO);
        validate_times(&self.times)?;
        if let Some(d) = self.delta {
            if !(d.value() > 0.0) || !d.is_finite() {
                return Err(KibamRmError::InvalidDiscretisation(format!(
                    "Δ must be positive and finite, got {d}"
                )));
            }
        }
        let sim_runs = self.sim_runs.unwrap_or(DEFAULT_SIM_RUNS);
        if sim_runs == 0 {
            return Err(KibamRmError::InvalidWorkload(
                "simulation needs at least one replication".into(),
            ));
        }
        let scenario = Scenario {
            name: self.name,
            workload,
            capacity,
            c,
            k,
            times: self.times,
            delta: self.delta,
            sim_runs,
            sim_seed: self.sim_seed.unwrap_or(DEFAULT_SIM_SEED),
        };
        // One throwaway construction validates battery + workload
        // coupling so every later `to_model()` is infallible in practice.
        scenario.to_model()?;
        Ok(scenario)
    }
}

fn validate_times(times: &[Time]) -> Result<(), KibamRmError> {
    if times.is_empty() {
        return Err(KibamRmError::InvalidWorkload(
            "scenario needs a non-empty query time grid".into(),
        ));
    }
    for w in times.windows(2) {
        if !(w[1] > w[0]) {
            return Err(KibamRmError::InvalidWorkload(format!(
                "query times must be strictly increasing ({} then {})",
                w[0], w[1]
            )));
        }
    }
    let first = times[0];
    if !(first.as_seconds() >= 0.0) || times.iter().any(|t| !t.is_finite()) {
        return Err(KibamRmError::InvalidWorkload(
            "query times must be finite and non-negative".into(),
        ));
    }
    Ok(())
}

/// Finds a default `Δ = C/n` whose quanta divide both wells evenly,
/// preferring finer grids (n from 1024 up, then coarser fallbacks).
fn default_delta(capacity: Charge, c: f64) -> Result<Charge, KibamRmError> {
    let cap = capacity.value();
    let divides = |n: usize| {
        let d = cap / n as f64;
        let ok = |u: f64| {
            if u == 0.0 {
                return true;
            }
            let levels = u / d;
            (levels - levels.round()).abs() <= 1e-6 * levels.max(1.0)
        };
        ok(c * cap) && ok((1.0 - c) * cap)
    };
    // Scan a window of quanta counts: fine enough for a good
    // approximation, coarse enough to stay cheap.
    for n in 1024..=8192 {
        if divides(n) {
            return Ok(Charge::from_coulombs(cap / n as f64));
        }
    }
    for n in (128..1024).rev() {
        if divides(n) {
            return Ok(Charge::from_coulombs(cap / n as f64));
        }
    }
    Err(KibamRmError::InvalidDiscretisation(format!(
        "no default Δ divides both wells for c = {c}; pin Δ explicitly \
         on the scenario"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::Frequency;

    fn base() -> Scenario {
        Scenario::paper_cell_phone().unwrap()
    }

    #[test]
    fn builder_validates() {
        // Missing workload.
        assert!(Scenario::builder()
            .capacity(Charge::from_milliamp_hours(800.0))
            .linear()
            .time_grid(Time::from_hours(1.0), 4)
            .build()
            .is_err());
        // Missing capacity.
        assert!(Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .linear()
            .time_grid(Time::from_hours(1.0), 4)
            .build()
            .is_err());
        // Missing battery parameters.
        assert!(Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .time_grid(Time::from_hours(1.0), 4)
            .build()
            .is_err());
        // Empty grid.
        assert!(Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .linear()
            .build()
            .is_err());
        // Non-increasing grid.
        assert!(Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .linear()
            .times(vec![Time::from_hours(2.0), Time::from_hours(1.0)])
            .build()
            .is_err());
        // Bad battery.
        assert!(Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::ZERO)
            .linear()
            .time_grid(Time::from_hours(1.0), 4)
            .build()
            .is_err());
        // Bad delta / zero runs.
        assert!(Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .linear()
            .time_grid(Time::from_hours(1.0), 4)
            .delta(Charge::ZERO)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .linear()
            .time_grid(Time::from_hours(1.0), 4)
            .simulation(0, 1)
            .build()
            .is_err());
    }

    #[test]
    fn accessors_and_model() {
        let s = base();
        assert_eq!(s.name(), "paper-cell-phone");
        assert_eq!(s.capacity().as_milliamp_hours(), 800.0);
        assert_eq!(s.c(), 0.625);
        assert!(!s.is_linear());
        assert_eq!(s.times().len(), 31);
        assert_eq!(s.horizon(), Time::from_hours(30.0));
        assert_eq!(s.sim_runs(), DEFAULT_SIM_RUNS);
        let m = s.to_model().unwrap();
        assert_eq!(m.capacity(), s.capacity());
    }

    #[test]
    fn modifiers_produce_variants() {
        let s = base();
        assert_eq!(s.with_name("x").name(), "x");
        let fine = s.with_delta(Charge::from_milliamp_hours(2.0));
        assert_eq!(fine.delta().unwrap().as_milliamp_hours(), 2.0);
        let bigger = s
            .with_capacity(Charge::from_milliamp_hours(1600.0))
            .unwrap();
        assert_eq!(bigger.capacity().as_milliamp_hours(), 1600.0);
        assert!(s.with_capacity(Charge::ZERO).is_err());
        let linear = s.with_kibam(1.0, Rate::ZERO).unwrap();
        assert!(linear.is_linear());
        assert!(s.with_kibam(2.0, Rate::ZERO).is_err());
        let other = s
            .with_workload(
                Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(other.workload().n_states(), 2);
        let sim = s.with_simulation(50, 9);
        assert_eq!((sim.sim_runs(), sim.sim_seed()), (50, 9));
        assert!(s.with_times(vec![]).is_err());
    }

    #[test]
    fn effective_delta_defaults_divide_both_wells() {
        let s = base(); // pinned at 10 mAh
        assert_eq!(s.effective_delta().unwrap().as_milliamp_hours(), 10.0);
        let unpinned = Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .kibam(0.625, Rate::per_second(4.5e-5))
            .time_grid(Time::from_hours(30.0), 30)
            .build()
            .unwrap();
        let d = unpinned.effective_delta().unwrap().value();
        let u1 = 0.625 * unpinned.capacity().value();
        let u2 = 0.375 * unpinned.capacity().value();
        for u in [u1, u2] {
            let levels = u / d;
            assert!(
                (levels - levels.round()).abs() < 1e-6,
                "Δ = {d} vs well {u}"
            );
        }
    }

    #[test]
    fn config_roundtrip_preserves_everything() {
        let s = base().with_simulation(123, 77);
        let text = s.to_config_string().unwrap();
        let p = Scenario::from_config_str(&text).unwrap();
        assert_eq!(p.name(), s.name());
        assert_eq!(p.capacity(), s.capacity());
        assert_eq!(p.c(), s.c());
        assert_eq!(p.k(), s.k());
        assert_eq!(p.delta(), s.delta());
        assert_eq!(p.sim_runs(), 123);
        assert_eq!(p.sim_seed(), 77);
        assert_eq!(p.times(), s.times());
        assert_eq!(p.workload().n_states(), s.workload().n_states());
        assert_eq!(p.workload().initial(), s.workload().initial());
        assert_eq!(p.workload().currents(), s.workload().currents());
        // The CTMC survives label-for-label and rate-for-rate.
        let (a, b) = (s.workload().ctmc(), p.workload().ctmc());
        for i in 0..a.n_states() {
            assert_eq!(a.state_label(i), b.state_label(i));
            for j in 0..a.n_states() {
                assert_eq!(a.rates().get(i, j), b.rates().get(i, j));
            }
        }
    }

    #[test]
    fn canonical_bytes_agree_across_builder_paths() {
        // Path 1: the builder, field by field.
        let built = Scenario::builder()
            .name("path-one")
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .kibam(0.625, Rate::per_second(4.5e-5))
            .time_grid(Time::from_hours(30.0), 30)
            .delta(Charge::from_milliamp_hours(10.0))
            .simulation(DEFAULT_SIM_RUNS, DEFAULT_SIM_SEED)
            .build()
            .unwrap();
        // Path 2: the named constructor plus modifiers — an equal
        // scenario assembled through a completely different call chain.
        let modified = Scenario::paper_cell_phone()
            .unwrap()
            .with_delta(Charge::from_milliamp_hours(10.0));
        assert_eq!(
            built.canonical_bytes().unwrap(),
            modified.canonical_bytes().unwrap()
        );
        // Path 3: the config round-trip itself.
        let reparsed = Scenario::from_config_str(&built.to_config_string().unwrap()).unwrap();
        assert_eq!(
            built.canonical_bytes().unwrap(),
            reparsed.canonical_bytes().unwrap()
        );

        // The display name is erased from the key (it never changes the
        // answer) — even names the config line format cannot carry.
        for name in ["other", "has space", "-"] {
            assert_eq!(
                built.with_name(name).canonical_bytes().unwrap(),
                built.canonical_bytes().unwrap(),
                "name {name:?} must not perturb the key"
            );
        }
        // Fields that do shape the answer move the key.
        assert_ne!(
            built.with_simulation(7, 7).canonical_bytes().unwrap(),
            built.canonical_bytes().unwrap()
        );
        assert_ne!(
            built
                .with_delta(Charge::from_milliamp_hours(20.0))
                .canonical_bytes()
                .unwrap(),
            built.canonical_bytes().unwrap()
        );
    }

    #[test]
    fn canonical_bytes_propagate_unserialisable_state_labels() {
        let w = crate::builder::WorkloadBuilder::new()
            .state("has space", Current::ZERO)
            .build()
            .unwrap();
        let s = Scenario::builder()
            .workload(w)
            .capacity(Charge::from_coulombs(100.0))
            .linear()
            .time_grid(Time::from_hours(1.0), 2)
            .build()
            .unwrap();
        assert!(s.canonical_bytes().is_err(), "unkeyable, not mis-keyed");
    }

    #[test]
    fn config_parser_rejects_malformed_input() {
        assert!(Scenario::from_config_str("").is_err());
        assert!(Scenario::from_config_str("nonsense 1").is_err());
        assert!(Scenario::from_config_str("state a 0.1\ncapacity_c x").is_err());
        // Transition to an unknown state.
        let text = "capacity_c 100\nc 1\nk_per_s 0\nstate a 0.1\n\
                    transition a b 0.5\ntimes_s 0 10";
        assert!(Scenario::from_config_str(text).is_err());
        // Missing capacity.
        let text = "c 1\nk_per_s 0\nstate a 0.1\ntimes_s 0 10";
        assert!(Scenario::from_config_str(text).is_err());
        // Missing value after key.
        assert!(Scenario::from_config_str("name").is_err());
    }

    #[test]
    fn config_accepts_comments_and_defaults() {
        let text = "# hand-written\ncapacity_c 720 # one-fifth\nc 1\nk_per_s 0\n\
                    state on 0.5\nstate off 0\ntransition on off 1\n\
                    transition off on 1\ntimes_s 0 600 1200 1800";
        let s = Scenario::from_config_str(text).unwrap();
        assert_eq!(s.workload().n_states(), 2);
        // Defaults: first state initial, paper sim settings.
        assert_eq!(s.workload().initial(), &[1.0, 0.0]);
        assert_eq!(s.sim_runs(), DEFAULT_SIM_RUNS);
        assert!(s.is_linear());
    }

    #[test]
    fn unserialisable_names_are_rejected() {
        let w = crate::builder::WorkloadBuilder::new()
            .state("has space", Current::ZERO)
            .build()
            .unwrap();
        let s = Scenario::builder()
            .workload(w)
            .capacity(Charge::from_coulombs(100.0))
            .linear()
            .time_grid(Time::from_hours(1.0), 2)
            .build()
            .unwrap();
        assert!(s.to_config_string().is_err());
        // The scenario *name* is line-encoded too: whitespace, '#' and
        // the empty-name sentinel '-' are all unrepresentable.
        let base = Scenario::paper_cell_phone().unwrap();
        for bad in ["cell phone", "pr#7", "-"] {
            assert!(
                base.with_name(bad).to_config_string().is_err(),
                "name {bad:?} must be rejected"
            );
        }
        // A plain name still round-trips.
        assert!(base.with_name("cell-phone_7").to_config_string().is_ok());
    }

    #[test]
    fn config_parser_rejects_duplicate_transitions() {
        let text = "capacity_c 100\nc 1\nk_per_s 0\nstate a 0.5\nstate b 0\n\
                    transition a b 1\ntransition a b 0.5\ntimes_s 0 10";
        let err = Scenario::from_config_str(text).expect_err("duplicate transition");
        assert!(
            err.to_string().contains("duplicate transition 'a b'"),
            "{err}"
        );
        // Distinct directions are of course fine.
        let text = "capacity_c 100\nc 1\nk_per_s 0\nstate a 0.5\nstate b 0\n\
                    transition a b 1\ntransition b a 0.5\ntimes_s 0 10";
        assert!(Scenario::from_config_str(text).is_ok());
    }

    #[test]
    fn config_parser_rejects_duplicate_states() {
        let text = "capacity_c 100\nc 1\nk_per_s 0\nstate a 0.5\nstate a 0.1\n\
                    state b 0\ntransition a b 1\ntimes_s 0 10";
        let err = Scenario::from_config_str(text).expect_err("duplicate state");
        assert!(err.to_string().contains("duplicate state 'a'"), "{err}");
    }
}
