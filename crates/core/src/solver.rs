//! The unified solver facade: one [`Scenario`] in, one
//! [`LifetimeDistribution`] out, whichever method computes it.
//!
//! The paper answers `Pr[battery empty at t]` three ways — the §5
//! Markovian approximation, stochastic simulation, and Sericola's exact
//! algorithm for `c = 1`. Each is wrapped as a [`LifetimeSolver`]:
//!
//! * [`DiscretisationSolver`] — builds the derived CTMC at the
//!   scenario's `Δ` and solves it by uniformisation; applies to every
//!   scenario;
//! * [`SimulationSolver`] — parallel streaming Monte Carlo over the
//!   exact KiBaMRM dynamics; applies to every scenario, statistical
//!   error only (with an optional adaptive stopping rule that runs
//!   until the Wilson confidence band is tight enough);
//! * [`SericolaSolver`] — the exact algorithm; applies only to linear
//!   (`c = 1`) scenarios, where it is the gold standard.
//!
//! A [`SolverRegistry`] holds an ordered set of backends,
//! [`auto`](SolverRegistry::auto)-selects the best applicable one
//! (exact beats approximate; earlier registration wins ties), and
//! [`sweep`](SolverRegistry::sweep)s scenario grids across worker
//! threads — the hook batching and sharding layers build on.
//!
//! ```
//! use kibamrm::scenario::Scenario;
//! use kibamrm::solver::SolverRegistry;
//!
//! let scenario = Scenario::paper_cell_phone().unwrap();
//! let registry = SolverRegistry::with_default_backends();
//! // c = 0.625: auto picks the discretisation backend.
//! assert_eq!(registry.auto(&scenario).unwrap().name(), "discretisation");
//! let dist = registry.solve(&scenario).unwrap();
//! assert!(dist.cdf(units::Time::from_hours(30.0)) > 0.95);
//! ```

use crate::analysis::exact_linear_curve;
use crate::discretise::{DiscretisationOptions, DiscretisationTemplate, DiscretisedModel};
use crate::distribution::{LifetimeDistribution, SolveDiagnostics};
use crate::scenario::Scenario;
use crate::simulate::lifetime_study;
use crate::simulate::streaming_lifetime_study_budgeted;
use crate::sweep::SweepPlan;
use crate::KibamRmError;
use markov::transient::{CurveCache, Representation, TransientOptions};
use markov::Budget;
use sim::engine::{McOptions, McPool};
use std::time::Instant;
use units::Time;

/// Thread-budget knobs for a solver run, composing the two layers of
/// parallelism without oversubscription:
///
/// * **scenario-level** — how many scenarios a [`SolverRegistry::sweep`]
///   solves concurrently;
/// * **row-level** — a **cap** on the SpMV pool workers each individual
///   solve may spawn ([`markov::pool::SpmvPool`] inside the
///   uniformisation engine). The cap never *raises* a backend's own
///   configured thread count (e.g.
///   [`DiscretisationSolver::with_threads`]); it only bounds it, so a
///   sweep can divide the machine between concurrent solves.
///
/// `sweep` divides `row_threads` by the number of active sweep workers
/// before applying it, so the two layers compose without
/// oversubscribing the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverOptions {
    /// Concurrent scenario solves in a sweep (default: available
    /// parallelism).
    pub scenario_threads: usize,
    /// Row-level worker cap per solve (default: available parallelism —
    /// i.e. no cap beyond the machine itself, leaving each backend's
    /// own thread configuration in charge).
    pub row_threads: usize,
    /// Storage-format selection for uniformisation-based backends
    /// (default [`Representation::Auto`]: lattice chains iterate banded
    /// matrices with the active window, unstructured ones generic CSR).
    /// A non-`Auto` value overrides whatever the backend was configured
    /// with; `Auto` defers to the backend's own
    /// [`TransientOptions::representation`].
    pub representation: Representation,
}

impl Default for SolverOptions {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SolverOptions {
            scenario_threads: cores,
            row_threads: cores,
            representation: Representation::Auto,
        }
    }
}

impl SolverOptions {
    /// Fully sequential execution (one scenario at a time, one thread per
    /// solve).
    pub fn sequential() -> Self {
        SolverOptions {
            scenario_threads: 1,
            row_threads: 1,
            representation: Representation::Auto,
        }
    }

    /// Row-level worker count for one solve when `active` scenarios run
    /// concurrently: the row budget split across the active solves,
    /// never below 1.
    pub fn row_threads_per_solve(&self, active: usize) -> usize {
        (self.row_threads / active.max(1)).max(1)
    }
}

/// What a backend can do with a given scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// The method computes the distribution exactly (up to numerics).
    Exact,
    /// The method approximates it (discretisation / statistical error).
    Approximate,
    /// The method does not apply; the string says why.
    Unsupported(String),
}

impl Capability {
    /// Higher is better; `Unsupported` ranks zero.
    fn rank(&self) -> u8 {
        match self {
            Capability::Exact => 2,
            Capability::Approximate => 1,
            Capability::Unsupported(_) => 0,
        }
    }

    /// `true` unless the backend refuses the scenario.
    pub fn is_supported(&self) -> bool {
        !matches!(self, Capability::Unsupported(_))
    }
}

/// Warm per-group solver state: everything a backend can carry from one
/// member solve to the next — assembled patterns, curve caches, worker
/// pools. [`LifetimeSolver::solve_group`] threads one such state through
/// a batch group, and [`crate::service::LifetimeService`] keeps them
/// **resident** across requests, so an online burst of structurally
/// identical queries amortises exactly like a batch sweep.
///
/// The state is opaque to callers; a backend downcasts its own state
/// back out via [`GroupState::as_any_mut`]. States must be `Send`
/// (a resident service migrates them between request threads), but need
/// not be `Sync` — the holder serialises access, mirroring how a batch
/// group solves its members in sequence.
pub trait GroupState: Send {
    /// Downcasting hook for the owning backend ([`std::any::Any`]).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A battery-lifetime computation backend.
pub trait LifetimeSolver: Send + Sync {
    /// Stable identifier (`"discretisation"`, `"simulation"`,
    /// `"sericola"`, …).
    fn name(&self) -> &'static str;

    /// Capability introspection: can this backend handle `scenario`,
    /// and how well?
    fn capability(&self, scenario: &Scenario) -> Capability;

    /// Convenience: does the backend apply at all?
    fn supports(&self, scenario: &Scenario) -> bool {
        self.capability(scenario).is_supported()
    }

    /// Computes `t ↦ Pr[battery empty at t]` on the scenario's grid.
    ///
    /// # Errors
    ///
    /// Backend-specific validation and numerical errors; solvers must
    /// refuse (not mis-answer) scenarios they report as unsupported.
    fn solve(&self, scenario: &Scenario) -> Result<LifetimeDistribution, KibamRmError>;

    /// [`LifetimeSolver::solve`] under an explicit thread budget. The
    /// default implementation ignores the budget (most backends are
    /// single-threaded per solve); backends with internal row-level
    /// parallelism override it.
    ///
    /// # Errors
    ///
    /// As for [`LifetimeSolver::solve`].
    fn solve_with(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        let _ = options;
        self.solve(scenario)
    }

    /// [`LifetimeSolver::solve_with`] under a cooperative
    /// [`markov::Budget`]. Backends with iteration-granular check points
    /// (discretisation, simulation) override this so an exhausted budget
    /// interrupts the engine mid-solve; the default only fails fast on a
    /// budget that is *already* exhausted and otherwise runs the solve
    /// to completion.
    ///
    /// # Errors
    ///
    /// As for [`LifetimeSolver::solve_with`], plus
    /// [`KibamRmError::DeadlineExceeded`] on budget exhaustion.
    fn solve_with_budget(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        if budget.is_exhausted() {
            return Err(KibamRmError::DeadlineExceeded { completed: 0 });
        }
        self.solve_with(scenario, options)
    }

    /// A fingerprint of the solver-relevant **structure** of the
    /// scenario: two scenarios with equal fingerprints may share
    /// assembled artefacts (matrix patterns, workspaces, whole
    /// uniformisation sweeps) when solved through
    /// [`LifetimeSolver::solve_group`], and the sweep planner
    /// ([`crate::sweep::SweepPlan`]) groups a batch by this key. `None`
    /// (the default) opts the backend out of grouping — every scenario
    /// solves independently.
    fn sweep_fingerprint(&self, scenario: &Scenario) -> Option<u64> {
        let _ = scenario;
        None
    }

    /// Creates the warm state a group of structurally identical
    /// scenarios (equal [`LifetimeSolver::sweep_fingerprint`]) threads
    /// through its member solves — the group-resource handle a batch
    /// sweep holds for one group and a resident service keeps alive
    /// across requests. `None` (the default) means the backend has no
    /// shareable state: every member solves independently.
    fn new_group_state(&self, options: &SolverOptions) -> Option<Box<dyn GroupState>> {
        let _ = options;
        None
    }

    /// One member solve through warm group state (created by
    /// [`LifetimeSolver::new_group_state`] on this same backend).
    /// Implementations must return results **bit-identical** to
    /// [`LifetimeSolver::solve_with`] on the same options — shared state
    /// is an optimisation, never an approximation — and must fall back
    /// to an independent solve when handed a state they do not
    /// recognise.
    ///
    /// # Errors
    ///
    /// As for [`LifetimeSolver::solve_with`].
    fn solve_in_group(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        state: &mut dyn GroupState,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        let _ = state;
        self.solve_with(scenario, options)
    }

    /// [`LifetimeSolver::solve_in_group`] under a cooperative
    /// [`markov::Budget`] — the member-solve entry point the resident
    /// service uses for per-request deadlines. A budget-interrupted
    /// solve must leave the group state in a consistent state: re-running
    /// the same member to completion afterwards is bit-identical to
    /// never having cancelled. The default only fails fast on an
    /// already-exhausted budget; cooperative backends override it.
    ///
    /// # Errors
    ///
    /// As for [`LifetimeSolver::solve_in_group`], plus
    /// [`KibamRmError::DeadlineExceeded`] on budget exhaustion.
    fn solve_in_group_budgeted(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        state: &mut dyn GroupState,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        if budget.is_exhausted() {
            return Err(KibamRmError::DeadlineExceeded { completed: 0 });
        }
        self.solve_in_group(scenario, options, state)
    }

    /// Solves a group of structurally identical scenarios (equal
    /// [`LifetimeSolver::sweep_fingerprint`]), returning one result per
    /// scenario in order. The default threads one
    /// [`LifetimeSolver::new_group_state`] through
    /// [`LifetimeSolver::solve_in_group`] member by member (falling back
    /// to independent solves for stateless backends), so batch sweeps
    /// and the resident service share one amortisation code path.
    /// Results are **bit-identical** to [`LifetimeSolver::solve_with`]
    /// on the same options — grouping is an optimisation, never an
    /// approximation.
    fn solve_group(
        &self,
        scenarios: &[&Scenario],
        options: &SolverOptions,
    ) -> Vec<Result<LifetimeDistribution, KibamRmError>> {
        match self.new_group_state(options) {
            Some(mut state) => scenarios
                .iter()
                .map(|s| self.solve_in_group(s, options, state.as_mut()))
                .collect(),
            None => scenarios
                .iter()
                .map(|s| self.solve_with(s, options))
                .collect(),
        }
    }
}

// --------------------------------------------------------------------
// Discretisation backend (paper §5).
// --------------------------------------------------------------------

/// The paper's Markovian approximation as a solver.
#[derive(Debug, Clone, Default)]
pub struct DiscretisationSolver {
    transient: TransientOptions,
    recovery_from_empty: bool,
}

impl DiscretisationSolver {
    /// A solver with default numerics.
    pub fn new() -> Self {
        DiscretisationSolver::default()
    }

    /// Overrides the uniformisation options (threads, ε, ν factor…).
    #[must_use]
    pub fn with_transient(mut self, transient: TransientOptions) -> Self {
        self.transient = transient;
        self
    }

    /// Sets the worker-thread count for matrix–vector products.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.transient.threads = threads;
        self
    }

    /// Enables the paper's §5.2 recovery-from-empty extension for
    /// chains built with [`DiscretisationSolver::discretise`]. The
    /// measure then becomes the transient `Pr[empty at t]` — no longer
    /// monotone, hence not a lifetime CDF — so
    /// [`LifetimeSolver::solve`] refuses this configuration instead of
    /// returning a distribution whose quantile/mean operations would be
    /// silently meaningless.
    #[must_use]
    pub fn with_recovery_from_empty(mut self) -> Self {
        self.recovery_from_empty = true;
        self
    }

    /// The uniformisation options this solver will use.
    pub fn transient(&self) -> &TransientOptions {
        &self.transient
    }

    /// The derived CTMC for `scenario` (for size/stats consumers like
    /// the complexity accounting harness).
    ///
    /// # Errors
    ///
    /// Propagates model and discretisation errors.
    pub fn discretise(&self, scenario: &Scenario) -> Result<DiscretisedModel, KibamRmError> {
        let model = scenario.to_model()?;
        let opts = self.discretisation_options(scenario)?;
        DiscretisedModel::build(&model, &opts)
    }

    fn discretisation_options(
        &self,
        scenario: &Scenario,
    ) -> Result<DiscretisationOptions, KibamRmError> {
        let mut opts = DiscretisationOptions::with_delta(scenario.effective_delta()?);
        opts.transient = self.transient;
        opts.recovery_from_empty = self.recovery_from_empty;
        Ok(opts)
    }

    /// One member of a sweep-plan group: discretise through the group's
    /// shared [`DiscretisationTemplate`] (building it on the first
    /// member) and solve through the group's [`CurveCache`]. Results are
    /// bit-identical to [`DiscretisationSolver::solve`]; the sharing only
    /// skips work whose outcome is provably the same bits.
    fn solve_grouped_one(
        &self,
        scenario: &Scenario,
        template: &mut Option<DiscretisationTemplate>,
        cache: &mut CurveCache,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        if self.recovery_from_empty {
            return self.solve(scenario); // same refusal as the solo path
        }
        // Fail fast before building the derived CTMC (assembly has no
        // check points of its own). `is_exhausted` does not consume a
        // deterministic check, so iteration counting stays exact.
        if budget.is_exhausted() {
            return Err(KibamRmError::DeadlineExceeded { completed: 0 });
        }
        let started = Instant::now();
        let model = scenario.to_model()?;
        let opts = self.discretisation_options(scenario)?;
        let disc = match template.as_ref() {
            // A template mismatch (planner grouped too eagerly, or a
            // fingerprint collision) falls back to a fresh build — the
            // fallback also reproduces genuine validation errors.
            Some(t) => DiscretisedModel::build_with_template(&model, &opts, t)
                .or_else(|_| DiscretisedModel::build(&model, &opts))?,
            None => {
                let d = DiscretisedModel::build(&model, &opts)?;
                *template = d.template(&model, &opts).ok();
                d
            }
        };
        let curve = disc.empty_probability_curve_budgeted(scenario.times(), cache, budget)?;
        self.distribution_from_curve(scenario, &disc, &curve, started)
    }

    /// Shared result assembly of the solo and grouped solve paths: the
    /// curve zipped back onto the query grid plus the size/iteration
    /// diagnostics.
    fn distribution_from_curve(
        &self,
        scenario: &Scenario,
        disc: &DiscretisedModel,
        curve: &markov::transient::CurveSolution,
        started: Instant,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        let stats = disc.stats();
        let points = scenario
            .times()
            .iter()
            .zip(&curve.points)
            .map(|(&t, &(_, p))| (t, p))
            .collect();
        LifetimeDistribution::new(
            self.name(),
            points,
            SolveDiagnostics {
                states: Some(stats.states),
                generator_nonzeros: Some(stats.generator_nonzeros),
                iterations: Some(curve.iterations),
                delta: Some(scenario.effective_delta()?),
                runs: None,
                half_width: None,
                wall_seconds: started.elapsed().as_secs_f64(),
            },
        )
    }

    /// The solver with a sweep-level thread budget applied, mirroring
    /// what [`LifetimeSolver::solve_with`] does before solving.
    fn with_budget(&self, options: &SolverOptions) -> DiscretisationSolver {
        let mut solver = self.clone();
        solver.transient.threads = solver.transient.threads.min(options.row_threads.max(1));
        if options.representation != Representation::Auto {
            solver.transient.representation = options.representation;
        }
        solver
    }

    /// Attempts to solve a whole sweep-plan group as one **column
    /// panel**: every member is discretised through the group's shared
    /// template, and members whose uniformised `Pᵀ` is bitwise
    /// identical (rate-rescale families) advance through uniformisation
    /// together — one read of each matrix diagonal per iteration feeds
    /// all of them (see
    /// [`DiscretisedModel::empty_probability_curves_panel`]). Every
    /// returned distribution is bit-identical to
    /// [`DiscretisationSolver::solve`] on the same member.
    ///
    /// Returns `None` when the group cannot panel — a member fails to
    /// build, or the models do not share `α`/measure/options — and the
    /// caller falls back to the serial grouped path, which reproduces
    /// any genuine per-member error in the right slot.
    fn solve_group_panel(
        &self,
        scenarios: &[&Scenario],
    ) -> Option<Vec<Result<LifetimeDistribution, KibamRmError>>> {
        let started = Instant::now();
        let mut template: Option<DiscretisationTemplate> = None;
        let mut discs: Vec<DiscretisedModel> = Vec::with_capacity(scenarios.len());
        for scenario in scenarios {
            let model = scenario.to_model().ok()?;
            let opts = self.discretisation_options(scenario).ok()?;
            let disc = match template.as_ref() {
                Some(t) => DiscretisedModel::build_with_template(&model, &opts, t)
                    .or_else(|_| DiscretisedModel::build(&model, &opts))
                    .ok()?,
                None => {
                    let d = DiscretisedModel::build(&model, &opts).ok()?;
                    template = d.template(&model, &opts).ok();
                    d
                }
            };
            discs.push(disc);
        }
        let members: Vec<(&DiscretisedModel, &[Time])> = discs
            .iter()
            .zip(scenarios)
            .map(|(d, s)| (d, s.times()))
            .collect();
        let panel =
            DiscretisedModel::empty_probability_curves_panel(&members, &Budget::unlimited())
                .ok()?;
        Some(
            scenarios
                .iter()
                .zip(&discs)
                .zip(&panel.curves)
                .map(|((s, d), curve)| self.distribution_from_curve(s, d, curve, started))
                .collect(),
        )
    }
}

impl LifetimeSolver for DiscretisationSolver {
    fn name(&self) -> &'static str {
        "discretisation"
    }

    fn capability(&self, _scenario: &Scenario) -> Capability {
        Capability::Approximate
    }

    fn solve(&self, scenario: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
        if self.recovery_from_empty {
            return Err(KibamRmError::InvalidDiscretisation(
                "recovery-from-empty yields the transient Pr[empty at t], which is \
                 not a lifetime CDF; use DiscretisationSolver::discretise and \
                 empty_probability_curve for that measure"
                    .into(),
            ));
        }
        let started = Instant::now();
        let disc = self.discretise(scenario)?;
        let curve = disc.empty_probability_curve(scenario.times())?;
        self.distribution_from_curve(scenario, &disc, &curve, started)
    }

    fn solve_with(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        // Row-level parallelism is this backend's SpMV pool: the budget
        // the registry hands down (already divided among concurrent
        // sweep workers) acts as a cap — it never raises a thread count
        // this solver was explicitly configured with. An explicit
        // (non-Auto) representation in the budget overrides the
        // backend's; Auto leaves the backend's own choice in place.
        self.with_budget(options).solve(scenario)
    }

    fn solve_with_budget(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        // A fresh template/cache pair reproduces the solo path bit for
        // bit (grouping is an optimisation, never an approximation), so
        // the budgeted solo solve reuses the grouped engine.
        self.with_budget(options).solve_grouped_one(
            scenario,
            &mut None,
            &mut CurveCache::new(),
            budget,
        )
    }

    fn sweep_fingerprint(&self, scenario: &Scenario) -> Option<u64> {
        if self.recovery_from_empty {
            // solve() refuses this configuration; don't group refusals.
            return None;
        }
        let model = scenario.to_model().ok()?;
        let opts = self.discretisation_options(scenario).ok()?;
        crate::discretise::structural_fingerprint(&model, &opts).ok()
    }

    fn new_group_state(&self, options: &SolverOptions) -> Option<Box<dyn GroupState>> {
        let _ = options;
        // One template, one curve cache for the whole group: the banded
        // pattern, DIA offsets, state labels and Fox–Glynn workspace are
        // assembled on the first member; later members refill numeric
        // values, and rate-rescaled members reuse the whole
        // uniformisation sweep (see [`markov::transient::CurveCache`]).
        Some(Box::new(DiscretisationGroupState {
            template: None,
            cache: CurveCache::new(),
        }))
    }

    fn solve_in_group(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        state: &mut dyn GroupState,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        self.solve_in_group_budgeted(scenario, options, state, &Budget::unlimited())
    }

    fn solve_in_group_budgeted(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        state: &mut dyn GroupState,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        match state
            .as_any_mut()
            .downcast_mut::<DiscretisationGroupState>()
        {
            Some(st) => self.with_budget(options).solve_grouped_one(
                scenario,
                &mut st.template,
                &mut st.cache,
                budget,
            ),
            // Not our state (a caller's bookkeeping slip): solve
            // independently rather than mis-share.
            None => self.solve_with_budget(scenario, options, budget),
        }
    }

    fn solve_group(
        &self,
        scenarios: &[&Scenario],
        options: &SolverOptions,
    ) -> Vec<Result<LifetimeDistribution, KibamRmError>> {
        // Groups on the banded active-window engine go through the
        // column-panel sweep: it is the one engine whose
        // horizon-dependent window trimming prevents the serial
        // `CurveCache` from sharing sweeps across rate-rescaled
        // members, so advancing them together is where the matrix
        // traffic actually shrinks. CSR groups (and window-off groups)
        // keep the serial cache, whose extend/remix fast path already
        // collapses a rescale family into one sweep.
        let solver = self.with_budget(options);
        if scenarios.len() > 1
            && !solver.recovery_from_empty
            && solver.transient.active_window
            && solver.transient.representation != Representation::Csr
        {
            if let Some(results) = solver.solve_group_panel(scenarios) {
                return results;
            }
        }
        // Serial grouped path — the trait default's behaviour.
        match self.new_group_state(options) {
            Some(mut state) => scenarios
                .iter()
                .map(|s| self.solve_in_group(s, options, state.as_mut()))
                .collect(),
            None => scenarios
                .iter()
                .map(|s| self.solve_with(s, options))
                .collect(),
        }
    }
}

/// The discretisation backend's warm group state: the shared
/// [`DiscretisationTemplate`] (pattern, offsets, labels — value-refilled
/// per member) and the [`CurveCache`] (Fox–Glynn workspace, SpMV pool,
/// and the reusable uniformisation sweep of a rate-rescale family).
#[derive(Debug, Default)]
pub struct DiscretisationGroupState {
    template: Option<DiscretisationTemplate>,
    cache: CurveCache,
}

impl DiscretisationGroupState {
    /// Approximate heap footprint of the warm state in bytes — what a
    /// resident holder's warm-budget accounting charges for this group.
    pub fn approx_bytes(&self) -> usize {
        self.cache.approx_bytes()
    }
}

impl GroupState for DiscretisationGroupState {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

// --------------------------------------------------------------------
// Simulation backend (paper §6's validation baseline).
// --------------------------------------------------------------------

/// Monte Carlo over the exact KiBaMRM dynamics as a solver — the
/// parallel streaming engine ([`sim::engine::McPool`]).
///
/// Replications run on a worker pool in fixed batches whose partial
/// accumulators merge in batch order, with per-replication
/// counter-derived RNG streams — so a solve's result is **bit-identical
/// for any thread count** (the same guarantee the SpMV pool gives the
/// uniformisation engine). Memory is O(time-grid), independent of the
/// replication count, which makes 10⁶–10⁷ replications practical.
///
/// The default stopping rule runs exactly the scenario's
/// [`sim_runs`](Scenario::sim_runs); [`SimulationSolver::with_adaptive`]
/// instead doubles the replication count until the largest 95 % Wilson
/// half-width over the query grid drops below a target (or a cap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationSolver {
    horizon: Option<Time>,
    threads: usize,
    batch: u64,
    target_half_width: Option<f64>,
    max_runs: u64,
}

impl Default for SimulationSolver {
    fn default() -> Self {
        let defaults = McOptions::default();
        SimulationSolver {
            horizon: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch: defaults.batch,
            target_half_width: None,
            max_runs: defaults.max_runs,
        }
    }
}

impl SimulationSolver {
    /// A solver simulating up to the scenario's last query time, using
    /// every available core.
    pub fn new() -> Self {
        SimulationSolver::default()
    }

    /// Extends the simulation horizon beyond the scenario's last query
    /// time (useful when the tail of the *observed* lifetimes matters,
    /// e.g. for [`SimulationSolver::study`] quantiles). A horizon
    /// shorter than the query grid is ignored: the empirical CDF is
    /// only valid up to the horizon, so shortening it would silently
    /// flatline the tail of the answer.
    #[must_use]
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Sets the worker-thread count for replication batches (results do
    /// not depend on it — that is the engine's bit-identity guarantee).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables adaptive stopping: after the scenario's `sim_runs`
    /// initial replications, the engine keeps doubling the replication
    /// count until the largest 95 % Wilson half-width over the query
    /// grid is at most `target_half_width`, or `max_runs` replications
    /// have been spent. The solve's `runs` diagnostic reports the count
    /// actually used.
    #[must_use]
    pub fn with_adaptive(mut self, target_half_width: f64, max_runs: u64) -> Self {
        self.target_half_width = Some(target_half_width);
        self.max_runs = max_runs;
        self
    }

    /// Sets the replications-per-batch scheduling quantum (the merge
    /// unit of the parallel engine; results do not depend on it beyond
    /// floating-point reassociation of the moment sketches).
    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// The simulation horizon for `scenario`: never short of the query
    /// grid (empirical CDF values past the horizon would be silently
    /// wrong).
    fn effective_horizon(&self, scenario: &Scenario) -> Time {
        self.horizon
            .map_or(scenario.horizon(), |h| h.max(scenario.horizon()))
    }

    fn engine_options(&self, scenario: &Scenario) -> Result<McOptions, KibamRmError> {
        if scenario.sim_runs() == 0 {
            return Err(KibamRmError::InvalidWorkload(
                "scenario requests zero simulation replications; set a positive \
                 count with with_simulation(runs, seed)"
                    .into(),
            ));
        }
        let runs = scenario.sim_runs() as u64;
        Ok(McOptions {
            runs,
            batch: self.batch.max(1),
            target_half_width: self.target_half_width,
            // The cap never truncates the initial round the scenario
            // asked for.
            max_runs: self.max_runs.max(runs),
        })
    }

    /// The exact empirical reference study (order-statistics quantiles
    /// of *observed* lifetimes, confidence intervals, …). Keeps every
    /// lifetime — O(runs) memory — and always runs **exactly** the
    /// scenario's `sim_runs` replications: the adaptive stopping rule
    /// applies only to the streaming paths
    /// ([`LifetimeSolver::solve`] / [`SimulationSolver::streaming_study`]),
    /// so under `with_adaptive` this study describes the solve's *initial
    /// round*, not its full replication count. An all-censored study is
    /// returned as the valid all-zero curve.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors and the zero-replication refusal.
    pub fn study(
        &self,
        scenario: &Scenario,
    ) -> Result<sim::replication::LifetimeStudy, KibamRmError> {
        let model = scenario.to_model()?;
        self.engine_options(scenario)?; // zero-runs refusal
        lifetime_study(
            &model,
            self.effective_horizon(scenario),
            scenario.sim_runs(),
            scenario.sim_seed(),
        )
    }

    /// The streaming study behind a solve: fixed-grid depletion counts
    /// over the scenario's query times plus moment sketches, produced by
    /// the parallel engine under this solver's stopping rule (O(grid)
    /// memory, bit-identical for any thread count).
    ///
    /// # Errors
    ///
    /// As for [`LifetimeSolver::solve`].
    pub fn streaming_study(
        &self,
        scenario: &Scenario,
    ) -> Result<sim::streaming::StreamingLifetimeStudy, KibamRmError> {
        let pool = McPool::new(self.threads);
        self.streaming_study_on(scenario, &pool, &Budget::unlimited())
    }

    /// [`SimulationSolver::streaming_study`] on an existing worker pool
    /// (what [`LifetimeSolver::solve_group`] shares across a sweep
    /// group).
    fn streaming_study_on(
        &self,
        scenario: &Scenario,
        pool: &McPool,
        budget: &Budget,
    ) -> Result<sim::streaming::StreamingLifetimeStudy, KibamRmError> {
        let model = scenario.to_model()?;
        let opts = self.engine_options(scenario)?;
        streaming_lifetime_study_budgeted(
            &model,
            scenario.times(),
            self.effective_horizon(scenario),
            scenario.sim_seed(),
            &opts,
            pool,
            budget,
        )
    }

    /// One solve on a given pool (shared result assembly of the solo and
    /// grouped paths).
    fn solve_on(
        &self,
        scenario: &Scenario,
        pool: &McPool,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        // Fail fast before building the model (`is_exhausted` does not
        // consume a deterministic check, keeping batch counting exact).
        if budget.is_exhausted() {
            return Err(KibamRmError::DeadlineExceeded { completed: 0 });
        }
        let started = Instant::now();
        let study = self.streaming_study_on(scenario, pool, budget)?;
        // One prefix pass over the buckets, not per-point re-summing.
        let n = study.total_runs() as f64;
        let points = scenario
            .times()
            .iter()
            .zip(study.cumulative_counts())
            .map(|(&t, count)| (t, if n > 0.0 { count as f64 / n } else { 0.0 }))
            .collect();
        LifetimeDistribution::new(
            self.name(),
            points,
            SolveDiagnostics {
                states: None,
                generator_nonzeros: None,
                iterations: None,
                delta: None,
                runs: Some(study.total_runs() as usize),
                // The statistical error bound of this answer — what a
                // degraded service response surfaces to the caller.
                half_width: Some(study.max_half_width()),
                wall_seconds: started.elapsed().as_secs_f64(),
            },
        )
    }

    /// The solver with a sweep-level thread budget applied: the budget
    /// caps this backend's worker count, it never raises it.
    fn with_budget(&self, options: &SolverOptions) -> SimulationSolver {
        let mut solver = *self;
        solver.threads = solver.threads.min(options.row_threads.max(1));
        solver
    }
}

impl LifetimeSolver for SimulationSolver {
    fn name(&self) -> &'static str {
        "simulation"
    }

    fn capability(&self, _scenario: &Scenario) -> Capability {
        Capability::Approximate
    }

    fn solve(&self, scenario: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
        self.solve_on(scenario, &McPool::new(self.threads), &Budget::unlimited())
    }

    fn solve_with(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        // Replication-level parallelism is this backend's worker pool:
        // the row-thread budget (already divided among concurrent sweep
        // workers) caps it, exactly as it caps the SpMV pool of the
        // discretisation backend. The answer does not depend on the cap
        // — only the wall time does.
        self.with_budget(options).solve(scenario)
    }

    fn solve_with_budget(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        let solver = self.with_budget(options);
        solver.solve_on(scenario, &McPool::new(solver.threads), budget)
    }

    fn sweep_fingerprint(&self, scenario: &Scenario) -> Option<u64> {
        if scenario.sim_runs() == 0 {
            // solve() refuses this scenario; don't group refusals.
            return None;
        }
        // Every simulation-backed scenario shares the same trajectory
        // machinery (the worker pool); grouping them into one plan group
        // lets a sweep spawn the pool once instead of once per scenario.
        // Seeds are per-scenario counter-derived streams, so sharing the
        // pool cannot couple members — results stay bit-identical to
        // independent solves by construction.
        Some(u64::from_le_bytes(*b"MCPOOL\0\0"))
    }

    fn new_group_state(&self, options: &SolverOptions) -> Option<Box<dyn GroupState>> {
        // One worker pool for the whole group (and, in a resident
        // service, for the process lifetime): workers spawn once, not
        // once per scenario.
        Some(Box::new(SimulationGroupState {
            pool: McPool::new(self.with_budget(options).threads),
        }))
    }

    fn solve_in_group(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        state: &mut dyn GroupState,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        self.solve_in_group_budgeted(scenario, options, state, &Budget::unlimited())
    }

    fn solve_in_group_budgeted(
        &self,
        scenario: &Scenario,
        options: &SolverOptions,
        state: &mut dyn GroupState,
        budget: &Budget,
    ) -> Result<LifetimeDistribution, KibamRmError> {
        match state.as_any_mut().downcast_mut::<SimulationGroupState>() {
            Some(st) => self
                .with_budget(options)
                .solve_on(scenario, &st.pool, budget),
            None => self.solve_with_budget(scenario, options, budget),
        }
    }
}

/// The simulation backend's warm group state: the long-lived
/// [`McPool`]. Per-replication counter-derived RNG streams keep pooled
/// solves bit-identical to independent ones, so the pool can serve any
/// number of scenarios (and requests) without coupling them.
#[derive(Debug)]
pub struct SimulationGroupState {
    pool: McPool,
}

impl SimulationGroupState {
    /// Worker count of the resident pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

impl GroupState for SimulationGroupState {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

// --------------------------------------------------------------------
// Sericola backend (exact, c = 1 only).
// --------------------------------------------------------------------

/// Sericola's exact performability algorithm as a solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct SericolaSolver;

impl SericolaSolver {
    /// A solver with default options.
    pub fn new() -> Self {
        SericolaSolver
    }
}

impl LifetimeSolver for SericolaSolver {
    fn name(&self) -> &'static str {
        "sericola"
    }

    fn capability(&self, scenario: &Scenario) -> Capability {
        if scenario.is_linear() {
            Capability::Exact
        } else {
            Capability::Unsupported(format!(
                "Sericola's algorithm requires c = 1 (all charge available), \
                 scenario has c = {}",
                scenario.c()
            ))
        }
    }

    fn solve(&self, scenario: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
        let started = Instant::now();
        let model = scenario.to_model()?;
        let curve = exact_linear_curve(&model, scenario.times())?;
        let points = scenario
            .times()
            .iter()
            .zip(&curve)
            .map(|(&t, &(_, p))| (t, p))
            .collect();
        LifetimeDistribution::new(
            self.name(),
            points,
            SolveDiagnostics {
                states: None,
                generator_nonzeros: None,
                iterations: None,
                delta: None,
                runs: None,
                half_width: None,
                wall_seconds: started.elapsed().as_secs_f64(),
            },
        )
    }
}

// --------------------------------------------------------------------
// Registry: selection, dispatch, batch sweeps.
// --------------------------------------------------------------------

/// An ordered collection of solver backends.
pub struct SolverRegistry {
    solvers: Vec<Box<dyn LifetimeSolver>>,
    options: SolverOptions,
}

impl std::fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverRegistry")
            .field(
                "solvers",
                &self.solvers.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Default for SolverRegistry {
    fn default() -> Self {
        SolverRegistry::with_default_backends()
    }
}

impl SolverRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        SolverRegistry {
            solvers: Vec::new(),
            options: SolverOptions::default(),
        }
    }

    /// Replaces the thread-budget options (see [`SolverOptions`]).
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// The registry's thread-budget options.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// The standard set: Sericola (exact where it applies), then the
    /// Markovian approximation, then simulation.
    pub fn with_default_backends() -> Self {
        let mut r = SolverRegistry::empty();
        r.register(Box::new(SericolaSolver::new()));
        r.register(Box::new(DiscretisationSolver::new()));
        r.register(Box::new(SimulationSolver::new()));
        r
    }

    /// Appends a backend (later = lower priority among equal
    /// capabilities).
    pub fn register(&mut self, solver: Box<dyn LifetimeSolver>) {
        self.solvers.push(solver);
    }

    /// The registered backends, in priority order.
    pub fn solvers(&self) -> impl Iterator<Item = &dyn LifetimeSolver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Looks a backend up by name.
    pub fn find(&self, name: &str) -> Option<&dyn LifetimeSolver> {
        self.solvers().find(|s| s.name() == name)
    }

    /// Picks the best applicable backend for `scenario`: exact beats
    /// approximate, earlier registration breaks ties. With the default
    /// backends this selects Sericola for `c = 1` scenarios and the
    /// discretisation solver otherwise.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] when no backend supports the
    /// scenario; the message collects each backend's refusal reason.
    pub fn auto(&self, scenario: &Scenario) -> Result<&dyn LifetimeSolver, KibamRmError> {
        self.auto_index(scenario).map(|i| self.solvers[i].as_ref())
    }

    /// [`SolverRegistry::auto`] returning the backend's registry index —
    /// what the sweep planner keys its groups by.
    pub(crate) fn auto_index(&self, scenario: &Scenario) -> Result<usize, KibamRmError> {
        let mut best: Option<(usize, u8)> = None;
        let mut reasons = Vec::new();
        for (i, solver) in self.solvers().enumerate() {
            match solver.capability(scenario) {
                Capability::Unsupported(why) => reasons.push(format!("{}: {why}", solver.name())),
                cap => {
                    let rank = cap.rank();
                    if best.is_none_or(|(_, r)| rank > r) {
                        best = Some((i, rank));
                    }
                }
            }
        }
        best.map(|(i, _)| i).ok_or_else(|| {
            KibamRmError::InvalidWorkload(format!(
                "no registered solver supports scenario '{}': {}",
                scenario.name(),
                if reasons.is_empty() {
                    "registry is empty".to_owned()
                } else {
                    reasons.join("; ")
                }
            ))
        })
    }

    /// The backend at registry index `i` (sweep-plan execution).
    pub(crate) fn solver_at(&self, i: usize) -> &dyn LifetimeSolver {
        self.solvers[i].as_ref()
    }

    /// Auto-selects a backend and solves.
    ///
    /// # Errors
    ///
    /// Selection errors from [`SolverRegistry::auto`] plus the chosen
    /// backend's solve errors.
    pub fn solve(&self, scenario: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
        self.auto(scenario)?.solve_with(scenario, &self.options)
    }

    /// Solves a whole scenario grid through a structure-sharing
    /// [`SweepPlan`]: byte-identical scenarios are deduplicated (one
    /// solve, one result **per input slot**), structurally identical
    /// scenarios are grouped so each group assembles its lattice pattern,
    /// DIA offsets and Fox–Glynn workspace once (and rate-rescaled
    /// families share a single uniformisation sweep), and the groups fan
    /// out over the registry's scenario-thread budget. Results come back
    /// in input order, **bit-identical** to solving each scenario
    /// independently under the same per-solve thread budget (the cached
    /// fast paths are exact; only a *different* effective row-worker
    /// count can move last bits, because the fused-dot reduction order
    /// follows the worker count — with `row_threads = 1`, or chains
    /// below the parallel-SpMV threshold, planned and independent solves
    /// agree bit for bit unconditionally); per-scenario failures do not
    /// abort the batch.
    pub fn sweep(&self, scenarios: &[Scenario]) -> Vec<Result<LifetimeDistribution, KibamRmError>> {
        self.sweep_with_threads(scenarios, self.options.scenario_threads)
    }

    /// [`SolverRegistry::sweep`] with an explicit worker count.
    ///
    /// The plan's groups are striped across the workers, and the
    /// registry's row-thread budget is divided by the active worker
    /// count, so scenario-level and row-level parallelism compose
    /// without oversubscribing the machine.
    pub fn sweep_with_threads(
        &self,
        scenarios: &[Scenario],
        threads: usize,
    ) -> Vec<Result<LifetimeDistribution, KibamRmError>> {
        let plan = SweepPlan::build(self, scenarios);
        self.execute_plan(&plan, scenarios, threads)
    }

    /// The pre-planner per-scenario sweep: auto-select and solve every
    /// scenario independently, with no deduplication and no structure
    /// sharing. Kept as the reference baseline the planner is benchmarked
    /// (and property-tested) against.
    pub fn sweep_naive(
        &self,
        scenarios: &[Scenario],
    ) -> Vec<Result<LifetimeDistribution, KibamRmError>> {
        self.sweep_naive_with_threads(scenarios, self.options.scenario_threads)
    }

    /// [`SolverRegistry::sweep_naive`] with an explicit worker count.
    ///
    /// Each worker owns a disjoint slice of the result vector (no result
    /// mutex), and the registry's row-thread budget is divided by the
    /// active worker count, so scenario-level and row-level parallelism
    /// compose without oversubscribing the machine.
    pub fn sweep_naive_with_threads(
        &self,
        scenarios: &[Scenario],
        threads: usize,
    ) -> Vec<Result<LifetimeDistribution, KibamRmError>> {
        let workers = threads.max(1).min(scenarios.len().max(1));
        let per_solve = SolverOptions {
            row_threads: self.options.row_threads_per_solve(workers),
            ..self.options
        };
        let solve_one = |s: &Scenario| match self.auto(s) {
            Ok(solver) => solver.solve_with(s, &per_solve),
            Err(e) => Err(e),
        };
        if workers <= 1 || scenarios.len() <= 1 {
            return scenarios.iter().map(solve_one).collect();
        }
        let mut results: Vec<Option<Result<LifetimeDistribution, KibamRmError>>> =
            (0..scenarios.len()).map(|_| None).collect();
        let chunk = scenarios.len().div_ceil(workers);
        // Workers write through disjoint `chunks_mut` slices — no shared
        // lock, no post-hoc reassembly. Static contiguous chunking trades
        // away dynamic load balancing: a grid sorted by cost (e.g. a Δ
        // sweep fine-to-coarse) serialises its expensive scenarios in one
        // worker's chunk, so cost-skewed grids should be shuffled by the
        // caller (or solved with row_threads > 1, which the per-solve
        // budget above keeps from oversubscribing).
        std::thread::scope(|scope| {
            for (scenario_chunk, result_chunk) in
                scenarios.chunks(chunk).zip(results.chunks_mut(chunk))
            {
                let solve_one = &solve_one;
                scope.spawn(move || {
                    for (scenario, slot) in scenario_chunk.iter().zip(result_chunk.iter_mut()) {
                        *slot = Some(solve_one(scenario));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every chunk filled"))
            .collect()
    }

    /// Expands a [`crate::sweep::ScenarioGrid`] and solves it through the
    /// planned sweep, returning the labelled result set.
    ///
    /// # Errors
    ///
    /// Grid expansion errors (invalid axis values); per-point solve
    /// failures are reported inside the result set instead.
    pub fn sweep_grid(
        &self,
        grid: &crate::sweep::ScenarioGrid,
    ) -> Result<crate::distribution::SweepResultSet, KibamRmError> {
        let scenarios = grid.expand()?;
        let labels = scenarios.iter().map(|s| s.name().to_owned()).collect();
        let results = self.sweep(&scenarios);
        crate::distribution::SweepResultSet::new(labels, results)
    }

    /// Runs an already-built plan over `scenarios` (the slice the plan
    /// was built from) with `threads` sweep workers.
    fn execute_plan(
        &self,
        plan: &SweepPlan,
        scenarios: &[Scenario],
        threads: usize,
    ) -> Vec<Result<LifetimeDistribution, KibamRmError>> {
        let groups = plan.groups();
        let workers = threads.max(1).min(groups.len().max(1));
        let per_solve = SolverOptions {
            row_threads: self.options.row_threads_per_solve(workers),
            ..self.options
        };
        let run_group =
            |group: &crate::sweep::PlanGroup| -> Vec<(usize, Result<LifetimeDistribution, KibamRmError>)> {
                let solver = self.solver_at(group.solver_index());
                let members: Vec<&Scenario> =
                    group.members().iter().map(|&i| &scenarios[i]).collect();
                let mut results = if members.len() == 1 {
                    vec![solver.solve_with(members[0], &per_solve)]
                } else {
                    solver.solve_group(&members, &per_solve)
                };
                // A malformed backend returning the wrong count must not
                // poison unrelated slots.
                while results.len() < members.len() {
                    results.push(Err(KibamRmError::InvalidWorkload(format!(
                        "backend '{}' returned {} results for a group of {}",
                        solver.name(),
                        results.len(),
                        members.len()
                    ))));
                }
                results.truncate(members.len());
                group.members().iter().copied().zip(results).collect()
            };

        let mut results: Vec<Option<Result<LifetimeDistribution, KibamRmError>>> =
            (0..scenarios.len()).map(|_| None).collect();
        if workers <= 1 || groups.len() <= 1 {
            for group in groups {
                for (i, r) in run_group(group) {
                    results[i] = Some(r);
                }
            }
        } else {
            // Groups are striped across workers (group k → worker
            // k mod workers): cheap static balancing that spreads a
            // cost-sorted grid's expensive groups over all workers.
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let run_group = &run_group;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for group in groups.iter().skip(w).step_by(workers) {
                                out.extend(run_group(group));
                            }
                            out
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, r) in handle.join().expect("sweep worker panicked") {
                        results[i] = Some(r);
                    }
                }
            });
        }
        // Duplicates copy their canonical slot's result; unsupported
        // scenarios report the selection error. Canonical slots always
        // precede their duplicates, so one ascending pass settles both.
        for i in 0..scenarios.len() {
            match plan.slot(i) {
                crate::sweep::PlanSlot::Grouped => {}
                crate::sweep::PlanSlot::Unsupported(e) => results[i] = Some(Err(e.clone())),
                crate::sweep::PlanSlot::DuplicateOf(j) => {
                    let r = results[*j].clone().expect("canonical slot filled first");
                    results[i] = Some(r);
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    /// Runs **every** applicable backend on the scenario and reports the
    /// pairwise sup-distances — the paper's §6 triple cross-check as an
    /// API, so users can validate their own models before trusting a
    /// coarse-`Δ` approximation.
    ///
    /// # Errors
    ///
    /// When no backend applies, or any applicable backend fails.
    pub fn cross_validate(&self, scenario: &Scenario) -> Result<CrossValidation, KibamRmError> {
        let mut results = Vec::new();
        for solver in self.solvers() {
            if solver.supports(scenario) {
                results.push(solver.solve(scenario)?);
            }
        }
        if results.is_empty() {
            return Err(KibamRmError::InvalidWorkload(format!(
                "no registered solver supports scenario '{}'",
                scenario.name()
            )));
        }
        let mut pairwise = Vec::new();
        for i in 0..results.len() {
            for j in i + 1..results.len() {
                pairwise.push((
                    results[i].method(),
                    results[j].method(),
                    results[i].max_difference(&results[j])?,
                ));
            }
        }
        Ok(CrossValidation { results, pairwise })
    }
}

/// Every applicable method's answer for one scenario, plus how far apart
/// they are.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// One distribution per applicable backend, in registry order.
    pub results: Vec<LifetimeDistribution>,
    /// `(method a, method b, sup |a − b|)` for every pair.
    pub pairwise: Vec<(&'static str, &'static str, f64)>,
}

impl CrossValidation {
    /// The result computed by `method`, if that backend ran.
    pub fn result(&self, method: &str) -> Option<&LifetimeDistribution> {
        self.results.iter().find(|d| d.method() == method)
    }

    /// The largest pairwise disagreement (0 for a single method).
    pub fn max_disagreement(&self) -> f64 {
        self.pairwise.iter().map(|&(_, _, d)| d).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use units::{Charge, Current, Frequency};

    /// Small linear scenario: Sericola stays cheap (νt ≈ 500).
    fn small_linear() -> Scenario {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        Scenario::builder()
            .name("small-linear")
            .workload(w)
            .capacity(Charge::from_amp_seconds(72.0))
            .linear()
            .times(
                (1..=24)
                    .map(|i| Time::from_seconds(i as f64 * 10.0))
                    .collect(),
            )
            .delta(Charge::from_amp_seconds(0.25))
            .simulation(400, 31)
            .build()
            .unwrap()
    }

    fn two_well() -> Scenario {
        Scenario::paper_cell_phone().unwrap()
    }

    #[test]
    fn auto_picks_sericola_for_linear_scenarios() {
        let registry = SolverRegistry::with_default_backends();
        assert_eq!(registry.auto(&small_linear()).unwrap().name(), "sericola");
        assert_eq!(registry.auto(&two_well()).unwrap().name(), "discretisation");
    }

    #[test]
    fn capability_introspection() {
        let s = two_well();
        assert!(matches!(
            SericolaSolver::new().capability(&s),
            Capability::Unsupported(_)
        ));
        assert!(!SericolaSolver::new().supports(&s));
        assert!(DiscretisationSolver::new().supports(&s));
        assert!(SimulationSolver::new().supports(&s));
        assert!(SericolaSolver::new().supports(&small_linear()));
        assert!(Capability::Exact.rank() > Capability::Approximate.rank());
        assert!(!Capability::Unsupported("x".into()).is_supported());
    }

    #[test]
    fn sericola_refuses_unsupported_scenarios() {
        let err = SericolaSolver::new().solve(&two_well());
        assert!(matches!(err, Err(KibamRmError::InvalidBattery(_))));
    }

    #[test]
    fn all_three_backends_agree_on_the_small_linear_scenario() {
        let s = small_linear();
        let exact = SericolaSolver::new().solve(&s).unwrap();
        let approx = DiscretisationSolver::new().solve(&s).unwrap();
        let sim = SimulationSolver::new().solve(&s).unwrap();
        assert_eq!(exact.method(), "sericola");
        assert_eq!(approx.method(), "discretisation");
        assert_eq!(sim.method(), "simulation");
        // The paper's own Fig. 7 message: the phase-type approximation of
        // a near-deterministic CDF converges slowly in Δ, so the centre
        // still smears at 288 levels; simulation only carries binomial
        // noise (400 runs ⇒ σ ≈ 0.025).
        assert!(exact.max_difference(&approx).unwrap() < 0.15);
        assert!(exact.max_difference(&sim).unwrap() < 0.1);
        // Diagnostics reflect the method.
        assert!(approx.diagnostics().states.unwrap() > 100);
        assert!(approx.diagnostics().iterations.unwrap() > 0);
        assert_eq!(sim.diagnostics().runs, Some(400));
        assert_eq!(exact.diagnostics().states, None);
    }

    #[test]
    fn recovery_from_empty_refuses_the_cdf_facade() {
        // The transient Pr[empty at t] is not a lifetime CDF; solve()
        // must refuse rather than hand out meaningless quantiles.
        let solver = DiscretisationSolver::new().with_recovery_from_empty();
        let err = solver.solve(&small_linear());
        assert!(matches!(err, Err(KibamRmError::InvalidDiscretisation(_))));
        // The derived chain itself remains reachable for that measure.
        assert!(solver.discretise(&two_well()).is_ok());
    }

    #[test]
    fn zero_replications_report_a_precise_error() {
        let s = small_linear().with_simulation(0, 1);
        let err = SimulationSolver::new().solve(&s).expect_err("zero runs");
        assert!(
            err.to_string().contains("zero simulation replications"),
            "{err}"
        );
    }

    #[test]
    fn simulation_horizon_never_shrinks_below_the_query_grid() {
        // A horizon shorter than the grid would flatline the CDF tail
        // (empirical CDFs are only valid up to the horizon); the solver
        // must clamp it to the last query time instead.
        let s = small_linear();
        let clamped = SimulationSolver::new()
            .with_horizon(Time::from_seconds(50.0)) // grid runs to 240 s
            .solve(&s)
            .unwrap();
        let default = SimulationSolver::new().solve(&s).unwrap();
        assert!(
            clamped.max_difference(&default).unwrap() < 1e-12,
            "short horizon must be ignored"
        );
        assert!(
            clamped.points().last().unwrap().1 > 0.9,
            "tail must keep rising past the bogus horizon"
        );
    }

    #[test]
    fn registry_solve_dispatches_and_matches_direct_calls() {
        let registry = SolverRegistry::with_default_backends();
        let s = small_linear();
        let via_registry = registry.solve(&s).unwrap();
        let direct = SericolaSolver::new().solve(&s).unwrap();
        assert_eq!(via_registry.method(), "sericola");
        assert!(via_registry.max_difference(&direct).unwrap() < 1e-12);
    }

    #[test]
    fn sweep_preserves_order_and_isolates_failures() {
        let registry = SolverRegistry::with_default_backends();
        let base = two_well().with_simulation(50, 1);
        // A grid over Δ, including the classic failure mode: a Δ that
        // divides neither well.
        let grid = [
            base.with_delta(Charge::from_milliamp_hours(25.0)),
            base.with_delta(Charge::from_milliamp_hours(7.0)),
            base.with_delta(Charge::from_milliamp_hours(50.0)),
        ];
        let results = registry.sweep_with_threads(&grid, 3);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(KibamRmError::InvalidDiscretisation(_))
        ));
        assert!(results[2].is_ok());
        // Finer Δ means more derived states.
        let fine = results[0].as_ref().unwrap().diagnostics().states.unwrap();
        let coarse = results[2].as_ref().unwrap().diagnostics().states.unwrap();
        assert!(fine > coarse);
        // Single-threaded path gives identical answers.
        let serial = registry.sweep_with_threads(&grid, 1);
        assert!(
            results[0]
                .as_ref()
                .unwrap()
                .max_difference(serial[0].as_ref().unwrap())
                .unwrap()
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn solver_options_compose_without_oversubscription() {
        let opts = SolverOptions {
            scenario_threads: 4,
            row_threads: 8,
            ..Default::default()
        };
        // 4 active sweep workers each get a cap of 8/4 = 2 row threads.
        assert_eq!(opts.row_threads_per_solve(4), 2);
        // More workers than row budget: every solve stays sequential.
        assert_eq!(opts.row_threads_per_solve(16), 1);
        assert_eq!(opts.row_threads_per_solve(0), 8, "clamped to one worker");
        assert_eq!(SolverOptions::sequential().scenario_threads, 1);
        // The default budget is the machine itself — no cap beyond it,
        // so registry.solve never lowers an explicitly configured
        // backend (regression: it used to force row_threads = 1).
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(SolverOptions::default().row_threads, cores);

        let registry = SolverRegistry::with_default_backends().with_options(opts);
        assert_eq!(*registry.options(), opts);
        // solve_with on the discretisation backend honours the budget
        // and produces the same curve as the plain solve.
        let s = two_well()
            .with_delta(Charge::from_milliamp_hours(50.0))
            .with_simulation(10, 1);
        let solver = DiscretisationSolver::new();
        let budgeted = solver.solve_with(&s, &opts).unwrap();
        let plain = solver.solve(&s).unwrap();
        assert!(budgeted.max_difference(&plain).unwrap() < 1e-12);
        // Backends without row-level parallelism ignore the budget.
        let sim = SimulationSolver::new();
        let a = sim.solve_with(&s, &opts).unwrap();
        let b = sim.solve(&s).unwrap();
        assert!(a.max_difference(&b).unwrap() < 1e-15);
    }

    #[test]
    fn representation_override_flows_through_solve_with() {
        // SolverOptions can pin the storage format; the curve must not
        // depend on which representation computed it (within ε).
        let s = two_well()
            .with_delta(Charge::from_milliamp_hours(50.0))
            .with_simulation(10, 1);
        let solver = DiscretisationSolver::new();
        let auto = solver.solve(&s).unwrap();
        let forced_csr = solver
            .solve_with(
                &s,
                &SolverOptions {
                    representation: Representation::Csr,
                    ..SolverOptions::sequential()
                },
            )
            .unwrap();
        let forced_banded = solver
            .solve_with(
                &s,
                &SolverOptions {
                    representation: Representation::Banded,
                    ..SolverOptions::sequential()
                },
            )
            .unwrap();
        // Auto and forced-banded both run the active window (ε split),
        // so the provable bound against the full-ε CSR engine is 2ε
        // with the default ε = 1e-10.
        assert!(auto.max_difference(&forced_csr).unwrap() < 2e-10);
        assert!(forced_banded.max_difference(&forced_csr).unwrap() < 2e-10);
        // Auto in the budget defers to the backend's own configuration.
        let opts = SolverOptions::sequential();
        assert_eq!(opts.representation, Representation::Auto);
    }

    #[test]
    fn duplicate_time_grids_fail_cleanly_through_sweep() {
        // Scenario validation (the first line of defence) rejects
        // duplicate/unsorted grids at every construction path…
        let s = small_linear();
        let t = Time::from_seconds(10.0);
        assert!(s.with_times(vec![t, t]).is_err(), "with_times duplicates");
        assert!(
            s.with_times(vec![Time::from_seconds(20.0), t]).is_err(),
            "with_times unsorted"
        );
        // …including the config round-trip.
        let cfg: String = s
            .to_config_string()
            .unwrap()
            .lines()
            .map(|l| {
                if l.starts_with("times_s") {
                    "times_s 10 10 20\n".to_owned()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        assert!(
            Scenario::from_config_str(&cfg).is_err(),
            "config duplicates"
        );

        // And the second line: a backend that hands the facade a
        // duplicated grid gets a per-scenario error out of sweep(),
        // without poisoning the neighbouring scenarios (regression for
        // LifetimeDistribution construction from bad grids).
        struct DuplicateGrid;
        impl LifetimeSolver for DuplicateGrid {
            fn name(&self) -> &'static str {
                "duplicate-grid"
            }
            fn capability(&self, _s: &Scenario) -> Capability {
                Capability::Exact
            }
            fn solve(&self, _s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
                let t = Time::from_seconds(5.0);
                LifetimeDistribution::new(
                    "duplicate-grid",
                    vec![(t, 0.1), (t, 0.2)],
                    SolveDiagnostics::default(),
                )
            }
        }
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(DuplicateGrid));
        let results = registry.sweep_with_threads(&[s.clone(), s], 2);
        assert_eq!(results.len(), 2);
        for r in &results {
            let err = r.as_ref().expect_err("duplicated grid must fail");
            assert!(
                err.to_string().contains("strictly increasing"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn all_censored_scenario_yields_zero_curve_through_sweep() {
        // Regression: a scenario whose battery outlives every simulated
        // run used to abort with StatsError::Empty, poisoning its sweep
        // slot. It must come back as the valid all-zero curve.
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let long_lived = Scenario::builder()
            .name("long-lived")
            .workload(w)
            .capacity(Charge::from_amp_seconds(7200.0)) // ~15 000 s life
            .linear()
            .times(
                (1..=8)
                    .map(|i| Time::from_seconds(i as f64 * 10.0))
                    .collect(), // grid ends at 80 s: nothing depletes
            )
            .simulation(25, 3)
            .build()
            .unwrap();
        let normal = small_linear().with_simulation(50, 2);

        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(SimulationSolver::new()));
        let results = registry.sweep(&[long_lived.clone(), normal]);
        assert_eq!(results.len(), 2);
        let zero = results[0].as_ref().expect("all-censored must not fail");
        assert!(zero.points().iter().all(|&(_, p)| p == 0.0));
        assert_eq!(zero.diagnostics().runs, Some(25));
        assert!(results[1].as_ref().unwrap().points().last().unwrap().1 > 0.5);

        // The study views agree: zero depletions, unidentified
        // quantiles, but a real (positive) confidence band.
        let solver = SimulationSolver::new();
        let study = solver.study(&long_lived).unwrap();
        assert_eq!(study.depleted_runs(), 0);
        assert_eq!(study.lifetime_quantile(0.5), None);
        let streaming = solver.streaming_study(&long_lived).unwrap();
        assert_eq!(streaming.depleted_runs(), 0);
        assert!(streaming.max_half_width() > 0.0);
    }

    #[test]
    fn simulation_groups_share_one_pool_and_match_independent_solves() {
        // The sweep planner groups every simulation-backed scenario into
        // one pool-sharing group; results must be bit-identical to
        // independent solves (per-scenario counter-derived streams make
        // this hold by construction).
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(SimulationSolver::new()));
        let base = small_linear();
        let batch = vec![
            base.with_simulation(60, 1),
            base.with_simulation(60, 2), // same runs, different stream family
            base.with_simulation(90, 1),
            base.clone(),
        ];
        let plan = crate::sweep::SweepPlan::build(&registry, &batch);
        assert_eq!(plan.groups().len(), 1, "one pool-sharing group");
        assert_eq!(plan.groups()[0].members().len(), 4);

        let swept = registry.sweep_with_threads(&batch, 2);
        for (s, r) in batch.iter().zip(&swept) {
            let independent = SimulationSolver::new()
                .solve_with(s, &SolverOptions::sequential())
                .unwrap();
            let r = r.as_ref().unwrap();
            assert_eq!(
                r.points(),
                independent.points(),
                "scenario {} differs from its independent solve",
                s.name()
            );
        }
        // Different seeds really gave different curves (streams are
        // per-scenario, not shared through the pool).
        assert_ne!(
            swept[0].as_ref().unwrap().points(),
            swept[1].as_ref().unwrap().points()
        );
        // A zero-run scenario opts out of grouping entirely.
        assert_eq!(
            SimulationSolver::new().sweep_fingerprint(&base.with_simulation(0, 1)),
            None
        );
    }

    #[test]
    fn adaptive_stopping_meets_the_band_and_reports_true_runs() {
        let s = small_linear().with_simulation(100, 7);
        let solver = SimulationSolver::new()
            .with_adaptive(0.02, 1 << 16)
            .with_batch(64);
        let dist = solver.solve(&s).unwrap();
        let runs = dist.diagnostics().runs.unwrap();
        assert!(
            runs > 100,
            "adaptive rule must extend past the initial round"
        );
        assert!(runs <= 1 << 16);
        let study = solver.streaming_study(&s).unwrap();
        assert_eq!(study.total_runs() as usize, runs);
        assert!(
            study.max_half_width() <= 0.02,
            "band {} misses the target",
            study.max_half_width()
        );
        // More replications than requested, but the curve still matches
        // the fixed-run solve statistically (same model, same streams up
        // to the shared prefix).
        let fixed = SimulationSolver::new().solve(&s).unwrap();
        assert!(dist.max_difference(&fixed).unwrap() < 0.1);
        // The adaptive solve is itself deterministic.
        let again = solver.solve(&s).unwrap();
        assert_eq!(dist.points(), again.points());
    }

    #[test]
    fn cross_validation_runs_every_applicable_method() {
        let registry = SolverRegistry::with_default_backends();
        let cv = registry.cross_validate(&small_linear()).unwrap();
        assert_eq!(cv.results.len(), 3);
        assert_eq!(cv.pairwise.len(), 3);
        assert!(cv.result("sericola").is_some());
        assert!(cv.result("nope").is_none());
        assert!(cv.max_disagreement() < 0.2, "{}", cv.max_disagreement());

        // Two-well scenario: Sericola drops out.
        let quick = two_well()
            .with_delta(Charge::from_milliamp_hours(50.0))
            .with_simulation(60, 3);
        let cv = registry.cross_validate(&quick).unwrap();
        assert_eq!(cv.results.len(), 2);
        assert!(cv.result("sericola").is_none());
    }

    #[test]
    fn custom_backends_and_empty_registries() {
        struct Refuser;
        impl LifetimeSolver for Refuser {
            fn name(&self) -> &'static str {
                "refuser"
            }
            fn capability(&self, _s: &Scenario) -> Capability {
                Capability::Unsupported("always refuses".into())
            }
            fn solve(&self, _s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
                unreachable!("never selected")
            }
        }
        let mut registry = SolverRegistry::empty();
        let err = registry
            .auto(&small_linear())
            .err()
            .expect("empty registry refuses");
        assert!(err.to_string().contains("registry is empty"), "{err}");
        registry.register(Box::new(Refuser));
        let err = registry
            .auto(&small_linear())
            .err()
            .expect("refuser refuses");
        assert!(err.to_string().contains("always refuses"), "{err}");
        assert!(registry.find("refuser").is_some());
        assert!(registry.find("sericola").is_none());
        assert!(registry.cross_validate(&small_linear()).is_err());
        // Debug formatting lists backend names.
        assert!(format!("{registry:?}").contains("refuser"));
    }

    #[test]
    fn discretisation_cancelled_in_group_then_rerun_is_bit_identical() {
        // The tentpole cancellation contract at the solver layer: a
        // budget-interrupted member solve leaves the warm group state
        // consistent, so re-running the same member to completion gives
        // exactly the bits an uninterrupted solve would have.
        let solver = DiscretisationSolver::new();
        let s = two_well();
        let options = SolverOptions::sequential();
        let reference = solver.solve_with(&s, &options).unwrap();
        for k in [0, 1, 7] {
            let mut state = solver.new_group_state(&options).unwrap();
            let err = solver
                .solve_in_group_budgeted(
                    &s,
                    &options,
                    state.as_mut(),
                    &Budget::cancelled_after_checks(k),
                )
                .expect_err("budget must interrupt the sweep");
            assert_eq!(
                err,
                KibamRmError::DeadlineExceeded {
                    completed: k as usize
                },
                "k = {k}"
            );
            let rerun = solver
                .solve_in_group_budgeted(&s, &options, state.as_mut(), &Budget::unlimited())
                .unwrap();
            assert_eq!(rerun.points(), reference.points(), "k = {k}");
        }
    }

    #[test]
    fn simulation_cancelled_in_group_then_rerun_is_bit_identical() {
        let solver = SimulationSolver::new().with_batch(100);
        let s = small_linear(); // 400 replications in 4 batches
        let options = SolverOptions::sequential();
        let reference = solver.solve_with(&s, &options).unwrap();
        let mut state = solver.new_group_state(&options).unwrap();
        let err = solver
            .solve_in_group_budgeted(
                &s,
                &options,
                state.as_mut(),
                &Budget::cancelled_after_checks(2),
            )
            .expect_err("budget must stop the batch loop");
        assert_eq!(err, KibamRmError::DeadlineExceeded { completed: 200 });
        let rerun = solver
            .solve_in_group_budgeted(&s, &options, state.as_mut(), &Budget::unlimited())
            .unwrap();
        assert_eq!(rerun.points(), reference.points());
        assert_eq!(rerun.diagnostics().runs, Some(400));
        let hw = rerun.diagnostics().half_width.unwrap();
        assert!(hw > 0.0 && hw < 0.2, "Wilson half-width {hw}");
    }

    #[test]
    fn exhausted_budget_fails_fast_for_every_backend() {
        let s = small_linear();
        let options = SolverOptions::sequential();
        let expired = Budget::cancelled_after_checks(0);
        for solver in [
            Box::new(DiscretisationSolver::new()) as Box<dyn LifetimeSolver>,
            Box::new(SimulationSolver::new()),
            Box::new(SericolaSolver::new()),
        ] {
            let err = solver
                .solve_with_budget(&s, &options, &expired)
                .expect_err("expired budget must refuse");
            assert_eq!(
                err,
                KibamRmError::DeadlineExceeded { completed: 0 },
                "{}",
                solver.name()
            );
        }
    }

    #[test]
    fn budgeted_solo_solves_match_the_plain_paths_bit_for_bit() {
        let options = SolverOptions::sequential();
        let s = two_well();
        let a = DiscretisationSolver::new()
            .solve_with(&s, &options)
            .unwrap();
        let b = DiscretisationSolver::new()
            .solve_with_budget(&s, &options, &Budget::unlimited())
            .unwrap();
        assert_eq!(a.points(), b.points());
        let s = small_linear();
        let a = SimulationSolver::new().solve_with(&s, &options).unwrap();
        let b = SimulationSolver::new()
            .solve_with_budget(&s, &options, &Budget::unlimited())
            .unwrap();
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn group_panel_is_bit_identical_to_independent_solves() {
        // A rate-rescale family solved as one group rides the column
        // panel (same Pᵀ bits, one joint sweep) and must return exactly
        // the curves of k independent solves — grouping is an
        // optimisation, never an approximation.
        let base = two_well().with_delta(Charge::from_milliamp_hours(50.0));
        let family: Vec<Scenario> = [0.25, 0.5, 1.0, 2.0]
            .iter()
            .map(|&g| base.with_rate_scale(g).unwrap())
            .collect();
        let members: Vec<&Scenario> = family.iter().collect();
        let solver = DiscretisationSolver::new();
        let options = SolverOptions::sequential();
        let grouped = solver.solve_group(&members, &options);
        for (s, got) in members.iter().zip(&grouped) {
            let solo = solver.solve_with(s, &options).unwrap();
            assert_eq!(got.as_ref().unwrap().points(), solo.points());
        }
        // A CSR group stays on the serial cache path (extend/remix
        // already collapses the family there) and still matches.
        let csr = SolverOptions {
            representation: Representation::Csr,
            ..SolverOptions::sequential()
        };
        let grouped = solver.solve_group(&members, &csr);
        for (s, got) in members.iter().zip(&grouped) {
            let solo = solver.solve_with(s, &csr).unwrap();
            assert_eq!(got.as_ref().unwrap().points(), solo.points());
        }
    }
}
