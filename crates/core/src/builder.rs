//! A fluent builder for custom workload models.
//!
//! The paper's three workloads ship as constructors on
//! [`crate::workload::Workload`]; real devices need their own. The
//! builder keeps the invariants (every state needs a current; rates are
//! validated; exactly one initial state unless a distribution is given)
//! while staying pleasant to use:
//!
//! ```
//! use kibamrm::builder::WorkloadBuilder;
//! use units::{Current, Rate};
//!
//! // A Wi-Fi radio with scan/associate/transmit states.
//! let workload = WorkloadBuilder::new()
//!     .state("scan", Current::from_milliamps(40.0))
//!     .state("assoc", Current::from_milliamps(120.0))
//!     .state("tx", Current::from_milliamps(300.0))
//!     .transition("scan", "assoc", Rate::per_hour(30.0))
//!     .transition("assoc", "tx", Rate::per_hour(60.0))
//!     .transition("tx", "scan", Rate::per_hour(120.0))
//!     .initial("scan")
//!     .build()
//!     .unwrap();
//! assert_eq!(workload.n_states(), 3);
//! ```

use crate::workload::Workload;
use crate::KibamRmError;
use markov::ctmc::CtmcBuilder;
use units::{Current, Rate};

/// Fluent construction of a [`Workload`].
#[derive(Debug, Clone, Default)]
pub struct WorkloadBuilder {
    states: Vec<(String, Current)>,
    transitions: Vec<(String, String, Rate)>,
    initial: Option<String>,
}

impl WorkloadBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        WorkloadBuilder::default()
    }

    /// Declares a state with its current draw. The first declared state
    /// is the default initial state.
    #[must_use]
    pub fn state(mut self, name: &str, current: Current) -> Self {
        self.states.push((name.to_owned(), current));
        self
    }

    /// Declares a transition by state names.
    #[must_use]
    pub fn transition(mut self, from: &str, to: &str, rate: Rate) -> Self {
        self.transitions
            .push((from.to_owned(), to.to_owned(), rate));
        self
    }

    /// Selects the initial state by name (defaults to the first state).
    #[must_use]
    pub fn initial(mut self, name: &str) -> Self {
        self.initial = Some(name.to_owned());
        self
    }

    /// Builds the workload.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidWorkload`] when no states were declared, a
    /// name is duplicated or unknown, the initial state is unknown, or a
    /// rate/current is invalid.
    pub fn build(self) -> Result<Workload, KibamRmError> {
        if self.states.is_empty() {
            return Err(KibamRmError::InvalidWorkload("no states declared".into()));
        }
        let index_of = |name: &str| -> Result<usize, KibamRmError> {
            self.states
                .iter()
                .position(|(n, _)| n == name)
                .ok_or_else(|| KibamRmError::InvalidWorkload(format!("unknown state '{name}'")))
        };
        // Duplicate names make name-based lookups ambiguous.
        for (i, (name, _)) in self.states.iter().enumerate() {
            if self.states.iter().skip(i + 1).any(|(n, _)| n == name) {
                return Err(KibamRmError::InvalidWorkload(format!(
                    "duplicate state name '{name}'"
                )));
            }
        }

        let mut ctmc = CtmcBuilder::new(self.states.len());
        for (i, (name, _)) in self.states.iter().enumerate() {
            ctmc.label(i, name);
        }
        for (from, to, rate) in &self.transitions {
            let f = index_of(from)?;
            let t = index_of(to)?;
            ctmc.rate(f, t, rate.as_per_second())
                .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;
        }
        let chain = ctmc
            .build()
            .map_err(|e| KibamRmError::InvalidWorkload(e.to_string()))?;

        let initial_idx = match &self.initial {
            Some(name) => index_of(name)?,
            None => 0,
        };
        let mut alpha = vec![0.0; self.states.len()];
        alpha[initial_idx] = 1.0;
        let currents: Vec<Current> = self.states.iter().map(|(_, c)| *c).collect();
        Workload::new(chain, currents, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretise::{DiscretisationOptions, DiscretisedModel};
    use crate::model::KibamRm;
    use units::{Charge, Time};

    fn radio() -> WorkloadBuilder {
        WorkloadBuilder::new()
            .state("scan", Current::from_milliamps(40.0))
            .state("tx", Current::from_milliamps(300.0))
            .transition("scan", "tx", Rate::per_hour(10.0))
            .transition("tx", "scan", Rate::per_hour(30.0))
    }

    #[test]
    fn builds_labelled_workload() {
        let w = radio().build().unwrap();
        assert_eq!(w.n_states(), 2);
        assert_eq!(w.ctmc().state_label(1), "tx");
        assert_eq!(w.initial(), &[1.0, 0.0]);
        assert_eq!(w.current(1).as_milliamps(), 300.0);
        let expected = 10.0 / 3600.0;
        assert!((w.ctmc().rates().get(0, 1) - expected).abs() < 1e-15);
    }

    #[test]
    fn initial_by_name() {
        let w = radio().initial("tx").build().unwrap();
        assert_eq!(w.initial(), &[0.0, 1.0]);
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(matches!(
            radio()
                .transition("scan", "nope", Rate::per_hour(1.0))
                .build(),
            Err(KibamRmError::InvalidWorkload(_))
        ));
        assert!(radio().initial("nope").build().is_err());
        assert!(WorkloadBuilder::new().build().is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let b = WorkloadBuilder::new()
            .state("a", Current::ZERO)
            .state("a", Current::ZERO);
        assert!(matches!(b.build(), Err(KibamRmError::InvalidWorkload(_))));
    }

    #[test]
    fn invalid_rates_rejected() {
        let b = radio().transition("scan", "scan", Rate::per_hour(1.0));
        assert!(b.build().is_err(), "self-loop must be rejected");
        let b = radio().transition("scan", "tx", Rate::per_hour(-1.0));
        assert!(b.build().is_err());
        let b = radio().transition("scan", "tx", Rate::per_hour(f64::NAN));
        assert!(b.build().is_err(), "NaN rate must be rejected");
        let b = radio().transition("scan", "tx", Rate::per_hour(f64::INFINITY));
        assert!(b.build().is_err(), "infinite rate must be rejected");
    }

    #[test]
    fn zero_rate_transitions_are_dropped_not_errors() {
        // A zero rate means "no such transition": the build succeeds and
        // the chain simply lacks the edge.
        let w = WorkloadBuilder::new()
            .state("a", Current::ZERO)
            .state("b", Current::ZERO)
            .transition("a", "b", Rate::per_hour(1.0))
            .transition("b", "a", Rate::per_hour(0.0))
            .build()
            .unwrap();
        assert!(w.ctmc().rates().get(0, 1) > 0.0);
        assert_eq!(w.ctmc().rates().get(1, 0), 0.0);
        assert!(w.ctmc().is_absorbing(1));
    }

    #[test]
    fn transition_from_unknown_state_rejected() {
        let b = radio().transition("nope", "tx", Rate::per_hour(1.0));
        let err = b.build().expect_err("unknown source state");
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn error_messages_name_the_offender() {
        let err = radio()
            .transition("scan", "ghost", Rate::per_hour(1.0))
            .build()
            .expect_err("unknown target state");
        assert!(err.to_string().contains("ghost"), "{err}");
        let err = WorkloadBuilder::new()
            .state("dup", Current::ZERO)
            .state("dup", Current::ZERO)
            .build()
            .expect_err("duplicate state");
        assert!(err.to_string().contains("dup"), "{err}");
        let err = radio().initial("absent").build().expect_err("bad initial");
        assert!(err.to_string().contains("absent"), "{err}");
    }

    #[test]
    fn negative_current_rejected_at_build() {
        let b = WorkloadBuilder::new()
            .state("a", Current::from_amps(-0.5))
            .state("b", Current::ZERO)
            .transition("a", "b", Rate::per_hour(1.0));
        assert!(matches!(b.build(), Err(KibamRmError::InvalidWorkload(_))));
    }

    #[test]
    fn built_workload_runs_through_the_pipeline() {
        let w = radio().build().unwrap();
        let model = KibamRm::new(
            w,
            Charge::from_milliamp_hours(400.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap();
        let disc = DiscretisedModel::build(
            &model,
            &DiscretisationOptions::with_delta(Charge::from_milliamp_hours(25.0)),
        )
        .unwrap();
        let p = disc.empty_probability_at(Time::from_hours(10.0)).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }
}
