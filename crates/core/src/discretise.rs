//! The Markovian approximation (paper §5): discretising the KiBaMRM into
//! a pure CTMC whose transient solution yields the lifetime distribution.
//!
//! The uncountable state space `S × [0, u₁] × [0, u₂]` (workload state ×
//! well contents) is collapsed to the finite grid
//! `S × {0..J₁} × {0..J₂}` with `J_d = u_d/Δ`, `u₁ = cC`, `u₂ = (1−c)C`.
//! Three kinds of transitions arise (paper §5.2):
//!
//! 1. **workload** — `(i,j₁,j₂) → (i',j₁,j₂)` at the CTMC rate `Q_{ii'}`;
//! 2. **consumption** — `(i,j₁,j₂) → (i,j₁−1,j₂)` at rate `I_i/Δ`
//!    (the mean drain of one charge quantum);
//! 3. **recovery** — `(i,j₁,j₂) → (i,j₁+1,j₂−1)` at rate
//!    `k(j₂/(1−c) − j₁/c)` when the bound well is higher (`h₂ > h₁`).
//!
//! States with `j₁ = 0` are **absorbing** (the paper defines lifetime as
//! the *first* time the battery empties, so no recovery from empty), and
//!
//! ```text
//! Pr[battery empty at t] ≈ Σ_i Σ_{j₂} π_{(i,0,j₂)}(t),
//! ```
//!
//! computed by the uniformisation curve engine of the `markov` crate.

use crate::model::KibamRm;
use crate::KibamRmError;
use markov::ctmc::Ctmc;
use markov::sparse::CsrAssembler;
use markov::transient::{measure_curve, CurveSolution, TransientOptions};
use units::{Charge, Time};

/// Options for building the discretised chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscretisationOptions {
    /// The charge quantum `Δ`. Must evenly divide both `cC` and `(1−c)C`.
    pub delta: Charge,
    /// Options handed to the uniformisation engine.
    pub transient: TransientOptions,
    /// Include bound→available recovery transitions *out of* the
    /// battery-empty (`j₁ = 0`) states. The paper keeps those states
    /// absorbing — lifetime is the *first* emptying — but notes the
    /// recovery transitions "could easily be included"; with this flag
    /// the computed measure becomes `Pr[battery empty **at** time t]`
    /// (the battery may come back), which is no longer monotone in `t`.
    pub recovery_from_empty: bool,
}

impl DiscretisationOptions {
    /// Options with the given `Δ` and default numerics.
    pub fn with_delta(delta: Charge) -> Self {
        DiscretisationOptions {
            delta,
            transient: TransientOptions::default(),
            recovery_from_empty: false,
        }
    }

    /// Sets the number of worker threads for the matrix–vector products.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.transient.threads = threads;
        self
    }

    /// Enables recovery out of the empty states (see the field docs).
    #[must_use]
    pub fn with_recovery_from_empty(mut self) -> Self {
        self.recovery_from_empty = true;
        self
    }
}

/// Size statistics of a discretised chain (the quantities the paper
/// reports in §5.3/§6: state count, generator non-zeros, uniformisation
/// iterations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtmcStats {
    /// Number of states of the derived CTMC.
    pub states: usize,
    /// Number of off-diagonal non-zero rates.
    pub off_diagonal_nonzeros: usize,
    /// Number of non-zero generator entries including the diagonal.
    pub generator_nonzeros: usize,
    /// Number of distinct diagonals the off-diagonal rate matrix
    /// occupies. The lattice structure makes this a small constant
    /// (workload hops, consumption, recovery — each a fixed index
    /// delta), which is what lets the transient engines switch to
    /// banded (DIA) storage.
    pub band_offsets: usize,
    /// Largest `|column − row|` over the stored rates — how far one
    /// uniformisation product can move probability mass, i.e. the
    /// per-iteration growth bound of the active window.
    pub bandwidth: usize,
}

/// The paper's derived CTMC for one KiBaMRM and one `Δ`.
#[derive(Debug, Clone)]
pub struct DiscretisedModel {
    chain: Ctmc,
    alpha: Vec<f64>,
    empty_measure: Vec<f64>,
    stats: CtmcStats,
    transient: TransientOptions,
    n_workload: usize,
    j1_levels: usize,
    j2_levels: usize,
    delta: f64,
}

/// The value-free description of one discretisation: dimensions, rates
/// inputs and the transition enumeration. Both the from-scratch build and
/// the template-based refill speak through this, so the emitted entries —
/// and therefore the assembled values — are identical bit for bit.
struct LatticeSpec {
    n_workload: usize,
    j1_levels: usize,
    j2_levels: usize,
    delta: f64,
    c: f64,
    k: f64,
    currents: Vec<f64>,
    workload_rates: Vec<Vec<(usize, f64)>>,
    recovery_from_empty: bool,
}

impl LatticeSpec {
    fn new(model: &KibamRm, opts: &DiscretisationOptions) -> Result<Self, KibamRmError> {
        let delta = opts.delta.value();
        if !(delta > 0.0) || !opts.delta.is_finite() {
            return Err(KibamRmError::InvalidDiscretisation(format!(
                "Δ must be positive, got {}",
                opts.delta
            )));
        }
        let c = model.c();
        let capacity = model.capacity().value();
        let j1_levels = level_count(c * capacity, delta, "available well (c·C)")?;
        let j2_levels = level_count((1.0 - c) * capacity, delta, "bound well ((1−c)·C)")?;
        let n_workload = model.workload().n_states();
        Ok(LatticeSpec {
            n_workload,
            j1_levels,
            j2_levels,
            delta,
            c,
            k: model.k().value(),
            currents: model.workload().currents_amps(),
            workload_rates: (0..n_workload)
                .map(|i| model.workload().ctmc().rates().row(i).collect())
                .collect(),
            recovery_from_empty: opts.recovery_from_empty,
        })
    }

    fn n_states(&self) -> usize {
        self.n_workload * self.j1_levels * self.j2_levels
    }

    #[inline]
    fn index(&self, i: usize, j1: usize, j2: usize) -> usize {
        (j1 * self.j2_levels + j2) * self.n_workload + i
    }

    /// Enumerates every transition of the derived chain, in a fixed
    /// deterministic order. The transition structure is pure arithmetic
    /// on the state index, so the generator can be enumerated repeatedly:
    /// twice for two-pass counted CSR assembly (no triplet temporary —
    /// the Fig. 8 chain at Δ = 5 has ≈ 3.2·10⁶ entries — and no global
    /// sort), and once more per sweep-group member to refill values
    /// through a recorded slot permutation.
    fn emit_all(&self, emit: &mut dyn FnMut(usize, usize, f64)) {
        let (c, k, delta) = (self.c, self.k, self.delta);
        // Optional paper extension (§5.2): recovery transitions out of
        // the empty states. The device is dead there — no workload
        // moves, no consumption — but bound charge keeps equalising.
        if self.recovery_from_empty && k > 0.0 && self.j1_levels > 1 {
            for j2 in 1..self.j2_levels {
                let rate = k * (j2 as f64 / (1.0 - c));
                for i in 0..self.n_workload {
                    emit(self.index(i, 0, j2), self.index(i, 1, j2 - 1), rate);
                }
            }
        }
        for j1 in 1..self.j1_levels {
            // j1 = 0 rows stay absorbing (unless recovery_from_empty).
            for j2 in 0..self.j2_levels {
                for i in 0..self.n_workload {
                    let from = self.index(i, j1, j2);
                    // 1. Workload transitions.
                    for &(to_state, rate) in &self.workload_rates[i] {
                        emit(from, self.index(to_state, j1, j2), rate);
                    }
                    // 2. Consumption of one charge quantum.
                    if self.currents[i] > 0.0 {
                        emit(from, self.index(i, j1 - 1, j2), self.currents[i] / delta);
                    }
                    // 3. Bound → available transfer.
                    if k > 0.0 && j2 > 0 && j1 + 1 < self.j1_levels {
                        let rate = k * (j2 as f64 / (1.0 - c) - j1 as f64 / c);
                        if rate > 0.0 {
                            emit(from, self.index(i, j1 + 1, j2 - 1), rate);
                        }
                    }
                }
            }
        }
    }

    /// A 64-bit FNV-1a fingerprint of everything that determines the
    /// derived chain's **sparsity pattern** (not its values): lattice
    /// dimensions, the workload CTMC's transition pattern, which states
    /// draw current, whether transfer happens at all, the
    /// available-charge fraction `c` (whose exact value decides which
    /// lattice cells have a positive transfer rate), and the
    /// recovery-from-empty flag. Equal fingerprints ⇒ identical pattern,
    /// which is what sweep plans group scenarios by.
    fn fingerprint(&self, workload_ctmc: &Ctmc) -> u64 {
        markov::sparse::fnv1a_u64(
            [
                workload_ctmc.structural_fingerprint(),
                self.n_workload as u64,
                self.j1_levels as u64,
                self.j2_levels as u64,
                self.c.to_bits(),
                u64::from(self.k > 0.0),
                u64::from(self.recovery_from_empty),
            ]
            .into_iter()
            .chain(self.currents.iter().map(|&cur| u64::from(cur > 0.0))),
        )
    }
}

/// The structural fingerprint of the chain [`DiscretisedModel::build`]
/// would derive for `model` at `opts`, computable without building it.
/// Scenarios with equal fingerprints share their lattice sparsity pattern
/// — the grouping key of the sweep planner.
///
/// # Errors
///
/// The same validation errors as [`DiscretisedModel::build`] (bad `Δ`).
pub fn structural_fingerprint(
    model: &KibamRm,
    opts: &DiscretisationOptions,
) -> Result<u64, KibamRmError> {
    let spec = LatticeSpec::new(model, opts)?;
    Ok(spec.fingerprint(model.workload().ctmc()))
}

/// The reusable structural skeleton of a derived chain: the CSR pattern
/// (carried by the representative chain), the emit-order → CSR-slot
/// permutation, the DIA/bandwidth metadata and the lattice dimensions.
/// Built once per sweep-plan group from its first member
/// ([`DiscretisedModel::template`]); every later member refills only the
/// numeric rate values ([`DiscretisedModel::build_with_template`]) — no
/// counting pass, no per-row sorts, no offset detection.
#[derive(Debug, Clone)]
pub struct DiscretisationTemplate {
    fingerprint: u64,
    chain: Ctmc,
    /// For each emitted transition (in [`LatticeSpec::emit_all`] order),
    /// the CSR slot its rate lands in.
    slots: Vec<u32>,
    stats: CtmcStats,
    n_workload: usize,
    j1_levels: usize,
    j2_levels: usize,
}

impl DiscretisationTemplate {
    /// The grouping key this template serves
    /// (see [`structural_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl DiscretisedModel {
    /// Builds the derived CTMC.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidDiscretisation`] when `Δ` is non-positive
    /// or does not evenly divide the well capacities `cC` and `(1−c)C`
    /// (within 10⁻⁶ relative); [`KibamRmError::Markov`] if assembly
    /// fails.
    pub fn build(model: &KibamRm, opts: &DiscretisationOptions) -> Result<Self, KibamRmError> {
        let spec = LatticeSpec::new(model, opts)?;
        let n_states = spec.n_states();
        let mut assembler = CsrAssembler::new(n_states, n_states).map_err(KibamRmError::Markov)?;
        spec.emit_all(&mut |from, _to, _rate| assembler.count(from));
        let off_diagonal = assembler.counted();
        let mut filler = assembler.into_filler();
        let mut fill_err = None;
        spec.emit_all(&mut |from, to, rate| {
            if fill_err.is_none() {
                fill_err = filler.entry(from, to, rate).err();
            }
        });
        if let Some(e) = fill_err {
            return Err(KibamRmError::Markov(e));
        }
        let rates = filler.finish().map_err(KibamRmError::Markov)?;
        let chain = Ctmc::from_rate_matrix(rates).map_err(KibamRmError::Markov)?;

        // Diagonal entries exist for every state with outgoing rate plus
        // nothing for absorbing rows (their diagonal is zero).
        let diagonal_nonzeros = (0..n_states).filter(|&s| chain.exit_rate(s) > 0.0).count();
        let offsets = markov::banded::BandedMatrix::detect_offsets(chain.rates());
        let stats = CtmcStats {
            states: n_states,
            off_diagonal_nonzeros: off_diagonal,
            generator_nonzeros: chain.n_transitions() + diagonal_nonzeros,
            band_offsets: offsets.len(),
            bandwidth: offsets.iter().map(|o| o.unsigned_abs()).max().unwrap_or(0),
        };
        Ok(DiscretisedModel::assemble(chain, stats, &spec, model, opts))
    }

    /// Shared tail of the build paths: initial distribution, empty
    /// measure and the value struct.
    fn assemble(
        chain: Ctmc,
        stats: CtmcStats,
        spec: &LatticeSpec,
        model: &KibamRm,
        opts: &DiscretisationOptions,
    ) -> Self {
        let n_states = spec.n_states();
        // Initial distribution: workload initial × full battery (top
        // levels of both wells).
        let mut alpha = vec![0.0; n_states];
        for (i, &a) in model.workload().initial().iter().enumerate() {
            alpha[spec.index(i, spec.j1_levels - 1, spec.j2_levels - 1)] = a;
        }
        // The battery is empty in every state with j1 = 0.
        let mut empty_measure = vec![0.0; n_states];
        for j2 in 0..spec.j2_levels {
            for i in 0..spec.n_workload {
                empty_measure[spec.index(i, 0, j2)] = 1.0;
            }
        }
        DiscretisedModel {
            chain,
            alpha,
            empty_measure,
            stats,
            transient: opts.transient,
            n_workload: spec.n_workload,
            j1_levels: spec.j1_levels,
            j2_levels: spec.j2_levels,
            delta: spec.delta,
        }
    }

    /// Extracts this model's reusable structural skeleton. `model` and
    /// `opts` must be the pair the model was built from; the emitted
    /// transitions are re-enumerated once to record where each rate lives
    /// in the CSR value array.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidDiscretisation`] when `model`/`opts` do not
    /// reproduce this model's structure.
    pub fn template(
        &self,
        model: &KibamRm,
        opts: &DiscretisationOptions,
    ) -> Result<DiscretisationTemplate, KibamRmError> {
        let spec = LatticeSpec::new(model, opts)?;
        let mut slots = Vec::with_capacity(self.chain.n_transitions());
        let mut missing = None;
        spec.emit_all(
            &mut |from, to, _rate| match self.chain.rates().value_index(from, to) {
                Some(slot) => slots.push(slot as u32),
                None => missing = Some((from, to)),
            },
        );
        if let Some((from, to)) = missing {
            return Err(KibamRmError::InvalidDiscretisation(format!(
                "template extraction: emitted transition ({from}, {to}) is not \
                 stored in the built chain — model/opts do not match this model"
            )));
        }
        if slots.len() != self.chain.n_transitions() {
            return Err(KibamRmError::InvalidDiscretisation(format!(
                "template extraction: {} emitted transitions but the chain \
                 stores {}",
                slots.len(),
                self.chain.n_transitions()
            )));
        }
        Ok(DiscretisationTemplate {
            fingerprint: spec.fingerprint(model.workload().ctmc()),
            chain: self.chain.clone(),
            slots,
            stats: self.stats,
            n_workload: self.n_workload,
            j1_levels: self.j1_levels,
            j2_levels: self.j2_levels,
        })
    }

    /// Builds the derived CTMC for a model that shares `template`'s
    /// structure ([`structural_fingerprint`] equality): only the numeric
    /// rate values are recomputed — one enumeration pass scattered
    /// through the recorded slot permutation into the pattern-reuse
    /// constructor [`Ctmc::with_rate_values`]. The result is bit-identical
    /// to [`DiscretisedModel::build`] on the same inputs (same emitted
    /// values, same CSR layout).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidDiscretisation`] when the model's structure
    /// does not match the template (callers fall back to
    /// [`DiscretisedModel::build`]); plus the usual validation errors.
    pub fn build_with_template(
        model: &KibamRm,
        opts: &DiscretisationOptions,
        template: &DiscretisationTemplate,
    ) -> Result<Self, KibamRmError> {
        let spec = LatticeSpec::new(model, opts)?;
        if spec.fingerprint(model.workload().ctmc()) != template.fingerprint
            || spec.n_states() != template.stats.states
            || spec.n_workload != template.n_workload
            || spec.j1_levels != template.j1_levels
            || spec.j2_levels != template.j2_levels
        {
            return Err(KibamRmError::InvalidDiscretisation(
                "scenario structure does not match the sweep-group template".into(),
            ));
        }
        let mut values = vec![0.0; template.slots.len()];
        let mut emitted = 0usize;
        let mut mismatch = None;
        let pattern = template.chain.rates();
        spec.emit_all(&mut |from, to, rate| {
            match template.slots.get(emitted) {
                // The fingerprint is a 64-bit hash, not a proof: verify
                // every emitted cell really owns its recorded slot, so a
                // collision errors out instead of silently scattering
                // rates into the wrong cells.
                Some(&slot) if pattern.value_index(from, to) == Some(slot as usize) => {
                    values[slot as usize] = rate;
                }
                _ => {
                    if mismatch.is_none() {
                        mismatch = Some((from, to));
                    }
                }
            }
            emitted += 1;
        });
        if let Some((from, to)) = mismatch {
            return Err(KibamRmError::InvalidDiscretisation(format!(
                "template refill: emitted transition ({from}, {to}) does not \
                 match the template's pattern (fingerprint collision)"
            )));
        }
        if emitted != template.slots.len() {
            return Err(KibamRmError::InvalidDiscretisation(format!(
                "template refill: {emitted} emitted transitions for a template \
                 of {} slots",
                template.slots.len()
            )));
        }
        let chain = template
            .chain
            .with_rate_values(values)
            .map_err(KibamRmError::Markov)?;
        Ok(DiscretisedModel::assemble(
            chain,
            template.stats,
            &spec,
            model,
            opts,
        ))
    }

    /// The derived CTMC.
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// Size statistics (paper §5.3/§6.1).
    pub fn stats(&self) -> CtmcStats {
        self.stats
    }

    /// Number of `j₁` levels (`cC/Δ + 1`).
    pub fn j1_levels(&self) -> usize {
        self.j1_levels
    }

    /// Number of `j₂` levels (`(1−c)C/Δ + 1`; 1 when `c = 1`).
    pub fn j2_levels(&self) -> usize {
        self.j2_levels
    }

    /// The initial distribution over the derived chain.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The 0/1 measure vector selecting the battery-empty states.
    pub fn empty_measure(&self) -> &[f64] {
        &self.empty_measure
    }

    /// `Pr[battery empty at t]` for every requested time, sharing one
    /// sweep of matrix–vector products (plus the iteration count, the
    /// paper's §6.1 cost metric).
    ///
    /// # Errors
    ///
    /// Propagates uniformisation errors (bad times, Fox–Glynn failure).
    pub fn empty_probability_curve(&self, times: &[Time]) -> Result<CurveSolution, KibamRmError> {
        let secs: Vec<f64> = times.iter().map(|t| t.as_seconds()).collect();
        Ok(measure_curve(
            &self.chain,
            &self.alpha,
            &secs,
            &self.empty_measure,
            &self.transient,
        )?)
    }

    /// [`DiscretisedModel::empty_probability_curve`] with an explicit
    /// cross-solve cache — bit-identical results, but structurally
    /// identical solves in a sweep-plan group share the worker pool, the
    /// Fox–Glynn workspace and (for rate-rescaled families) the whole
    /// uniformisation sweep. See [`markov::transient::CurveCache`].
    ///
    /// # Errors
    ///
    /// Propagates uniformisation errors (bad times, Fox–Glynn failure).
    pub fn empty_probability_curve_cached(
        &self,
        times: &[Time],
        cache: &mut markov::transient::CurveCache,
    ) -> Result<CurveSolution, KibamRmError> {
        self.empty_probability_curve_budgeted(times, cache, &markov::Budget::unlimited())
    }

    /// [`DiscretisedModel::empty_probability_curve_cached`] under a
    /// cooperative [`markov::Budget`], checked once per uniformisation
    /// iteration. An exhausted budget aborts the sweep with
    /// [`KibamRmError::DeadlineExceeded`], leaving `cache` in the same
    /// consistent state a shorter solve would have — re-running the same
    /// solve to completion is bit-identical to never having cancelled.
    ///
    /// # Errors
    ///
    /// As for [`DiscretisedModel::empty_probability_curve_cached`], plus
    /// [`KibamRmError::DeadlineExceeded`] on budget exhaustion.
    pub fn empty_probability_curve_budgeted(
        &self,
        times: &[Time],
        cache: &mut markov::transient::CurveCache,
        budget: &markov::Budget,
    ) -> Result<CurveSolution, KibamRmError> {
        let secs: Vec<f64> = times.iter().map(|t| t.as_seconds()).collect();
        Ok(markov::transient::measure_curve_budgeted(
            &self.chain,
            &self.alpha,
            &secs,
            &self.empty_measure,
            &self.transient,
            cache,
            budget,
        )?)
    }

    /// `Pr[battery empty at t]` curves for a whole **family** of
    /// discretised models at once, advancing members whose uniformised
    /// `Pᵀ` is bitwise identical (rate-rescale families, `Q' = γQ` with
    /// `γ` a power of two) through the sweep **together** as a column
    /// panel — one read of each matrix diagonal per iteration feeds
    /// every member. See [`markov::transient::measure_curves_panel`]
    /// for the grouping, accounting and bit-identity contract: each
    /// returned curve equals what
    /// [`DiscretisedModel::empty_probability_curve`] would produce for
    /// that member.
    ///
    /// All members must share the initial distribution, the
    /// empty-states measure and the transient options bit for bit —
    /// true by construction for models discretised from the same
    /// battery at the same `Δ` (only the workload rates differ).
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidDiscretisation`] when `members` is empty
    /// or the models do not share `α`/measure/options; otherwise as for
    /// [`DiscretisedModel::empty_probability_curve_budgeted`].
    pub fn empty_probability_curves_panel(
        members: &[(&DiscretisedModel, &[Time])],
        budget: &markov::Budget,
    ) -> Result<markov::transient::PanelSolution, KibamRmError> {
        let Some(((first, _), rest)) = members.split_first() else {
            return Err(KibamRmError::InvalidDiscretisation(
                "no panel members provided".into(),
            ));
        };
        for (m, _) in rest {
            if m.alpha != first.alpha
                || m.empty_measure != first.empty_measure
                || m.transient != first.transient
            {
                return Err(KibamRmError::InvalidDiscretisation(
                    "panel members must share the initial distribution, \
                     empty measure and transient options"
                        .into(),
                ));
            }
        }
        let secs: Vec<Vec<f64>> = members
            .iter()
            .map(|(_, ts)| ts.iter().map(|t| t.as_seconds()).collect())
            .collect();
        let panel: Vec<markov::transient::PanelMember<'_>> = members
            .iter()
            .zip(&secs)
            .map(|((m, _), s)| markov::transient::PanelMember {
                ctmc: &m.chain,
                times: s,
            })
            .collect();
        Ok(markov::transient::measure_curves_panel(
            &panel,
            &first.alpha,
            &first.empty_measure,
            &first.transient,
            budget,
        )?)
    }

    /// `Pr[battery empty at t]` for one time point.
    ///
    /// # Errors
    ///
    /// Propagates uniformisation errors.
    pub fn empty_probability_at(&self, t: Time) -> Result<f64, KibamRmError> {
        Ok(self.empty_probability_curve(&[t])?.points[0].1)
    }

    /// The expected well contents `(E[Y₁(t)], E[Y₂(t)])` over a time
    /// grid, read off the derived chain with the level-valued measures
    /// `j_d·Δ`. Shares one matrix–vector sweep for both wells and all
    /// time points.
    ///
    /// # Errors
    ///
    /// Propagates uniformisation errors.
    pub fn expected_charge_curves(
        &self,
        times: &[Time],
    ) -> Result<Vec<(Time, Charge, Charge)>, KibamRmError> {
        let secs: Vec<f64> = times.iter().map(|t| t.as_seconds()).collect();
        let n = self.stats.states;
        let mut y1_measure = vec![0.0; n];
        let mut y2_measure = vec![0.0; n];
        for j1 in 0..self.j1_levels {
            for j2 in 0..self.j2_levels {
                for i in 0..self.n_workload {
                    let idx = (j1 * self.j2_levels + j2) * self.n_workload + i;
                    y1_measure[idx] = j1 as f64 * self.delta;
                    y2_measure[idx] = j2 as f64 * self.delta;
                }
            }
        }
        let c1 = measure_curve(
            &self.chain,
            &self.alpha,
            &secs,
            &y1_measure,
            &self.transient,
        )?;
        let c2 = measure_curve(
            &self.chain,
            &self.alpha,
            &secs,
            &y2_measure,
            &self.transient,
        )?;
        Ok(times
            .iter()
            .zip(c1.points.iter().zip(&c2.points))
            .map(|(&t, ((_, y1), (_, y2)))| {
                (t, Charge::from_coulombs(*y1), Charge::from_coulombs(*y2))
            })
            .collect())
    }

    /// Flat index of the derived state `(workload i, j₁, j₂)`.
    ///
    /// # Errors
    ///
    /// [`KibamRmError::InvalidDiscretisation`] when any coordinate is out
    /// of range.
    pub fn state_index(&self, i: usize, j1: usize, j2: usize) -> Result<usize, KibamRmError> {
        if i >= self.n_workload || j1 >= self.j1_levels || j2 >= self.j2_levels {
            return Err(KibamRmError::InvalidDiscretisation(format!(
                "state ({i}, {j1}, {j2}) out of range ({}, {}, {})",
                self.n_workload, self.j1_levels, self.j2_levels
            )));
        }
        Ok((j1 * self.j2_levels + j2) * self.n_workload + i)
    }
}

fn level_count(u: f64, delta: f64, what: &str) -> Result<usize, KibamRmError> {
    if u == 0.0 {
        // Degenerate well (c = 1): a single level j = 0.
        return Ok(1);
    }
    let levels = u / delta;
    let rounded = levels.round();
    if (levels - rounded).abs() > 1e-6 * levels.max(1.0) || rounded < 1.0 {
        return Err(KibamRmError::InvalidDiscretisation(format!(
            "Δ = {delta} does not evenly divide the {what} = {u} \
             (u/Δ = {levels}); choose Δ so that both wells split into whole quanta"
        )));
    }
    Ok(rounded as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use units::{Current, Frequency, Rate};

    /// The paper's Fig. 7 configuration: on/off, c = 1, C = 7200 As.
    fn on_off_linear(delta: f64) -> DiscretisedModel {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let m = KibamRm::new(
            w,
            Charge::from_amp_seconds(7200.0),
            1.0,
            Rate::per_second(0.0),
        )
        .unwrap();
        DiscretisedModel::build(
            &m,
            &DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta)),
        )
        .unwrap()
    }

    /// The paper's Fig. 8 configuration: c = 0.625, k = 4.5e-5.
    fn on_off_two_well(delta: f64) -> DiscretisedModel {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let m = KibamRm::new(
            w,
            Charge::from_amp_seconds(7200.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap();
        DiscretisedModel::build(
            &m,
            &DiscretisationOptions::with_delta(Charge::from_amp_seconds(delta)),
        )
        .unwrap()
    }

    #[test]
    fn paper_state_count_2882() {
        // §6.1: "the CTMC for ∆ = 5 has 2882 states".
        let d = on_off_linear(5.0);
        assert_eq!(d.stats().states, 2882);
        assert_eq!(d.j1_levels(), 1441);
        assert_eq!(d.j2_levels(), 1);
    }

    #[test]
    fn two_well_state_count() {
        // c = 0.625: u1 = 4500, u2 = 2700; Δ = 100 → 46 × 28 levels.
        let d = on_off_two_well(100.0);
        assert_eq!(d.j1_levels(), 46);
        assert_eq!(d.j2_levels(), 28);
        assert_eq!(d.stats().states, 2 * 46 * 28);
        // Δ = 5 would give 901 × 541 × 2 = 974 882 states and ≈ 3.2·10⁶
        // non-zeros (checked in the bench harness, too slow for a unit
        // test build).
    }

    #[test]
    fn bandwidth_metadata_reflects_the_lattice_stencil() {
        // Two-well on/off at Δ = 300: j2_levels = 10, 2 workload states.
        // Offsets: workload hop ±1, consumption −(10·2), recovery +(9·2).
        let d = on_off_two_well(300.0);
        assert_eq!(d.stats().band_offsets, 4);
        assert_eq!(d.stats().bandwidth, 20);
        // Linear chain: no recovery, consumption hops one j1 level
        // (j2_levels = 1, so offset −2); workload hop ±1.
        let lin = on_off_linear(300.0);
        assert_eq!(lin.stats().band_offsets, 3);
        assert_eq!(lin.stats().bandwidth, 2);
        // The stencil is Δ-independent even though the state count grows.
        let fine = on_off_two_well(100.0);
        assert_eq!(fine.stats().band_offsets, 4);
        assert_eq!(fine.stats().bandwidth, 2 * fine.j2_levels());
    }

    #[test]
    fn template_refill_is_bit_identical_to_a_direct_build() {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let model = |current_scale: f64, k: f64| {
            let w2 = Workload::new(
                w.ctmc().clone(),
                w.currents()
                    .iter()
                    .map(|c| Current::from_amps(c.as_amps() * current_scale))
                    .collect(),
                w.initial().to_vec(),
            )
            .unwrap();
            KibamRm::new(
                w2,
                Charge::from_amp_seconds(7200.0),
                0.625,
                Rate::per_second(k),
            )
            .unwrap()
        };
        let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(300.0));
        let base = model(1.0, 4.5e-5);
        let built = DiscretisedModel::build(&base, &opts).unwrap();
        let template = built.template(&base, &opts).unwrap();
        assert_eq!(
            template.fingerprint(),
            structural_fingerprint(&base, &opts).unwrap()
        );

        // Same structure, different values (scaled currents and k): the
        // refilled chain equals the direct build bit for bit.
        for (scale, k) in [(1.0, 4.5e-5), (0.5, 4.5e-5), (2.0, 9e-5)] {
            let member = model(scale, k);
            let direct = DiscretisedModel::build(&member, &opts).unwrap();
            let refilled =
                DiscretisedModel::build_with_template(&member, &opts, &template).unwrap();
            assert_eq!(
                refilled.chain().rates(),
                direct.chain().rates(),
                "{scale}/{k}"
            );
            assert_eq!(refilled.alpha(), direct.alpha());
            assert_eq!(refilled.empty_measure(), direct.empty_measure());
            assert_eq!(refilled.stats(), direct.stats());
            assert!(refilled
                .chain()
                .rates()
                .same_pattern(template.chain.rates()));
        }

        // Structural mismatches are rejected (callers fall back to a
        // fresh build): a different Δ changes the lattice dimensions…
        let finer = DiscretisationOptions::with_delta(Charge::from_amp_seconds(100.0));
        assert!(DiscretisedModel::build_with_template(&base, &finer, &template).is_err());
        // …k = 0 removes the transfer band…
        let no_transfer = model(1.0, 0.0);
        assert!(DiscretisedModel::build_with_template(&no_transfer, &opts, &template).is_err());
        // …and a zeroed current removes its consumption band.
        let idle = model(0.0, 4.5e-5);
        assert!(DiscretisedModel::build_with_template(&idle, &opts, &template).is_err());
        // The fingerprints say so up front.
        assert_ne!(
            structural_fingerprint(&base, &opts).unwrap(),
            structural_fingerprint(&no_transfer, &opts).unwrap()
        );
        assert_ne!(
            structural_fingerprint(&base, &opts).unwrap(),
            structural_fingerprint(&base, &finer).unwrap()
        );
        // Value-only variation keeps the fingerprint.
        assert_eq!(
            structural_fingerprint(&base, &opts).unwrap(),
            structural_fingerprint(&model(2.0, 9e-5), &opts).unwrap()
        );
    }

    #[test]
    fn delta_must_divide_wells() {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let m = KibamRm::new(
            w,
            Charge::from_amp_seconds(7200.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap();
        // Δ = 7 divides neither 4500 nor 2700.
        let err = DiscretisedModel::build(
            &m,
            &DiscretisationOptions::with_delta(Charge::from_amp_seconds(7.0)),
        );
        assert!(matches!(err, Err(KibamRmError::InvalidDiscretisation(_))));
        let err = DiscretisedModel::build(&m, &DiscretisationOptions::with_delta(Charge::ZERO));
        assert!(matches!(err, Err(KibamRmError::InvalidDiscretisation(_))));
    }

    #[test]
    fn empty_states_are_absorbing() {
        let d = on_off_two_well(300.0);
        for j2 in 0..d.j2_levels() {
            for i in 0..2 {
                let s = d.state_index(i, 0, j2).unwrap();
                assert!(d.chain().is_absorbing(s), "state ({i}, 0, {j2})");
            }
        }
        // Non-empty states are not absorbing.
        let s = d.state_index(0, 1, 0).unwrap();
        assert!(!d.chain().is_absorbing(s));
    }

    #[test]
    fn transition_rates_match_paper_formulas() {
        let d = on_off_two_well(300.0);
        // u1 = 4500 → 15 quanta; u2 = 2700 → 9 quanta.
        assert_eq!(d.j1_levels(), 16);
        assert_eq!(d.j2_levels(), 10);
        let rates = d.chain().rates();
        // Consumption from the on-state: I/Δ = 0.96/300.
        let from = d.state_index(0, 10, 5).unwrap();
        let to = d.state_index(0, 9, 5).unwrap();
        assert!((rates.get(from, to) - 0.96 / 300.0).abs() < 1e-15);
        // No consumption from the off-state (current 0).
        let from_off = d.state_index(1, 10, 5).unwrap();
        let to_off = d.state_index(1, 9, 5).unwrap();
        assert_eq!(rates.get(from_off, to_off), 0.0);
        // Workload rate λ = 2 between on and off at equal levels.
        assert_eq!(rates.get(from, d.state_index(1, 10, 5).unwrap()), 2.0);
        // Transfer: k(j2/(1−c) − j1/c) when positive.
        let (j1, j2) = (3usize, 5usize);
        let expect = 4.5e-5 * (j2 as f64 / 0.375 - j1 as f64 / 0.625);
        let from = d.state_index(0, j1, j2).unwrap();
        let to = d.state_index(0, j1 + 1, j2 - 1).unwrap();
        assert!((rates.get(from, to) - expect).abs() < 1e-15);
        // No transfer when h1 > h2: j1 = 10, j2 = 2 → negative rate.
        let from = d.state_index(0, 10, 2).unwrap();
        let to = d.state_index(0, 11, 1).unwrap();
        assert_eq!(rates.get(from, to), 0.0);
    }

    #[test]
    fn initial_mass_on_full_battery() {
        let d = on_off_two_well(300.0);
        let top = d.state_index(0, 15, 9).unwrap();
        assert_eq!(d.alpha()[top], 1.0);
        assert!((d.alpha().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_probability_monotone_and_bounded() {
        let d = on_off_linear(300.0);
        let times: Vec<Time> = (0..=10)
            .map(|i| Time::from_seconds(i as f64 * 2000.0))
            .collect();
        let curve = d.empty_probability_curve(&times).unwrap();
        let mut prev = -1e-12;
        for (t, p) in &curve.points {
            assert!((0.0..=1.0 + 1e-9).contains(p), "t = {t}: p = {p}");
            assert!(*p >= prev - 1e-9, "not monotone at t = {t}");
            prev = *p;
        }
        // At t = 0 the battery is full; far beyond the deterministic
        // lifetime (15000 s) it is almost surely empty. Δ = 300 gives a
        // heavily smeared phase-type CDF (only 24 levels), so the bound
        // is loose; the refinement tests tighten it at smaller Δ.
        assert!(curve.points[0].1 < 1e-9);
        assert!(
            curve.points[10].1 > 0.9,
            "p(20000) = {}",
            curve.points[10].1
        );
    }

    #[test]
    fn linear_case_mean_lifetime_anchor() {
        // Coarse Δ already puts the CDF's centre near 15000 s (§6.1).
        let d = on_off_linear(100.0);
        let p_below = d
            .empty_probability_at(Time::from_seconds(12_000.0))
            .unwrap();
        let p_above = d
            .empty_probability_at(Time::from_seconds(18_000.0))
            .unwrap();
        assert!(p_below < 0.5, "p(12000) = {p_below}");
        assert!(p_above > 0.5, "p(18000) = {p_above}");
    }

    #[test]
    fn state_index_bounds() {
        let d = on_off_linear(300.0);
        assert!(d.state_index(2, 0, 0).is_err());
        assert!(d.state_index(0, 99, 0).is_err());
        assert!(d.state_index(0, 0, 1).is_err());
        assert_eq!(d.empty_measure().len(), d.stats().states);
    }

    #[test]
    fn expected_charge_curves_track_mean_drain() {
        // On/off c = 1: mean current is 0.48 A, so E[Y1(t)] ≈ u1 − 0.48 t
        // well before depletion.
        let d = on_off_linear(100.0);
        let times: Vec<Time> = (0..=5)
            .map(|i| Time::from_seconds(i as f64 * 1000.0))
            .collect();
        let curves = d.expected_charge_curves(&times).unwrap();
        assert!((curves[0].1.as_coulombs() - 7200.0).abs() < 1e-9);
        assert_eq!(curves[0].2, Charge::ZERO);
        for (t, y1, _) in &curves {
            let expect = 7200.0 - 0.48 * t.as_seconds();
            // Δ-quantisation + randomness of the on/off phase allow a few
            // hundred As of slack.
            assert!(
                (y1.as_coulombs() - expect).abs() < 0.05 * 7200.0,
                "t = {t}: E[Y1] = {y1} vs {expect}"
            );
        }
        // Monotone decreasing.
        for w in curves.windows(2) {
            assert!(w[1].1 <= w[0].1 + Charge::from_coulombs(1e-9));
        }
    }

    #[test]
    fn expected_charge_curves_two_wells_conserve_early() {
        // Before any absorption, E[Y1 + Y2 + consumed] = C: check that
        // total expected charge decreases by roughly the mean drain.
        let d = on_off_two_well(300.0);
        let times = [Time::from_seconds(0.0), Time::from_seconds(2000.0)];
        let curves = d.expected_charge_curves(&times).unwrap();
        let total0 = curves[0].1 + curves[0].2;
        let total1 = curves[1].1 + curves[1].2;
        assert!((total0.as_coulombs() - 7200.0).abs() < 1e-9);
        let drained = total0 - total1;
        let expect = 0.48 * 2000.0;
        assert!(
            (drained.as_coulombs() - expect).abs() < 0.15 * expect,
            "drained {drained} vs {expect}"
        );
    }

    #[test]
    fn recovery_from_empty_extension() {
        // Paper §5.2: "the recovery transitions could easily be included".
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
            .unwrap();
        let m = KibamRm::new(
            w,
            Charge::from_amp_seconds(7200.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap();
        let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(300.0))
            .with_recovery_from_empty();
        let d = DiscretisedModel::build(&m, &opts).unwrap();
        // Empty states with bound charge left are *not* absorbing any more…
        let s = d.state_index(0, 0, 5).unwrap();
        assert!(!d.chain().is_absorbing(s));
        let rate = d.chain().rates().get(s, d.state_index(0, 1, 4).unwrap());
        assert!((rate - 4.5e-5 * (5.0 / 0.375)).abs() < 1e-15);
        // …but the fully drained corner still is.
        let corner = d.state_index(0, 0, 0).unwrap();
        assert!(d.chain().is_absorbing(corner));

        // With recovery allowed, "empty at t" sits below the absorbing
        // first-passage probability at late times.
        let absorbing = DiscretisedModel::build(
            &m,
            &DiscretisationOptions::with_delta(Charge::from_amp_seconds(300.0)),
        )
        .unwrap();
        let t = Time::from_seconds(16_000.0);
        let p_at = d.empty_probability_at(t).unwrap();
        let p_by = absorbing.empty_probability_at(t).unwrap();
        assert!(p_at <= p_by + 1e-12, "at {p_at} vs by {p_by}");
        assert!(
            p_at < p_by - 0.01,
            "recovery should visibly drain the empty states"
        );
    }

    #[test]
    fn c1_has_no_transfer_transitions() {
        let d = on_off_linear(100.0);
        // Every transition is workload or consumption: target j2 = 0.
        for (from, to, _) in d.chain().rates().iter() {
            let _ = from;
            assert!(to < d.stats().states);
        }
        assert_eq!(d.j2_levels(), 1);
    }
}
